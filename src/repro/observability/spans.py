"""Lightweight span tracing: what phase ran, for how long, inside what.

A span is one timed region with a name, free-form tags, and a parent — the
warm-up inside the evaluator, the shard inside the campaign, the dock inside
the shard. Spans nest via an explicit stack kept by the tracer, timed with
the registry's injectable clock (monotonic by default), and are buffered in
a bounded list so a million-ligand campaign cannot grow memory without
bound: past the cap, spans are counted (``dropped``) instead of stored.

Like the metrics registry, a tracer never crosses a process boundary live:
workers snapshot their spans and the parent merges them (ids are offset so
parent links survive the merge).

Thread model: the nesting stack is *thread-local* (each thread nests its
own spans; a dock-pipeline thread's spans become roots rather than
mis-parenting under whatever the main thread happens to have open), while
id allocation and the completed-record buffer are shared under a lock so
concurrent threads never collide on ids or lose records.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["SpanRecord", "SpanTracer", "DEFAULT_MAX_SPANS"]

#: Buffered span cap per tracer; excess spans are counted, not stored.
DEFAULT_MAX_SPANS: int = 4096


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed span (times are clock-relative seconds)."""

    id: int
    name: str
    tags: dict
    start_s: float
    duration_s: float
    parent: int | None
    depth: int


class SpanTracer:
    """Collects completed spans; nesting comes from an explicit stack."""

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self.clock = clock
        self.max_spans = int(max_spans)
        self.records: list[SpanRecord] = []
        self.dropped = 0
        self._local = threading.local()
        self._lock = threading.Lock()
        self._next_id = 0

    @property
    def _stack(self) -> list[int]:
        """This thread's nesting stack (created lazily per thread)."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **tags) -> Iterator[dict]:
        """Time a region; yields the (mutable) tag dict for late annotations."""
        stack = self._stack
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent = stack[-1] if stack else None
        depth = len(stack)
        stack.append(span_id)
        start = self.clock()
        try:
            yield tags
        finally:
            duration = self.clock() - start
            stack.pop()
            with self._lock:
                if len(self.records) < self.max_spans:
                    self.records.append(
                        SpanRecord(
                            id=span_id,
                            name=name,
                            tags=dict(tags),
                            start_s=start,
                            duration_s=duration,
                            parent=parent,
                            depth=depth,
                        )
                    )
                else:
                    self.dropped += 1

    @property
    def current(self) -> int | None:
        """The id of this thread's innermost open span, or None outside any.

        Worker nodes stamp this onto result frames so the coordinator can
        correlate its store-commit span with the remote dock span.
        """
        stack = self._stack
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Freeze completed spans into a JSON-safe dict."""
        with self._lock:
            records = list(self.records)
            dropped = self.dropped
        return {
            "spans": [
                {
                    "id": r.id,
                    "name": r.name,
                    "tags": r.tags,
                    "start_s": r.start_s,
                    "duration_s": r.duration_s,
                    "parent": r.parent,
                    "depth": r.depth,
                }
                for r in records
            ],
            "dropped": dropped,
        }

    def merge(self, snapshot: dict) -> None:
        """Append another tracer's spans, offsetting ids to stay unique.

        A parent id absent from the incoming snapshot is dropped rather
        than offset: it names a span that was still open when the snapshot
        froze (e.g. a worker's session span at SIGKILL time), so after the
        merge it would dangle. The child becomes a root span instead —
        merged snapshots never contain orphan parent references.
        """
        with self._lock:
            offset = self._next_id
            max_seen = -1
            incoming = {int(item["id"]) for item in snapshot.get("spans", ())}
            for item in snapshot.get("spans", ()):
                max_seen = max(max_seen, int(item["id"]))
                if len(self.records) >= self.max_spans:
                    self.dropped += 1
                    continue
                parent = item.get("parent")
                if parent is not None:
                    parent = int(parent) + offset if int(parent) in incoming else None
                self.records.append(
                    SpanRecord(
                        id=int(item["id"]) + offset,
                        name=str(item["name"]),
                        tags=dict(item.get("tags", {})),
                        start_s=float(item["start_s"]),
                        duration_s=float(item["duration_s"]),
                        parent=parent,
                        depth=int(item.get("depth", 0)),
                    )
                )
            self.dropped += int(snapshot.get("dropped", 0))
            self._next_id = offset + max_seen + 1

    def reset(self) -> None:
        """Drop every buffered span (fresh run); open spans keep nesting."""
        with self._lock:
            self.records.clear()
            self.dropped = 0
