"""Chrome/Perfetto ``trace_event`` exporter for the span tracer's output.

A snapshot document's span list is a tree of timed regions — campaign
shards, docks, host launches, the per-worker task batches merged back from
worker processes, journal fsyncs. This module converts it to the Trace
Event Format that ``chrome://tracing`` and https://ui.perfetto.dev render
as a timeline, which turns "worker 3 is slow" from a histogram guess into
a visible gap.

Lane assignment: spans carrying a ``worker`` tag land on that worker's
thread lane (named ``worker N``); everything else lands on the ``main``
lane. Worker spans come from other processes, but both sides time with
``time.perf_counter``/``time.monotonic`` which share ``CLOCK_MONOTONIC``
on Linux, so timestamps are directly comparable; the exporter rebases
everything so the earliest span starts at t=0.

Beyond the one complete ("X") event per span, two instant ("i") event
families make scheduling pathologies pop visually:

* a ``steal`` instant at the end of every launch span whose late-annotated
  ``steals`` tag is non-zero (dynamic mode's work-stealing in action);
* journal fsyncs are ordinary spans (``campaign.journal.fsync``) and need
  no special casing — they show up as short blocks on the main lane.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.observability.export import validate_snapshot

__all__ = ["snapshot_to_trace_events", "trace_events_to_json", "write_trace"]

#: Process id used for every event (one logical process per snapshot).
_PID = 1
#: Thread lane for spans without a ``worker`` tag.
_MAIN_TID = 0


def _lane(tags: dict) -> int:
    """Thread lane for one span: worker tag -> worker lane, else main."""
    worker = tags.get("worker")
    if worker is None:
        return _MAIN_TID
    try:
        return int(worker) + 1
    except (TypeError, ValueError):
        return _MAIN_TID


def snapshot_to_trace_events(snapshot: dict) -> dict:
    """Convert a snapshot document to a Trace Event Format JSON object."""
    doc = validate_snapshot(snapshot)
    spans = doc["spans"]
    origin = min((float(s["start_s"]) for s in spans), default=0.0)

    events: list[dict] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": _MAIN_TID,
            "name": "process_name",
            "args": {"name": "repro-vs"},
        }
    ]
    lanes: dict[int, str] = {_MAIN_TID: "main"}
    for span in spans:
        lane = _lane(span.get("tags", {}))
        if lane not in lanes:
            lanes[lane] = f"worker {lane - 1}"
    for tid, name in sorted(lanes.items()):
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )

    for span in spans:
        tags = dict(span.get("tags", {}))
        tid = _lane(tags)
        start_us = (float(span["start_s"]) - origin) * 1e6
        dur_us = max(0.0, float(span["duration_s"]) * 1e6)
        name = str(span["name"])
        events.append(
            {
                "ph": "X",
                "pid": _PID,
                "tid": tid,
                "name": name,
                "cat": name.split(".", 1)[0],
                "ts": start_us,
                "dur": dur_us,
                "args": {
                    **tags,
                    "span_id": span["id"],
                    "parent": span.get("parent"),
                    "depth": span.get("depth", 0),
                },
            }
        )
        steals = tags.get("steals")
        if steals:  # late-annotated by the host runtime's harvest
            events.append(
                {
                    "ph": "i",
                    "pid": _PID,
                    "tid": tid,
                    "name": "steal",
                    "cat": "host",
                    "s": "t",  # thread-scoped instant marker
                    "ts": start_us + dur_us,
                    "args": {"steals": steals, "launch_span": span["id"]},
                }
            )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro-vs telemetry snapshot",
            "spans": len(spans),
            "dropped_spans": doc.get("dropped_spans", 0),
        },
    }


def trace_events_to_json(snapshot: dict) -> str:
    """Serialise the trace for ``chrome://tracing`` / Perfetto."""
    return json.dumps(snapshot_to_trace_events(snapshot), indent=1, sort_keys=True)


def write_trace(snapshot: dict, path: str | Path) -> int:
    """Write the trace JSON to ``path``; returns the number of spans."""
    trace = snapshot_to_trace_events(snapshot)
    Path(path).write_text(
        json.dumps(trace, indent=1, sort_keys=True), encoding="utf-8"
    )
    return int(trace["otherData"]["spans"])
