"""Chrome/Perfetto ``trace_event`` exporter for the span tracer's output.

A snapshot document's span list is a tree of timed regions — campaign
shards, docks, host launches, the per-worker task batches merged back from
worker processes, journal fsyncs. This module converts it to the Trace
Event Format that ``chrome://tracing`` and https://ui.perfetto.dev render
as a timeline, which turns "worker 3 is slow" from a histogram guess into
a visible gap.

Lane assignment: spans carrying a ``worker`` tag land on that worker's
thread lane (named ``worker N``); spans carrying a ``pipeline_lane`` tag —
the campaign runner's per-ligand dock spans when ``pipeline_depth > 1`` —
land on a dedicated ``pipeline N`` lane so co-scheduled ligands render as
overlapping blocks (the visual proof that one ligand's barrier tail is
filled with another's poses); everything else lands on the ``main``
lane. Distributed campaigns add a ``node`` tag when worker-node telemetry
is merged back (:func:`repro.cluster.retag_snapshot`); each node then gets
its own lane block — ``node N`` plus ``node N worker M`` — so per-node
timelines sit side by side under the coordinator's ``main`` lane.
Worker spans come from other processes, but both sides time with
``time.perf_counter``/``time.monotonic`` which share ``CLOCK_MONOTONIC``
on Linux, so timestamps are directly comparable; the exporter rebases
everything so the earliest span starts at t=0.

Beyond the one complete ("X") event per span, two instant ("i") event
families make scheduling pathologies pop visually:

* a ``steal`` instant at the end of every launch span whose late-annotated
  ``steals`` tag is non-zero (dynamic mode's work-stealing in action);
* journal fsyncs are ordinary spans (``campaign.journal.fsync``) and need
  no special casing — they show up as short blocks on the main lane.

Cross-node ligand lifecycle: a distributed campaign's merged snapshot holds
each ligand's dock span on its node's lane (``cluster.ligand.dock``, tagged
with the ordinal, its lease wait, and the campaign trace id) and the
coordinator's commit span on the main lane (``cluster.ligand.commit``, same
ordinal, tagged with the measured wire time). The exporter pairs them by
ordinal into Chrome flow events (``s``/``f``) so Perfetto draws an arrow
from the dock's end to the commit's start — lease wait, dock, wire, store
commit, and journal fsync read as one end-to-end story per ligand.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.observability.export import validate_snapshot

__all__ = ["snapshot_to_trace_events", "trace_events_to_json", "write_trace"]

#: Process id used for every event (one logical process per snapshot).
_PID = 1
#: Thread lane for spans without a ``worker`` tag.
_MAIN_TID = 0
#: Lane stride per cluster node: node ``n``'s lanes start at ``(n+1) * 1000``.
_NODE_STRIDE = 1000
#: Pipeline dock lanes: overlap lane ``k`` renders as tid ``500 + k`` —
#: above every worker lane, below the next node block.
_PIPELINE_BASE = 500


def _lane(tags: dict) -> int:
    """Thread lane for one span: (node, worker, pipeline_lane) -> lane."""
    base = _MAIN_TID
    worker = tags.get("worker")
    if worker is not None:
        try:
            base = int(worker) + 1
        except (TypeError, ValueError):
            base = _MAIN_TID
    elif tags.get("pipeline_lane") is not None:
        try:
            base = _PIPELINE_BASE + int(tags["pipeline_lane"])
        except (TypeError, ValueError):
            base = _MAIN_TID
    node = tags.get("node")
    if node is None:
        return base
    try:
        return (int(node) + 1) * _NODE_STRIDE + base
    except (TypeError, ValueError):
        return base


def _lane_name(tid: int) -> str:
    """Human label for a lane id (inverse of :func:`_lane`)."""
    if tid >= _NODE_STRIDE:
        node, base = divmod(tid, _NODE_STRIDE)
        label = f"node {node - 1}"
        if base == _MAIN_TID:
            return label
        if base >= _PIPELINE_BASE:
            return f"{label} pipeline {base - _PIPELINE_BASE}"
        return f"{label} worker {base - 1}"
    if tid >= _PIPELINE_BASE:
        return f"pipeline {tid - _PIPELINE_BASE}"
    return "main" if tid == _MAIN_TID else f"worker {tid - 1}"


def snapshot_to_trace_events(snapshot: dict) -> dict:
    """Convert a snapshot document to a Trace Event Format JSON object."""
    doc = validate_snapshot(snapshot)
    spans = doc["spans"]
    origin = min((float(s["start_s"]) for s in spans), default=0.0)

    events: list[dict] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": _MAIN_TID,
            "name": "process_name",
            "args": {"name": "repro-vs"},
        }
    ]
    lanes: dict[int, str] = {_MAIN_TID: "main"}
    for span in spans:
        lane = _lane(span.get("tags", {}))
        if lane not in lanes:
            lanes[lane] = _lane_name(lane)
    for tid, name in sorted(lanes.items()):
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )

    for span in spans:
        tags = dict(span.get("tags", {}))
        tid = _lane(tags)
        start_us = (float(span["start_s"]) - origin) * 1e6
        dur_us = max(0.0, float(span["duration_s"]) * 1e6)
        name = str(span["name"])
        events.append(
            {
                "ph": "X",
                "pid": _PID,
                "tid": tid,
                "name": name,
                "cat": name.split(".", 1)[0],
                "ts": start_us,
                "dur": dur_us,
                "args": {
                    **tags,
                    "span_id": span["id"],
                    "parent": span.get("parent"),
                    "depth": span.get("depth", 0),
                },
            }
        )
        steals = tags.get("steals")
        if steals:  # late-annotated by the host runtime's harvest
            events.append(
                {
                    "ph": "i",
                    "pid": _PID,
                    "tid": tid,
                    "name": "steal",
                    "cat": "host",
                    "s": "t",  # thread-scoped instant marker
                    "ts": start_us + dur_us,
                    "args": {"steals": steals, "launch_span": span["id"]},
                }
            )

    flows = _lifecycle_flows(spans, origin)
    events.extend(flows)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro-vs telemetry snapshot",
            "spans": len(spans),
            "dropped_spans": doc.get("dropped_spans", 0),
            "lifecycle_flows": len(flows) // 2,
        },
    }


def _lifecycle_flows(spans: list, origin: float) -> list[dict]:
    """Flow-event pairs stitching each ligand's dock to its store commit.

    Pairing key is the ``ordinal`` tag: the worker's ``cluster.ligand.dock``
    span (node lane) flows into the coordinator's ``cluster.ligand.commit``
    span (main lane). Emitted as Chrome flow events — ``s`` at the dock's
    end, ``f`` (binding to the enclosing slice) at the commit's start — so
    Perfetto draws the cross-lane arrow. Ordinals seen on only one side
    (e.g. a commit whose dock span was lost with a SIGKILLed node) emit
    nothing.
    """
    docks: dict[int, dict] = {}
    commits: dict[int, dict] = {}
    for span in spans:
        name = span.get("name")
        if name not in ("cluster.ligand.dock", "cluster.ligand.commit"):
            continue
        ordinal = span.get("tags", {}).get("ordinal")
        try:
            ordinal = int(ordinal)
        except (TypeError, ValueError):
            continue
        # First span per side wins: a retried dock keeps its initial attempt.
        side = docks if name == "cluster.ligand.dock" else commits
        side.setdefault(ordinal, span)
    flows: list[dict] = []
    for ordinal, dock in sorted(docks.items()):
        commit = commits.get(ordinal)
        if commit is None:
            continue
        dock_end_us = (
            float(dock["start_s"]) + float(dock["duration_s"]) - origin
        ) * 1e6
        commit_start_us = (float(commit["start_s"]) - origin) * 1e6
        common = {"pid": _PID, "cat": "lifecycle", "name": "ligand", "id": ordinal}
        flows.append(
            {
                **common,
                "ph": "s",
                "tid": _lane(dock.get("tags", {})),
                "ts": dock_end_us,
                "args": {"ordinal": ordinal, "from": "dock"},
            }
        )
        flows.append(
            {
                **common,
                "ph": "f",
                "bp": "e",  # bind to the enclosing commit slice
                "tid": _lane(commit.get("tags", {})),
                "ts": max(commit_start_us, dock_end_us),
                "args": {"ordinal": ordinal, "to": "commit"},
            }
        )
    return flows


def trace_events_to_json(snapshot: dict) -> str:
    """Serialise the trace for ``chrome://tracing`` / Perfetto."""
    return json.dumps(snapshot_to_trace_events(snapshot), indent=1, sort_keys=True)


def write_trace(snapshot: dict, path: str | Path) -> int:
    """Write the trace JSON to ``path``; returns the number of spans."""
    trace = snapshot_to_trace_events(snapshot)
    Path(path).write_text(
        json.dumps(trace, indent=1, sort_keys=True), encoding="utf-8"
    )
    return int(trace["otherData"]["spans"])
