"""Scoring functions: the fitness landscape the metaheuristics optimise."""

from repro.scoring.autotune import (
    AutotuneController,
    CalibrationCell,
    CalibrationTable,
    KernelSelector,
    run_calibration_sweep,
    scoring_family,
)
from repro.scoring.base import (
    CHUNK_BUDGET_BYTES,
    OPS_PER_LJ_PAIR,
    BoundScorer,
    ScoringFunction,
    auto_chunk_size,
    available_scorings,
    check_spot_ids,
    get_scoring,
    register_scoring,
)
from repro.scoring.batched import (
    BatchedLJScoring,
    BoundBatchedLJ,
    batched_chunk_size,
)
from repro.scoring.pruned import (
    BoundSpotPruned,
    SpotPrunedScoring,
    prune_bound,
    spot_prune_indices,
)
from repro.scoring.composite import BoundComposite, CompositeScoring, make_lj_coulomb
from repro.scoring.coulomb import BoundCoulomb, CoulombScoring
from repro.scoring.cutoff import BoundCutoffLennardJones, CutoffLennardJonesScoring
from repro.scoring.gridmap import BoundGridMap, GridMapScoring
from repro.scoring.hbond import BoundHydrogenBond, HydrogenBondScoring
from repro.scoring.lennard_jones import (
    BoundLennardJones,
    LennardJonesScoring,
    lj_energy_from_r2,
)
from repro.scoring.reference import BoundReferenceLJ, ReferenceLJScoring
from repro.scoring.softcore import BoundSoftcoreLJ, SoftcoreLJScoring
from repro.scoring.tiled import (
    DEFAULT_TILE,
    BoundTiledLennardJones,
    TiledLennardJonesScoring,
)

__all__ = [
    "CHUNK_BUDGET_BYTES",
    "DEFAULT_TILE",
    "OPS_PER_LJ_PAIR",
    "AutotuneController",
    "BatchedLJScoring",
    "BoundBatchedLJ",
    "BoundComposite",
    "BoundCoulomb",
    "BoundCutoffLennardJones",
    "BoundGridMap",
    "BoundHydrogenBond",
    "BoundLennardJones",
    "BoundReferenceLJ",
    "BoundScorer",
    "BoundSoftcoreLJ",
    "BoundSpotPruned",
    "BoundTiledLennardJones",
    "CalibrationCell",
    "CalibrationTable",
    "CompositeScoring",
    "CoulombScoring",
    "CutoffLennardJonesScoring",
    "GridMapScoring",
    "HydrogenBondScoring",
    "KernelSelector",
    "LennardJonesScoring",
    "ReferenceLJScoring",
    "ScoringFunction",
    "SoftcoreLJScoring",
    "SpotPrunedScoring",
    "TiledLennardJonesScoring",
    "auto_chunk_size",
    "available_scorings",
    "batched_chunk_size",
    "check_spot_ids",
    "get_scoring",
    "lj_energy_from_r2",
    "make_lj_coulomb",
    "prune_bound",
    "register_scoring",
    "run_calibration_sweep",
    "scoring_family",
    "spot_prune_indices",
]
