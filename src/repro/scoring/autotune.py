"""Input-aware kernel autotuning: calibration tables and variant selection.

Following "Improving computation efficiency using input and architecture
features" (arXiv 2303.06150), the best scoring kernel and chunk size depend
jointly on the input size and the machine — no single static choice wins
everywhere. This module makes the choice *measured* instead of hard-coded:

* A **calibration table** persists throughput measurements per *feature
  cell* ``(receptor_atoms, ligand_atoms, worker_count)``, one row per
  ``(variant, chunk_size)`` candidate, produced by the one-time
  ``repro-vs calibrate`` sweep (:func:`run_calibration_sweep`).
* A **selector** (:class:`KernelSelector`) picks the fastest recorded
  ``(variant, chunk_size)`` for a complex — exact feature-cell match when
  available (``autotune.cell_hits``), nearest cell in log-feature space
  otherwise (``autotune.cell_misses``).
* A per-campaign **controller** (:class:`AutotuneController`) pins each
  feature cell's selection for the whole campaign and refines the table's
  throughput expectations online from observed poses/s with hysteresis
  (EWMA + margin + patience, ``autotune.refinements``).

Two invariants shape the design:

**Numerics families.** A selection never crosses a numerics family: exact
double-precision LJ (dense / tiled / batched) may substitute for each
other, but a cutoff approximation never silently replaces an exact scorer
(or vice versa), and float32 never replaces float64. Scorings outside the
known families (soft-core, composite, grids, custom classes) pass through
untouched. Autotuning changes *which* kernel runs, never *what* it
computes — up to the GEMM-association round-off documented per family.

**Bitwise reproducibility.** Selection is a pure function of (table,
features), and the controller pins it at first use per feature cell — so
for a fixed calibration table, a campaign scores every ligand with the
same ``(variant, chunk_size)`` in every execution mode, and the host
runtime's grid-aligned planning then makes parallel scores bitwise equal
to serial ones. Online refinement deliberately does **not** switch the
active selection mid-campaign (a wall-clock-driven switch would make two
runs of the same campaign disagree in the low bits): it accumulates into
a *refined* table (:meth:`AutotuneController.refined_table`) that seeds
the next campaign. Hysteresis — sustained shortfall beyond the margin for
``patience`` consecutive observations — keeps transient stalls (page
cache, a neighbour process) from demoting a healthy cell, so expectations
never flip-flop.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, replace
from pathlib import Path
from threading import Lock

import numpy as np

from repro import observability as obs
from repro.constants import FLOAT_DTYPE
from repro.errors import ScoringError
from repro.scoring.base import (
    MAX_CHUNK_SIZE,
    ScoringFunction,
    auto_chunk_size,
)
from repro.scoring.batched import (
    BATCHED_MAX_CHUNK_SIZE,
    BatchedLJScoring,
    batched_chunk_size,
)
from repro.scoring.cutoff import CutoffLennardJonesScoring
from repro.scoring.lennard_jones import LennardJonesScoring
from repro.scoring.tiled import TiledLennardJonesScoring

__all__ = [
    "CALIBRATION_FORMAT_VERSION",
    "CalibrationCell",
    "CalibrationTable",
    "Selection",
    "KernelSelector",
    "AutotuneController",
    "scoring_family",
    "variant_candidates",
    "run_calibration_sweep",
    "PRUNABLE_VARIANTS",
]

CALIBRATION_FORMAT_VERSION = 1

#: Hysteresis margin: observed throughput must fall below expectation by
#: this factor before a shortfall counts (and a candidate would need to
#: beat the incumbent by the same factor to displace it on re-selection).
DEFAULT_MARGIN = 1.15

#: Consecutive shortfall observations before a refinement lands.
DEFAULT_PATIENCE = 3

#: EWMA smoothing for observed poses/s.
EWMA_ALPHA = 0.3

#: Variants :func:`repro.scoring.pruned.prune_bound` can wrap. With
#: ``prune_spots`` enabled the selector restricts itself to these.
PRUNABLE_VARIANTS = frozenset({"lennard-jones", "lennard-jones-cutoff"})


# ----------------------------------------------------------------------
# Table
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CalibrationCell:
    """One throughput measurement: a (feature cell, variant, chunk) row."""

    receptor_atoms: int
    ligand_atoms: int
    worker_count: int
    family: str
    variant: str
    chunk_size: int
    poses_per_s: float

    @property
    def features(self) -> tuple[int, int, int]:
        return (self.receptor_atoms, self.ligand_atoms, self.worker_count)

    def to_json(self) -> dict:
        return {
            "receptor_atoms": self.receptor_atoms,
            "ligand_atoms": self.ligand_atoms,
            "worker_count": self.worker_count,
            "family": self.family,
            "variant": self.variant,
            "chunk_size": self.chunk_size,
            "poses_per_s": self.poses_per_s,
        }

    @classmethod
    def from_json(cls, row: dict) -> "CalibrationCell":
        try:
            return cls(
                receptor_atoms=int(row["receptor_atoms"]),
                ligand_atoms=int(row["ligand_atoms"]),
                worker_count=int(row["worker_count"]),
                family=str(row["family"]),
                variant=str(row["variant"]),
                chunk_size=int(row["chunk_size"]),
                poses_per_s=float(row["poses_per_s"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ScoringError(f"malformed calibration cell {row!r}: {exc}") from None


class CalibrationTable:
    """A persisted set of :class:`CalibrationCell` measurements."""

    def __init__(self, cells: list[CalibrationCell] | None = None) -> None:
        self.cells: list[CalibrationCell] = list(cells or [])

    def __len__(self) -> int:
        return len(self.cells)

    def add(self, cell: CalibrationCell) -> None:
        self.cells.append(cell)

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        ordered = sorted(
            self.cells,
            key=lambda c: (c.family, c.features, c.variant, c.chunk_size),
        )
        return {
            "format_version": CALIBRATION_FORMAT_VERSION,
            "kind": "repro-vs-calibration",
            "cells": [c.to_json() for c in ordered],
        }

    @classmethod
    def from_json(cls, doc: dict) -> "CalibrationTable":
        if not isinstance(doc, dict) or doc.get("kind") != "repro-vs-calibration":
            raise ScoringError(
                "not a calibration table (missing kind='repro-vs-calibration')"
            )
        version = doc.get("format_version")
        if version != CALIBRATION_FORMAT_VERSION:
            raise ScoringError(
                f"calibration table format_version {version!r} unsupported "
                f"(expected {CALIBRATION_FORMAT_VERSION})"
            )
        return cls([CalibrationCell.from_json(row) for row in doc.get("cells", [])])

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(json.dumps(self.to_json(), indent=1, sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "CalibrationTable":
        path = Path(path)
        try:
            doc = json.loads(path.read_text())
        except FileNotFoundError:
            raise ScoringError(f"calibration file not found: {path}") from None
        except json.JSONDecodeError as exc:
            raise ScoringError(f"unreadable calibration file {path}: {exc}") from None
        return cls.from_json(doc)

    # ------------------------------------------------------------------
    def lookup(
        self,
        family: str,
        receptor_atoms: int,
        ligand_atoms: int,
        worker_count: int,
        allowed_variants: frozenset[str] | None = None,
    ) -> tuple[CalibrationCell | None, bool]:
        """Best cell for the features: ``(cell, exact_feature_match)``.

        Deterministic by construction: nearest feature point under
        :func:`_log_distance` (ties broken by the feature tuple), then the
        highest recorded throughput within it (ties broken by variant name
        and chunk size) — the same table and features always produce the
        same cell, which is what makes selection reproducible.
        """
        features = (int(receptor_atoms), int(ligand_atoms), int(worker_count))
        candidates = [
            c
            for c in self.cells
            if c.family == family
            and (allowed_variants is None or c.variant in allowed_variants)
        ]
        if not candidates:
            return None, False
        # Log-feature distance: sizes span orders of magnitude, so a ratio
        # metric is the meaningful one (+1 keeps worker_count=0 finite).
        nearest = min(
            {c.features for c in candidates},
            key=lambda f: (_log_distance_key(f, features), f),
        )
        in_cell = [c for c in candidates if c.features == nearest]
        best = min(in_cell, key=lambda c: (-c.poses_per_s, c.variant, c.chunk_size))
        return best, nearest == features


def _log_distance_key(
    cell_features: tuple[int, int, int], features: tuple[int, int, int]
) -> float:
    rec, lig, workers = features
    crec, clig, cworkers = cell_features
    return (
        math.log(crec / max(rec, 1)) ** 2
        + math.log(clig / max(lig, 1)) ** 2
        + math.log((cworkers + 1) / (workers + 1)) ** 2
    )


# ----------------------------------------------------------------------
# Families and variant construction
# ----------------------------------------------------------------------
def scoring_family(scoring: ScoringFunction) -> str | None:
    """Numerics family of a scoring function, or None if untunable.

    Families bound what a selection may substitute: members of a family
    compute the same physics in the same precision (scores agree to GEMM
    round-off), so swapping within one changes speed, not results.
    """
    if type(scoring) is CutoffLennardJonesScoring:
        return f"cutoff-{np.dtype(scoring.dtype).name}"
    if type(scoring) in (
        LennardJonesScoring,
        TiledLennardJonesScoring,
        BatchedLJScoring,
    ):
        return "exact"
    return None


def build_scoring(cell: CalibrationCell, base: ScoringFunction) -> ScoringFunction:
    """Materialise a cell's ``(variant, chunk_size)`` choice.

    Physics parameters (force field, cutoff radius, dtype) always come from
    the *requested* scoring — the table only decides kernel shape.
    """
    chunk = int(cell.chunk_size)
    if cell.variant == "lennard-jones":
        return LennardJonesScoring(forcefield=base.forcefield, chunk_size=chunk)
    if cell.variant == "lennard-jones-tiled":
        return TiledLennardJonesScoring(forcefield=base.forcefield, chunk_size=chunk)
    if cell.variant == "lennard-jones-batched":
        return BatchedLJScoring(forcefield=base.forcefield, chunk_size=chunk)
    if cell.variant == "lennard-jones-cutoff":
        return CutoffLennardJonesScoring(
            forcefield=base.forcefield,
            cutoff=base.cutoff,
            dtype=base.dtype,
            chunk_size=chunk,
        )
    raise ScoringError(f"calibration cell names unknown variant {cell.variant!r}")


def variant_candidates(
    family: str, receptor_atoms: int, ligand_atoms: int
) -> list[tuple[str, int]]:
    """``(variant, chunk_size)`` candidates the sweep measures for a cell."""
    itemsize = np.dtype(FLOAT_DTYPE).itemsize
    auto = auto_chunk_size(receptor_atoms, ligand_atoms, itemsize)
    if family == "exact":
        batched = batched_chunk_size(receptor_atoms, ligand_atoms, itemsize)
        out = [
            ("lennard-jones", auto),
            ("lennard-jones", min(2 * auto, MAX_CHUNK_SIZE)),
            ("lennard-jones-tiled", auto),
            ("lennard-jones-batched", batched),
            ("lennard-jones-batched", min(2 * batched, BATCHED_MAX_CHUNK_SIZE)),
        ]
    elif family in ("cutoff-float32", "cutoff-float64"):
        itemsize = 4 if family == "cutoff-float32" else 8
        auto = auto_chunk_size(receptor_atoms, ligand_atoms, itemsize)
        out = [
            ("lennard-jones-cutoff", auto),
            ("lennard-jones-cutoff", min(2 * auto, MAX_CHUNK_SIZE)),
        ]
    else:
        raise ScoringError(f"unknown calibration family {family!r}")
    seen: list[tuple[str, int]] = []
    for cand in out:
        if cand not in seen:
            seen.append(cand)
    return seen


# ----------------------------------------------------------------------
# Selector and controller
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Selection:
    """A resolved ``(variant, chunk_size)`` decision for one feature cell."""

    variant: str
    chunk_size: int
    family: str
    predicted_poses_per_s: float
    exact_cell: bool
    cell: CalibrationCell


class KernelSelector:
    """Pure table lookup: same table + same features ⇒ same selection."""

    def __init__(self, table: CalibrationTable) -> None:
        self.table = table

    def select(
        self,
        family: str,
        receptor_atoms: int,
        ligand_atoms: int,
        worker_count: int,
        allowed_variants: frozenset[str] | None = None,
    ) -> Selection | None:
        cell, exact = self.table.lookup(
            family, receptor_atoms, ligand_atoms, worker_count, allowed_variants
        )
        if cell is None:
            return None
        return Selection(
            variant=cell.variant,
            chunk_size=cell.chunk_size,
            family=family,
            predicted_poses_per_s=cell.poses_per_s,
            exact_cell=exact,
            cell=cell,
        )


class AutotuneController:
    """Per-campaign selection pinning plus online table refinement.

    Thread-safe: the persistent runtime resolves prefetched ligands from
    its stager thread while the campaign loop reports observations.
    """

    def __init__(
        self,
        table: CalibrationTable,
        prune_spots: bool = False,
        margin: float = DEFAULT_MARGIN,
        patience: int = DEFAULT_PATIENCE,
    ) -> None:
        self.selector = KernelSelector(table)
        self.prune_spots = bool(prune_spots)
        self.margin = float(margin)
        self.patience = int(patience)
        self._lock = Lock()
        self._pinned: dict[tuple, Selection | None] = {}
        self._active: Selection | None = None
        self._ewma: dict[CalibrationCell, float] = {}
        self._shortfalls = 0
        self._demoted: dict[CalibrationCell, float] = {}

    @classmethod
    def from_file(cls, path: str | Path, **kwargs) -> "AutotuneController":
        return cls(CalibrationTable.load(path), **kwargs)

    # ------------------------------------------------------------------
    def resolve(
        self,
        scoring: ScoringFunction,
        receptor_atoms: int,
        ligand_atoms: int,
        worker_count: int,
    ) -> ScoringFunction:
        """The tuned scoring for one complex (or ``scoring`` unchanged).

        The first resolution of a feature cell consults the table and pins
        the result; later resolutions of the same cell replay the pin —
        selections never move underneath a running campaign.
        """
        family = scoring_family(scoring)
        if family is None:
            obs.counter("autotune.cell_misses").inc()
            return scoring
        allowed = PRUNABLE_VARIANTS if self.prune_spots else None
        key = (family, int(receptor_atoms), int(ligand_atoms), int(worker_count))
        with self._lock:
            if key in self._pinned:
                selection = self._pinned[key]
            else:
                selection = self.selector.select(
                    family, *key[1:], allowed_variants=allowed
                )
                self._pinned[key] = selection
                if selection is None or not selection.exact_cell:
                    obs.counter("autotune.cell_misses").inc()
                else:
                    obs.counter("autotune.cell_hits").inc()
            if selection is None:
                return scoring
            self._active = selection
        obs.counter("autotune.selections", variant=selection.variant).inc()
        return build_scoring(selection.cell, scoring)

    # ------------------------------------------------------------------
    def observe(self, poses_per_s: float) -> None:
        """Fold one observed throughput (poses/s) into the refinement state.

        EWMA-smooths the observation for the active selection's source
        cell; after ``patience`` consecutive observations short of the
        prediction by more than ``margin``, the cell's expectation is
        demoted to the observed EWMA (``autotune.refinements``). The
        *active* selection is never switched — see the module docstring —
        so observation order can only change the refined table, never a
        campaign's scores.
        """
        if not (isinstance(poses_per_s, (int, float)) and math.isfinite(poses_per_s)):
            return
        if poses_per_s <= 0:
            return
        with self._lock:
            selection = self._active
            if selection is None:
                return
            cell = selection.cell
            prev = self._ewma.get(cell)
            ewma = (
                poses_per_s
                if prev is None
                else EWMA_ALPHA * poses_per_s + (1.0 - EWMA_ALPHA) * prev
            )
            self._ewma[cell] = ewma
            predicted = self._demoted.get(cell, selection.predicted_poses_per_s)
            if predicted > 0 and ewma * self.margin < predicted:
                self._shortfalls += 1
                if self._shortfalls >= self.patience:
                    self._demoted[cell] = ewma
                    self._shortfalls = 0
                    obs.counter("autotune.refinements").inc()
            else:
                self._shortfalls = 0

    def refined_table(self) -> CalibrationTable:
        """The loaded table with demoted expectations folded in.

        Persist this (``repro-vs campaign run --refine-calibration``) to
        let one campaign's telemetry improve the next one's selections.
        """
        with self._lock:
            demoted = dict(self._demoted)
        cells = [
            replace(c, poses_per_s=demoted[c]) if c in demoted else c
            for c in self.selector.table.cells
        ]
        return CalibrationTable(cells)

    @property
    def refinements(self) -> int:
        with self._lock:
            return len(self._demoted)


# ----------------------------------------------------------------------
# The calibration sweep
# ----------------------------------------------------------------------
def _family_base(family: str) -> ScoringFunction:
    if family == "exact":
        return LennardJonesScoring()
    if family == "cutoff-float32":
        return CutoffLennardJonesScoring(dtype=np.float32)
    if family == "cutoff-float64":
        return CutoffLennardJonesScoring(dtype=FLOAT_DTYPE)
    raise ScoringError(f"unknown calibration family {family!r}")


def run_calibration_sweep(
    receptor_atoms: tuple[int, ...] = (256, 1000, 3264),
    ligand_atoms: tuple[int, ...] = (16, 32, 48),
    worker_counts: tuple[int, ...] = (0,),
    families: tuple[str, ...] = ("exact", "cutoff-float32"),
    poses: int = 256,
    repeats: int = 3,
    seed: int = 0,
) -> CalibrationTable:
    """Measure every ``(feature cell, variant, chunk)`` candidate.

    For ``worker_count == 0`` each candidate scorer is timed directly on
    one synthetic pose batch (best of ``repeats``, after one warm pass —
    the same discipline the Eq. 1 warm-up uses). For ``worker_count > 0``
    the candidate runs under a real :class:`ParallelSpotEvaluator` pool,
    so the recorded throughput includes staging and queue effects at that
    worker count. Synthetic structures are seeded from ``seed``, so two
    sweeps on one machine produce comparable tables.
    """
    from repro.engine.host_runtime import ParallelSpotEvaluator
    from repro.molecules.synthetic import generate_ligand, generate_receptor
    from repro.molecules.transforms import random_quaternion

    table = CalibrationTable()
    with obs.span("autotune.calibrate", cells=len(receptor_atoms) * len(ligand_atoms)):
        for n_rec in receptor_atoms:
            receptor = generate_receptor(
                int(n_rec), seed=seed + int(n_rec), title=f"calib rec {n_rec}"
            )
            for n_lig in ligand_atoms:
                ligand = generate_ligand(
                    int(n_lig), seed=seed + 7919 + int(n_lig), title=f"calib lig {n_lig}"
                )
                rng = np.random.default_rng(seed + 104729 + n_rec * 31 + n_lig)
                center = receptor.coords.mean(axis=0)
                translations = center[None, :] + rng.normal(0.0, 6.0, (poses, 3))
                quaternions = random_quaternion(rng, poses)
                for family in families:
                    base = _family_base(family)
                    for variant, chunk in variant_candidates(family, n_rec, n_lig):
                        cell_template = CalibrationCell(
                            receptor_atoms=int(n_rec),
                            ligand_atoms=int(n_lig),
                            worker_count=0,
                            family=family,
                            variant=variant,
                            chunk_size=int(chunk),
                            poses_per_s=0.0,
                        )
                        scorer = build_scoring(cell_template, base).bind(
                            receptor, ligand
                        )
                        for workers in worker_counts:
                            rate = _measure_throughput(
                                scorer,
                                translations,
                                quaternions,
                                int(workers),
                                repeats,
                                ParallelSpotEvaluator,
                            )
                            table.add(
                                replace(
                                    cell_template,
                                    worker_count=int(workers),
                                    poses_per_s=rate,
                                )
                            )
    return table


def _measure_throughput(
    scorer,
    translations: np.ndarray,
    quaternions: np.ndarray,
    workers: int,
    repeats: int,
    evaluator_cls,
) -> float:
    poses = translations.shape[0]
    if workers == 0:
        scorer.score(translations[:8], quaternions[:8])  # warm caches and scratch
        best = math.inf
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            scorer.score(translations, quaternions)
            best = min(best, time.perf_counter() - t0)
        return poses / best
    spot_ids = np.zeros(poses, dtype=np.int64)
    with evaluator_cls(scorer, n_workers=workers, mode="static", warmup=False) as ev:
        ev.evaluate(spot_ids[:8], translations[:8], quaternions[:8])
        best = math.inf
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            ev.evaluate(spot_ids, translations, quaternions)
            best = min(best, time.perf_counter() - t0)
    return poses / best
