"""Scoring-function abstractions.

A :class:`ScoringFunction` is a *factory*: :meth:`ScoringFunction.bind`
precomputes everything that depends only on the (receptor, ligand) pair —
mixed LJ parameter tables, KD-trees, grids — and returns a
:class:`BoundScorer` whose :meth:`BoundScorer.score` evaluates batches of
poses. This mirrors the CUDA structure in the paper: per-complex constants
are staged once on the device, then scoring kernels are launched repeatedly
on candidate-solution batches.

The bound scorer also reports ``flops_per_pose``: the arithmetic cost the
*modelled* GPU kernel performs per conformation (always the full
``n_receptor × n_ligand`` interaction count with tiling, regardless of any
host-side pruning used to make the Python math fast). The hardware
performance model consumes this number.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.constants import FLOAT_DTYPE
from repro.errors import ScoringError
from repro.molecules.structures import Ligand, Receptor
from repro.molecules.transforms import apply_poses

__all__ = [
    "BoundScorer",
    "ScoringFunction",
    "register_scoring",
    "get_scoring",
    "available_scorings",
    "auto_chunk_size",
    "check_spot_ids",
    "OPS_PER_LJ_PAIR",
    "CHUNK_BUDGET_BYTES",
    "MIN_CHUNK_SIZE",
    "MAX_CHUNK_SIZE",
]

#: Floating-point operations per receptor-ligand atom pair in the tiled LJ
#: kernel: 3 subs + 3 muls + 2 adds (distance²), rsqrt-free form uses the
#: squared distance: 1 div, powers (~6), 4ε(..) (~4) ≈ 18; plus tile loads.
OPS_PER_LJ_PAIR: int = 18

#: Target size of the per-chunk pair matrix (the ``(poses, n_lig, n_rec)``
#: scratch that dominates the dense scorers' peak memory). 8 MiB keeps the
#: working set inside L2/L3 on typical hosts while still filling the GEMM.
CHUNK_BUDGET_BYTES: int = 8 * 1024 * 1024

#: Chunk-size clamp: below this the GEMM degenerates into tiny matmuls …
MIN_CHUNK_SIZE: int = 4

#: … above this the chunk loop stops amortising anything and scratch arrays
#: just grow.
MAX_CHUNK_SIZE: int = 256


def auto_chunk_size(
    n_receptor: int,
    n_ligand: int,
    itemsize: int = 8,
    budget_bytes: int = CHUNK_BUDGET_BYTES,
) -> int:
    """Poses per chunk so the pair matrix stays within ``budget_bytes``.

    ``clamp(budget_bytes / (n_rec * n_lig * itemsize))`` — one rule for every
    pairwise scorer, replacing the historical per-class constants (32 vs 16
    vs 64) that let big receptors blow peak memory and small ones under-fill
    the GEMM.
    """
    pair_bytes = max(1, int(n_receptor) * int(n_ligand) * int(itemsize))
    return int(np.clip(budget_bytes // pair_bytes, MIN_CHUNK_SIZE, MAX_CHUNK_SIZE))


def check_spot_ids(spot_ids: np.ndarray, n_poses: int) -> np.ndarray:
    """Validate one spot id per pose; return the ids as an int64 array.

    A shorter-than-batch id array used to be silently accepted (base scorers
    ignore the ids entirely; NumPy indexing would broadcast or truncate in
    spot-aware ones) — which turns a caller-side bookkeeping bug into wrong
    scores attributed to wrong spots. Both lengths are named in the error.
    """
    spot_ids = np.asarray(spot_ids, dtype=np.int64)
    if spot_ids.shape != (int(n_poses),):
        got = (
            spot_ids.shape[0] if spot_ids.ndim == 1 else f"shape {spot_ids.shape}"
        )
        raise ScoringError(
            f"score_spots got {got} spot ids for {int(n_poses)} poses; "
            "exactly one spot id per pose is required"
        )
    return spot_ids


def non_finite_error(out: np.ndarray, batch_shape: tuple[int, ...]) -> ScoringError:
    """Build the diagnostic for a batch that scored to NaN/inf.

    Names the offending pose indices (these surface from worker processes in
    the parallel host runtime, where "something was non-finite" alone is
    undebuggable) and the batch shape.
    """
    bad = np.flatnonzero(~np.isfinite(np.asarray(out)))
    shown = ", ".join(str(int(i)) for i in bad[:10])
    if bad.size > 10:
        shown += f", … ({bad.size - 10} more)"
    return ScoringError(
        f"scoring produced non-finite values for {bad.size} of {out.size} "
        f"poses (pose indices [{shown}]; batch shape {batch_shape})"
    )


class BoundScorer(ABC):
    """A scoring function specialised to one (receptor, ligand) pair."""

    #: Poses per evaluation chunk; bounds peak memory of the dense kernels.
    #: Set per-instance in ``__init__`` from the memory budget; subclasses
    #: may override with an explicit constructor argument.
    chunk_size: int = 32

    #: True for scorers whose :meth:`score_spots` exploits the spot ids of a
    #: batch (e.g. per-spot receptor pruning). Evaluators check this flag
    #: and route through :meth:`score_spots` when set.
    supports_spot_scoring: bool = False

    def __init__(self, receptor: Receptor, ligand: Ligand) -> None:
        self.receptor = receptor
        self.ligand = ligand
        #: Ligand coordinates centred at the origin — poses are applied to
        #: these (see :func:`repro.molecules.transforms.apply_pose`).
        self.ligand_coords = np.ascontiguousarray(
            ligand.coords - ligand.coords.mean(axis=0), dtype=FLOAT_DTYPE
        )
        self.chunk_size = auto_chunk_size(
            receptor.n_atoms, ligand.n_atoms, np.dtype(FLOAT_DTYPE).itemsize
        )

    # ------------------------------------------------------------------
    @property
    def n_pairs(self) -> int:
        """Full receptor×ligand interaction count (modelled kernel work)."""
        return self.receptor.n_atoms * self.ligand.n_atoms

    @property
    def flops_per_pose(self) -> float:
        """Modelled floating-point operations to score one conformation."""
        return float(self.n_pairs * OPS_PER_LJ_PAIR)

    # ------------------------------------------------------------------
    def score(self, translations: np.ndarray, quaternions: np.ndarray) -> np.ndarray:
        """Score a batch of poses; lower is better (free energy).

        Parameters
        ----------
        translations:
            ``(n_poses, 3)`` placements of the ligand centroid (Å).
        quaternions:
            ``(n_poses, 4)`` unit orientations.

        Returns
        -------
        numpy.ndarray
            ``(n_poses,)`` scores in kcal/mol.
        """
        translations = np.asarray(translations, dtype=FLOAT_DTYPE)
        quaternions = np.asarray(quaternions, dtype=FLOAT_DTYPE)
        if translations.ndim != 2 or translations.shape[1] != 3:
            raise ScoringError(
                f"translations must have shape (n, 3), got {translations.shape}"
            )
        if quaternions.shape != (translations.shape[0], 4):
            raise ScoringError(
                "quaternions must have shape "
                f"({translations.shape[0]}, 4), got {quaternions.shape}"
            )
        n = translations.shape[0]
        if n == 0:
            return np.empty(0, dtype=FLOAT_DTYPE)
        out = np.empty(n, dtype=FLOAT_DTYPE)
        for lo in range(0, n, self.chunk_size):
            hi = min(lo + self.chunk_size, n)
            out[lo:hi] = self._score_chunk(translations[lo:hi], quaternions[lo:hi])
        if not np.all(np.isfinite(out)):
            raise non_finite_error(out, translations.shape)
        return out

    def score_spots(
        self,
        spot_ids: np.ndarray,
        translations: np.ndarray,
        quaternions: np.ndarray,
    ) -> np.ndarray:
        """Score a batch whose poses are tagged with global spot indices.

        The base implementation ignores the spot ids for scoring (scorers
        with ``supports_spot_scoring = True`` override this to use per-spot
        precomputation), but still validates that there is exactly one id
        per pose — a mismatch is a caller bookkeeping bug, not something to
        broadcast away.
        """
        translations = np.asarray(translations, dtype=FLOAT_DTYPE)
        if translations.ndim == 2:
            check_spot_ids(spot_ids, translations.shape[0])
        return self.score(translations, quaternions)

    def score_one(self, translation: np.ndarray, quaternion: np.ndarray) -> float:
        """Score a single pose.

        Fast path for per-candidate calls (improvement loops evaluate one
        neighbour at a time): builds the ``(1, 3)``/``(1, 4)`` views and
        calls ``_score_chunk`` directly, skipping :meth:`score`'s batch
        bookkeeping — bitwise identical to ``score(t[None], q[None])[0]``,
        since a one-pose batch is exactly one chunk.
        """
        translation = np.asarray(translation, dtype=FLOAT_DTYPE)
        quaternion = np.asarray(quaternion, dtype=FLOAT_DTYPE)
        if translation.shape != (3,) or quaternion.shape != (4,):
            raise ScoringError(
                "score_one expects one pose — shapes (3,) and (4,), got "
                f"{translation.shape} and {quaternion.shape}"
            )
        out = self._score_chunk(translation[None, :], quaternion[None, :])
        value = float(out[0])
        if not np.isfinite(value):
            raise non_finite_error(np.asarray(out), (1, 3))
        return value

    def posed_ligand_coords(
        self, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        """``(n_poses, n_lig_atoms, 3)`` transformed ligand coordinates."""
        return apply_poses(self.ligand_coords, translations, quaternions)

    def score_coords(self, posed: np.ndarray) -> np.ndarray:
        """Score pre-built ligand coordinate sets.

        The flexible-ligand extension builds conformers whose *internal*
        geometry varies per pose, so the rigid ``(translation, quaternion)``
        channel is not enough; this entry point scores arbitrary
        ``(n_poses, n_lig_atoms, 3)`` coordinate batches. Supported by the
        pairwise scorers (dense/cutoff/tiled/soft-core); grid/composite
        scorers raise.
        """
        posed = np.asarray(posed, dtype=FLOAT_DTYPE)
        if posed.ndim != 3 or posed.shape[1:] != (self.ligand.n_atoms, 3):
            raise ScoringError(
                f"posed coords must have shape (n, {self.ligand.n_atoms}, 3), "
                f"got {posed.shape}"
            )
        n = posed.shape[0]
        if n == 0:
            return np.empty(0, dtype=FLOAT_DTYPE)
        out = np.empty(n, dtype=FLOAT_DTYPE)
        for lo in range(0, n, self.chunk_size):
            hi = min(lo + self.chunk_size, n)
            out[lo:hi] = self._score_posed_chunk(posed[lo:hi])
        if not np.all(np.isfinite(out)):
            raise non_finite_error(out, posed.shape)
        return out

    def _score_posed_chunk(self, posed: np.ndarray) -> np.ndarray:
        """Score one chunk of pre-built coordinates (optional capability)."""
        raise ScoringError(
            f"{type(self).__name__} does not support scoring raw coordinates"
        )

    @abstractmethod
    def _score_chunk(
        self, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        """Score one validated chunk of poses (implemented by subclasses)."""


class ScoringFunction(ABC):
    """Factory producing :class:`BoundScorer` instances for complexes."""

    #: Registry key; subclasses override.
    name: str = ""

    @abstractmethod
    def bind(self, receptor: Receptor, ligand: Ligand) -> BoundScorer:
        """Precompute pair data and return a bound scorer."""


_REGISTRY: dict[str, Callable[[], ScoringFunction]] = {}


def register_scoring(name: str) -> Callable[[type], type]:
    """Class decorator registering a scoring function under ``name``."""

    def decorate(cls: type) -> type:
        if name in _REGISTRY:
            raise ScoringError(f"scoring function {name!r} already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def get_scoring(name: str, **kwargs) -> ScoringFunction:
    """Instantiate a registered scoring function by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ScoringError(
            f"unknown scoring function {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)


def available_scorings() -> tuple[str, ...]:
    """Names of all registered scoring functions."""
    return tuple(sorted(_REGISTRY))
