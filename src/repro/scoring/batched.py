"""Batched-pose Lennard-Jones scoring — the fused whole-batch kernel.

The dense scorer walks a batch through a Python-level chunk loop, and each
chunk performs five full passes over the pair matrix (GEMM, ``*= -2``, two
broadcast adds, then the energy chain) into freshly allocated scratch. This
scorer restructures the same arithmetic the way the paper's CUDA kernel
would: **one** vectorised pose transform for the whole batch, then one
GEMM-shaped pair evaluation over the flattened ``(poses·n_lig, n_rec)``
matrix per pose block, with every elementwise step fused in place into
preallocated scratch that persists across calls.

Two tricks carry the speedup (2–2.5× over the dense scorer at paper-scale
cells, see ``benchmarks/bench_kernel_throughput.py``):

* **Augmented GEMM.** Appending ``[|a|², 1]`` to the ligand rows and
  ``[1, |b|²]`` to the receptor columns makes a single ``matmul`` produce
  ``|a|² + |b|² − 2a·b`` directly — the three separate passes the dense
  kernel spends building r² collapse into the GEMM's own accumulation.
* **Resident scratch.** The pair matrix, the augmented operand and the s⁶
  buffer are allocated once per scorer (sized for one pose block) and
  reused for every block of every call, so the kernel never touches the
  allocator or faults fresh pages on the hot path.

Numerics: the fused GEMM associates the r² sum differently from the dense
kernel's serial adds, so scores agree with the dense/reference scorers to
~1e-12 relative — not bitwise. The *bitwise* contract is the same one the
dense scorer already honours: for a fixed ``chunk_size``, a batch is
processed in blocks cut on the absolute pose-index grid, and BLAS sees
identical operand shapes for identical blocks — so any grid-aligned split
of a batch (which is exactly what the host runtime's planner produces)
reproduces the serial result bit for bit. The per-pose reduction is an
``einsum``, not a BLAS GEMV, because GEMV splits its reduction axis
differently for different batch sizes — with einsum the accumulation
order inside a block depends only on ``(n_lig, n_rec)``. Arbitrary
(non-grid) splits, or two scorers with different chunk sizes, agree only
to tolerance, as with every GEMM-based scorer here.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FLOAT_DTYPE, MIN_PAIR_DISTANCE
from repro.errors import ScoringError
from repro.molecules.forcefield import ForceField, default_forcefield
from repro.molecules.structures import Ligand, Receptor
from repro.scoring.base import (
    CHUNK_BUDGET_BYTES,
    MIN_CHUNK_SIZE,
    BoundScorer,
    ScoringFunction,
    non_finite_error,
    register_scoring,
)

__all__ = [
    "BatchedLJScoring",
    "BoundBatchedLJ",
    "batched_chunk_size",
    "BATCHED_MAX_CHUNK_SIZE",
]

#: Pose-block ceiling for the batched kernel. The fused kernel makes only
#: two passes over the pair matrix (GEMM + in-place energy chain), so it
#: tolerates working sets beyond the dense scorers' L2/L3-bound
#: ``MAX_CHUNK_SIZE`` — larger blocks amortise the einsum reduction and the
#: per-block Python overhead further before bandwidth wins out.
BATCHED_MAX_CHUNK_SIZE: int = 4096


def batched_chunk_size(
    n_receptor: int,
    n_ligand: int,
    itemsize: int = 8,
    budget_bytes: int = CHUNK_BUDGET_BYTES,
) -> int:
    """Poses per block for the batched kernel (same budget, higher ceiling)."""
    pair_bytes = max(1, int(n_receptor) * int(n_ligand) * int(itemsize))
    return int(
        np.clip(budget_bytes // pair_bytes, MIN_CHUNK_SIZE, BATCHED_MAX_CHUNK_SIZE)
    )


class BoundBatchedLJ(BoundScorer):
    """Fused whole-batch LJ scorer for one complex."""

    def __init__(
        self,
        receptor: Receptor,
        ligand: Ligand,
        forcefield: ForceField,
        chunk_size: int | None = None,
    ) -> None:
        super().__init__(receptor, ligand)
        self.chunk_size = (
            batched_chunk_size(
                receptor.n_atoms, ligand.n_atoms, np.dtype(FLOAT_DTYPE).itemsize
            )
            if chunk_size is None
            else int(chunk_size)
        )
        lig_classes = [str(e) for e in ligand.elements]
        rec_classes = [str(e) for e in receptor.elements]
        self.sigma, self.epsilon = forcefield.pair_tables(lig_classes, rec_classes)
        self._sigma2 = self.sigma * self.sigma
        self._epsilon4 = 4.0 * self.epsilon
        receptor_coords = np.ascontiguousarray(receptor.coords, dtype=FLOAT_DTYPE)
        rec_sq = np.einsum("ij,ij->i", receptor_coords, receptor_coords)
        # Augmented receptor operand [x y z | 1 | |b|²]: one GEMM against
        # ligand rows [-2x -2y -2z | |a|² | 1] yields |a|²+|b|²−2a·b.
        n_rec = receptor_coords.shape[0]
        rec_aug = np.empty((n_rec, 5), dtype=FLOAT_DTYPE)
        rec_aug[:, :3] = receptor_coords
        rec_aug[:, 3] = 1.0
        rec_aug[:, 4] = rec_sq
        self._rec_aug = rec_aug
        self._scratch: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # Scratch is a pure cache (and can be MBs); rebuild lazily after
        # unpickling — e.g. on the far side of a worker staging channel.
        state = self.__dict__.copy()
        state["_scratch"] = None
        return state

    def _get_scratch(
        self, rows: int, n_rec: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        scratch = self._scratch
        if scratch is None or scratch[1].shape[0] < rows:
            scratch = (
                np.empty((rows, 5), dtype=FLOAT_DTYPE),
                np.empty((rows, n_rec), dtype=FLOAT_DTYPE),
                np.empty((rows, n_rec), dtype=FLOAT_DTYPE),
            )
            self._scratch = scratch
        return scratch

    # ------------------------------------------------------------------
    def score(self, translations: np.ndarray, quaternions: np.ndarray) -> np.ndarray:
        """Whole-batch scoring: one pose transform, then fused blocks."""
        translations = np.asarray(translations, dtype=FLOAT_DTYPE)
        quaternions = np.asarray(quaternions, dtype=FLOAT_DTYPE)
        if translations.ndim != 2 or translations.shape[1] != 3:
            raise ScoringError(
                f"translations must have shape (n, 3), got {translations.shape}"
            )
        if quaternions.shape != (translations.shape[0], 4):
            raise ScoringError(
                "quaternions must have shape "
                f"({translations.shape[0]}, 4), got {quaternions.shape}"
            )
        if translations.shape[0] == 0:
            return np.empty(0, dtype=FLOAT_DTYPE)
        posed = self.posed_ligand_coords(translations, quaternions)
        out = self._score_posed(posed)
        if not np.all(np.isfinite(out)):
            raise non_finite_error(out, translations.shape)
        return out

    def score_coords(self, posed: np.ndarray) -> np.ndarray:
        posed = np.asarray(posed, dtype=FLOAT_DTYPE)
        if posed.ndim != 3 or posed.shape[1:] != (self.ligand.n_atoms, 3):
            raise ScoringError(
                f"posed coords must have shape (n, {self.ligand.n_atoms}, 3), "
                f"got {posed.shape}"
            )
        if posed.shape[0] == 0:
            return np.empty(0, dtype=FLOAT_DTYPE)
        out = self._score_posed(posed)
        if not np.all(np.isfinite(out)):
            raise non_finite_error(out, posed.shape)
        return out

    def _score_chunk(
        self, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        return self._score_posed(self.posed_ligand_coords(translations, quaternions))

    def _score_posed_chunk(self, posed: np.ndarray) -> np.ndarray:
        return self._score_posed(posed)

    # ------------------------------------------------------------------
    def _score_posed(self, posed: np.ndarray) -> np.ndarray:
        p = posed.shape[0]
        a = posed.shape[1]
        rec_aug = self._rec_aug
        r = rec_aug.shape[0]
        block = min(self.chunk_size, p)
        aug_f, r2_f, s6_f = self._get_scratch(block * a, r)
        sigma2 = self._sigma2
        eps4 = self._epsilon4
        min_r2 = FLOAT_DTYPE(MIN_PAIR_DISTANCE * MIN_PAIR_DISTANCE)
        out = np.empty(p, dtype=FLOAT_DTYPE)
        for lo in range(0, p, block):
            hi = min(lo + block, p)
            n = hi - lo
            flat = posed[lo:hi].reshape(n * a, 3)
            aug = aug_f[: n * a]
            r2 = r2_f[: n * a]
            s6 = s6_f[: n * a]
            np.multiply(flat, -2.0, out=aug[:, :3])
            np.einsum("ij,ij->i", flat, flat, out=aug[:, 3])
            aug[:, 4] = 1.0
            np.matmul(aug, rec_aug.T, out=r2)  # |a|²+|b|²−2a·b, one pass
            np.maximum(r2, min_r2, out=r2)
            r23 = r2.reshape(n, a, r)
            np.divide(sigma2, r23, out=r23)  # s² = σ²/r²
            np.multiply(r2, r2, out=s6)
            s6 *= r2  # s⁶
            np.subtract(s6, 1.0, out=r2)
            r2 *= s6  # s¹² − s⁶
            # Per-pose reduction fusing the 4ε weight with the pair sum.
            # einsum, not a BLAS GEMV: GEMV splits the reduction axis
            # differently for different block sizes, einsum's order depends
            # only on (a, r) — see the module docstring's bitwise contract.
            np.einsum("par,ar->p", r2.reshape(n, a, r), eps4, out=out[lo:hi])
        return out


@register_scoring("lennard-jones-batched")
class BatchedLJScoring(ScoringFunction):
    """Factory for the fused whole-batch LJ scorer."""

    def __init__(
        self, forcefield: ForceField | None = None, chunk_size: int | None = None
    ) -> None:
        self.forcefield = forcefield if forcefield is not None else default_forcefield()
        self.chunk_size = chunk_size

    def bind(self, receptor: Receptor, ligand: Ligand) -> BoundBatchedLJ:
        return BoundBatchedLJ(
            receptor, ligand, self.forcefield, chunk_size=self.chunk_size
        )
