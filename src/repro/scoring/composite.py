"""Weighted-sum composite scoring functions.

Combines bound scorers term-by-term, e.g. ``E = w_lj·E_LJ + w_q·E_Coulomb``
— the standard empirical-scoring-function shape (Jain 2006, the paper's
[17]) and part of the "other scoring functions" future-work axis.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FLOAT_DTYPE
from repro.errors import ScoringError
from repro.molecules.structures import Ligand, Receptor
from repro.scoring.base import BoundScorer, ScoringFunction, register_scoring

__all__ = ["CompositeScoring", "BoundComposite", "make_lj_coulomb"]


class BoundComposite(BoundScorer):
    """Weighted sum of already-bound scorers."""

    def __init__(
        self,
        receptor: Receptor,
        ligand: Ligand,
        terms: list[tuple[float, BoundScorer]],
    ) -> None:
        super().__init__(receptor, ligand)
        if not terms:
            raise ScoringError("composite needs at least one term")
        self.terms = terms
        self.chunk_size = max(t.chunk_size for _, t in terms)

    @property
    def flops_per_pose(self) -> float:
        """Sum of the member kernels' per-pose costs (they launch in turn)."""
        return float(sum(t.flops_per_pose for _, t in self.terms))

    def _score_chunk(
        self, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        total = np.zeros(translations.shape[0], dtype=FLOAT_DTYPE)
        for weight, term in self.terms:
            total += weight * term.score(translations, quaternions)
        return total


@register_scoring("composite")
class CompositeScoring(ScoringFunction):
    """Factory producing weighted sums of other scoring functions.

    Parameters
    ----------
    terms:
        Sequence of ``(weight, scoring_function)`` pairs. Each member is
        bound to the complex independently.
    """

    def __init__(self, terms: list[tuple[float, ScoringFunction]] | None = None) -> None:
        if not terms:
            raise ScoringError("CompositeScoring requires a non-empty terms list")
        self.terms = list(terms)

    def bind(self, receptor: Receptor, ligand: Ligand) -> BoundComposite:
        bound = [(float(w), sf.bind(receptor, ligand)) for w, sf in self.terms]
        return BoundComposite(receptor, ligand, bound)


def make_lj_coulomb(
    lj_weight: float = 1.0, coulomb_weight: float = 0.5
) -> CompositeScoring:
    """Convenience: the classic LJ + electrostatics empirical score."""
    from repro.scoring.coulomb import CoulombScoring
    from repro.scoring.lennard_jones import LennardJonesScoring

    return CompositeScoring(
        [(lj_weight, LennardJonesScoring()), (coulomb_weight, CoulombScoring())]
    )
