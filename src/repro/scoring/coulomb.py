"""Electrostatic (Coulomb) scoring term.

§2.1: "The relevant non-bonded potentials used in VS calculations are the
Coulomb, or electrostatic, and the Lennard-Jones potentials". The paper's
evaluation uses LJ only; Coulomb is implemented here as one of the "many
other types of scoring functions still to be explored" from the future-work
section, and feeds the future-work benchmark.

We use the distance-dependent dielectric common in docking codes:
``ε(r) = ε₀ · r`` giving ``E = k q_i q_j / (ε₀ r²)`` — which conveniently
needs only the squared distance, like the LJ kernel.
"""

from __future__ import annotations

import numpy as np

from repro.constants import (
    COULOMB_CONSTANT,
    DEFAULT_DIELECTRIC,
    FLOAT_DTYPE,
    MIN_PAIR_DISTANCE,
)
from repro.errors import ScoringError
from repro.molecules.structures import Ligand, Receptor
from repro.scoring.base import BoundScorer, ScoringFunction, register_scoring

__all__ = ["CoulombScoring", "BoundCoulomb"]

#: Modelled FLOPs per pair for the Coulomb kernel (dist² + div + mul).
OPS_PER_COULOMB_PAIR: int = 12


class BoundCoulomb(BoundScorer):
    """Distance-dependent-dielectric Coulomb scorer for one complex."""

    def __init__(
        self,
        receptor: Receptor,
        ligand: Ligand,
        dielectric: float = DEFAULT_DIELECTRIC,
        chunk_size: int | None = None,
    ) -> None:
        super().__init__(receptor, ligand)
        if dielectric <= 0:
            raise ScoringError(f"dielectric must be positive, got {dielectric}")
        if chunk_size is not None:
            self.chunk_size = int(chunk_size)
        self.dielectric = float(dielectric)
        self.receptor_coords = np.ascontiguousarray(receptor.coords, dtype=FLOAT_DTYPE)
        self._rec_sq = np.einsum("ij,ij->i", self.receptor_coords, self.receptor_coords)
        # Outer product of charges, scaled by k/ε₀ — precomputed per complex.
        self._qq = (
            COULOMB_CONSTANT
            / self.dielectric
            * np.outer(ligand.charges, receptor.charges)
        ).astype(FLOAT_DTYPE)

    @property
    def flops_per_pose(self) -> float:
        return float(self.n_pairs * OPS_PER_COULOMB_PAIR)

    def _score_chunk(
        self, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        posed = self.posed_ligand_coords(translations, quaternions)
        p, a, _ = posed.shape
        flat = posed.reshape(p * a, 3)
        lig_sq = np.einsum("ij,ij->i", flat, flat)
        cross = flat @ self.receptor_coords.T
        r2 = lig_sq[:, None] + self._rec_sq[None, :] - 2.0 * cross
        np.maximum(r2, MIN_PAIR_DISTANCE * MIN_PAIR_DISTANCE, out=r2)
        energy = self._qq[None, :, :] / r2.reshape(p, a, -1)
        return energy.sum(axis=(1, 2))


@register_scoring("coulomb")
class CoulombScoring(ScoringFunction):
    """Factory for distance-dependent-dielectric Coulomb scorers."""

    def __init__(
        self, dielectric: float = DEFAULT_DIELECTRIC, chunk_size: int | None = None
    ) -> None:
        self.dielectric = dielectric
        self.chunk_size = chunk_size

    def bind(self, receptor: Receptor, ligand: Ligand) -> BoundCoulomb:
        return BoundCoulomb(
            receptor, ligand, dielectric=self.dielectric, chunk_size=self.chunk_size
        )
