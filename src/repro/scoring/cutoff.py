"""Cutoff-accelerated Lennard-Jones scoring.

LJ decays as ``r⁻⁶``; pairs beyond ~12 Å contribute negligibly. This scorer
prunes receptor atoms with a KD-tree: for each chunk of poses it gathers the
receptor atoms within ``cutoff + ligand_radius`` of the chunk's pose centres
and runs the dense kernel on that subset only. Because pose batches arrive
spot-major from the population layout, chunks are spatially tight and the
gathered subset is a fraction of the receptor.

This is a *host-side* optimisation: the modelled GPU kernel still performs
the full tiled ``n_rec × n_lig`` sweep (``flops_per_pose`` is inherited
unchanged from :class:`~repro.scoring.base.BoundScorer`), so using this
scorer changes nothing in the simulated timings — it only makes the Python
reproduction run faster. Accuracy versus the dense scorer is bounded by the
LJ tail beyond the cutoff (verified in tests to a loose tolerance).

``dtype=float32`` selects the single-precision path — the same precision the
paper's CUDA kernels use — which is ~3× faster on the host.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.constants import DEFAULT_CUTOFF, FLOAT_DTYPE
from repro.errors import ScoringError
from repro.molecules.forcefield import ForceField, default_forcefield
from repro.molecules.structures import Ligand, Receptor
from repro.scoring.base import BoundScorer, ScoringFunction, register_scoring
from repro.scoring.lennard_jones import lj_energy_sum_inplace

__all__ = ["CutoffLennardJonesScoring", "BoundCutoffLennardJones"]


class BoundCutoffLennardJones(BoundScorer):
    """KD-tree pruned LJ scorer for one complex."""

    def __init__(
        self,
        receptor: Receptor,
        ligand: Ligand,
        forcefield: ForceField,
        cutoff: float = DEFAULT_CUTOFF,
        chunk_size: int = 64,
        dtype: np.dtype | type = FLOAT_DTYPE,
    ) -> None:
        super().__init__(receptor, ligand)
        if cutoff <= 0:
            raise ScoringError(f"cutoff must be positive, got {cutoff}")
        self.chunk_size = int(chunk_size)
        self.cutoff = float(cutoff)
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ScoringError(f"dtype must be float32 or float64, got {dtype}")
        lig_classes = [str(e) for e in ligand.elements]
        rec_classes = [str(e) for e in receptor.elements]
        sigma, epsilon = forcefield.pair_tables(lig_classes, rec_classes)
        self._sigma2 = np.ascontiguousarray(sigma * sigma, dtype=self.dtype)
        self._epsilon4 = np.ascontiguousarray(4.0 * epsilon, dtype=self.dtype)
        self.receptor_coords = np.ascontiguousarray(receptor.coords, dtype=self.dtype)
        self._tree = cKDTree(receptor.coords)

    def _score_chunk(
        self, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        return self._score_posed_chunk(
            self.posed_ligand_coords(translations, quaternions)
        )

    def _score_posed_chunk(self, posed: np.ndarray) -> np.ndarray:
        # One shared receptor subset for the whole chunk: ball around the
        # chunk's bounding sphere of ligand atoms.
        flat_atoms = posed.reshape(-1, 3)
        center = flat_atoms.mean(axis=0)
        spread = float(np.linalg.norm(flat_atoms - center, axis=1).max())
        gather_radius = spread + self.cutoff
        idx = self._tree.query_ball_point(center, gather_radius)
        if len(idx) == 0:
            return np.zeros(posed.shape[0], dtype=FLOAT_DTYPE)
        idx = np.asarray(idx, dtype=np.int64)
        rec = self.receptor_coords[idx]  # (m, 3) in self.dtype
        rec_sq = np.einsum("ij,ij->i", rec, rec)
        sigma2 = self._sigma2[:, idx]
        epsilon4 = self._epsilon4[:, idx]
        posed = posed.astype(self.dtype, copy=False)
        p, a, _ = posed.shape
        flat = posed.reshape(p * a, 3)
        lig_sq = np.einsum("ij,ij->i", flat, flat)
        # Squared distances via one GEMM: |lig|² + |rec|² − 2 lig·rec.
        r2 = flat @ rec.T
        r2 *= self.dtype.type(-2.0)
        r2 += lig_sq[:, None]
        r2 += rec_sq[None, :]
        r2 = r2.reshape(p, a, -1)
        # Zero out contributions beyond the cutoff *before* the energy pass:
        # keeps results consistent across chunkings (the gathered subset
        # varies with the chunk). A squared distance pushed to +inf yields
        # exactly zero energy.
        np.copyto(r2, np.inf, where=r2 > self.dtype.type(self.cutoff * self.cutoff))
        return lj_energy_sum_inplace(r2, sigma2, epsilon4).astype(FLOAT_DTYPE)


@register_scoring("lennard-jones-cutoff")
class CutoffLennardJonesScoring(ScoringFunction):
    """Factory for cutoff-pruned LJ scorers (host-side acceleration)."""

    def __init__(
        self,
        forcefield: ForceField | None = None,
        cutoff: float = DEFAULT_CUTOFF,
        chunk_size: int = 64,
        dtype: np.dtype | type = FLOAT_DTYPE,
    ) -> None:
        self.forcefield = forcefield if forcefield is not None else default_forcefield()
        self.cutoff = cutoff
        self.chunk_size = chunk_size
        self.dtype = dtype

    def bind(self, receptor: Receptor, ligand: Ligand) -> BoundCutoffLennardJones:
        return BoundCutoffLennardJones(
            receptor,
            ligand,
            self.forcefield,
            cutoff=self.cutoff,
            chunk_size=self.chunk_size,
            dtype=self.dtype,
        )
