"""Cutoff-accelerated Lennard-Jones scoring.

LJ decays as ``r⁻⁶``; pairs beyond ~12 Å contribute negligibly. This scorer
prunes receptor atoms with a KD-tree: for each chunk of poses it gathers the
receptor atoms within ``cutoff + ligand_radius`` of the chunk's pose centres
and runs the dense kernel on that subset only. Because pose batches arrive
spot-major from the population layout, chunks are spatially tight and the
gathered subset is a fraction of the receptor.

This is a *host-side* optimisation: the modelled GPU kernel still performs
the full tiled ``n_rec × n_lig`` sweep (``flops_per_pose`` is inherited
unchanged from :class:`~repro.scoring.base.BoundScorer`), so using this
scorer changes nothing in the simulated timings — it only makes the Python
reproduction run faster. Accuracy versus the dense scorer is bounded by the
LJ tail beyond the cutoff (verified in tests to a loose tolerance).

Reduction order is *canonical*: energies sum only the within-cutoff pairs,
in (pose, ligand-atom, ascending receptor-index) order, via a compressed
:func:`numpy.add.reduceat`. The result therefore depends only on the set of
within-cutoff pairs — not on how the batch was chunked nor on how large a
receptor superset the KD-tree gathered — which is what lets the per-spot
pruned scorer (:mod:`repro.scoring.pruned`) and the process-parallel host
runtime (:mod:`repro.engine.host_runtime`) reproduce serial results
*bitwise*.

``dtype=float32`` selects the single-precision path — the same precision the
paper's CUDA kernels use — which is ~3× faster on the host.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.constants import DEFAULT_CUTOFF, FLOAT_DTYPE
from repro.errors import ScoringError
from repro.molecules.forcefield import ForceField, default_forcefield
from repro.molecules.structures import Ligand, Receptor
from repro.scoring.base import (
    BoundScorer,
    ScoringFunction,
    auto_chunk_size,
    register_scoring,
)
from repro.scoring.lennard_jones import lj_energy_terms_inplace

__all__ = [
    "CutoffLennardJonesScoring",
    "BoundCutoffLennardJones",
    "lj_cutoff_energy_sums",
    "GATHER_SLACK",
]

#: Absolute slack (Å) added to KD-tree gather radii. The keep test is
#: ``r² ≤ cutoff²`` in the scorer's dtype; float32 round-off in the GEMM
#: distance can keep a pair whose true distance is marginally beyond the
#: cutoff, so gathers must over-reach slightly or a kept pair could be
#: missed by one gather geometry and found by another — breaking the
#: bitwise gather-invariance the canonical reduction otherwise provides.
GATHER_SLACK: float = 0.01


def lj_cutoff_energy_sums(
    r2: np.ndarray,
    sigma2: np.ndarray,
    epsilon4: np.ndarray,
    cutoff2: float,
) -> np.ndarray:
    """Per-pose LJ sums over within-cutoff pairs only, in canonical order.

    Compresses the kept pairs (``r² ≤ cutoff²``) of each pose into one flat
    run — pose-major, ligand-atom-major, receptor index ascending — computes
    the elementwise terms, and segment-sums with :func:`numpy.add.reduceat`.
    Because excluded pairs never enter the accumulation, the result is
    *bitwise* independent of which receptor superset was gathered and of how
    the batch was chunked (NumPy's pairwise summation groups differently for
    different array lengths, so summing explicit zeros would not be).

    Parameters
    ----------
    r2:
        ``(p, a, m)`` squared distances; the receptor axis must be in
        ascending receptor-index order. Not modified.
    sigma2, epsilon4:
        ``(a, m)`` pair tables aligned with ``r2``'s trailing axes.
    cutoff2:
        Squared cutoff distance; pairs with ``r² ≤ cutoff²`` are kept.

    Returns
    -------
    numpy.ndarray
        ``(p,)`` per-pose energy sums in ``r2``'s dtype.
    """
    p, a, m = r2.shape
    keep = r2 <= r2.dtype.type(cutoff2)
    counts = keep.sum(axis=(1, 2))
    sums = np.zeros(p, dtype=r2.dtype)
    if not counts.any():
        return sums
    terms = lj_energy_terms_inplace(
        r2[keep],
        np.broadcast_to(sigma2, r2.shape)[keep],
        np.broadcast_to(epsilon4, r2.shape)[keep],
    )
    offsets = np.zeros(p, dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    nonzero = counts > 0
    sums[nonzero] = np.add.reduceat(terms, offsets[nonzero])
    return sums


class BoundCutoffLennardJones(BoundScorer):
    """KD-tree pruned LJ scorer for one complex."""

    def __init__(
        self,
        receptor: Receptor,
        ligand: Ligand,
        forcefield: ForceField,
        cutoff: float = DEFAULT_CUTOFF,
        chunk_size: int | None = None,
        dtype: np.dtype | type = FLOAT_DTYPE,
    ) -> None:
        super().__init__(receptor, ligand)
        if cutoff <= 0:
            raise ScoringError(f"cutoff must be positive, got {cutoff}")
        self.cutoff = float(cutoff)
        self.dtype = np.dtype(dtype)
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ScoringError(f"dtype must be float32 or float64, got {dtype}")
        if chunk_size is not None:
            self.chunk_size = int(chunk_size)
        else:
            self.chunk_size = auto_chunk_size(
                receptor.n_atoms, ligand.n_atoms, self.dtype.itemsize
            )
        lig_classes = [str(e) for e in ligand.elements]
        rec_classes = [str(e) for e in receptor.elements]
        sigma, epsilon = forcefield.pair_tables(lig_classes, rec_classes)
        self._sigma2 = np.ascontiguousarray(sigma * sigma, dtype=self.dtype)
        self._epsilon4 = np.ascontiguousarray(4.0 * epsilon, dtype=self.dtype)
        self.receptor_coords = np.ascontiguousarray(receptor.coords, dtype=self.dtype)
        # The KD-tree is always built on the float64 coordinates so that the
        # gathered supersets are identical wherever the scorer is rebuilt
        # (e.g. in host-runtime worker processes), even on the float32 path.
        self._tree_coords = np.ascontiguousarray(receptor.coords, dtype=np.float64)
        self._tree = cKDTree(self._tree_coords)

    def _score_chunk(
        self, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        return self._score_posed_chunk(
            self.posed_ligand_coords(translations, quaternions)
        )

    def _score_posed_chunk(self, posed: np.ndarray) -> np.ndarray:
        # One shared receptor subset for the whole chunk: ball around the
        # chunk's bounding sphere of ligand atoms.
        flat_atoms = posed.reshape(-1, 3)
        center = flat_atoms.mean(axis=0)
        spread = float(np.linalg.norm(flat_atoms - center, axis=1).max())
        gather_radius = spread + self.cutoff + GATHER_SLACK
        idx = self._tree.query_ball_point(center, gather_radius)
        if len(idx) == 0:
            return np.zeros(posed.shape[0], dtype=FLOAT_DTYPE)
        idx = np.sort(np.asarray(idx, dtype=np.int64))
        return self._score_gathered(posed, idx).astype(FLOAT_DTYPE)

    def _score_gathered(self, posed: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Score a chunk against the receptor subset ``idx`` (ascending).

        The canonical reduction makes the result bitwise independent of the
        subset, provided ``idx`` covers every within-cutoff receptor atom of
        every pose — the per-spot pruned scorer calls this with its own
        gathers.
        """
        rec = self.receptor_coords[idx]  # (m, 3) in self.dtype
        rec_sq = np.einsum("ij,ij->i", rec, rec)
        sigma2 = self._sigma2[:, idx]
        epsilon4 = self._epsilon4[:, idx]
        posed = posed.astype(self.dtype, copy=False)
        p, a, _ = posed.shape
        flat = posed.reshape(p * a, 3)
        lig_sq = np.einsum("ij,ij->i", flat, flat)
        # Squared distances via one GEMM: |lig|² + |rec|² − 2 lig·rec.
        r2 = flat @ rec.T
        r2 *= self.dtype.type(-2.0)
        r2 += lig_sq[:, None]
        r2 += rec_sq[None, :]
        return lj_cutoff_energy_sums(
            r2.reshape(p, a, -1), sigma2, epsilon4, self.cutoff * self.cutoff
        )


@register_scoring("lennard-jones-cutoff")
class CutoffLennardJonesScoring(ScoringFunction):
    """Factory for cutoff-pruned LJ scorers (host-side acceleration)."""

    def __init__(
        self,
        forcefield: ForceField | None = None,
        cutoff: float = DEFAULT_CUTOFF,
        chunk_size: int | None = None,
        dtype: np.dtype | type = FLOAT_DTYPE,
    ) -> None:
        self.forcefield = forcefield if forcefield is not None else default_forcefield()
        self.cutoff = cutoff
        self.chunk_size = chunk_size
        self.dtype = dtype

    def bind(self, receptor: Receptor, ligand: Ligand) -> BoundCutoffLennardJones:
        return BoundCutoffLennardJones(
            receptor,
            ligand,
            self.forcefield,
            cutoff=self.cutoff,
            chunk_size=self.chunk_size,
            dtype=self.dtype,
        )
