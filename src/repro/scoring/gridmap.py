"""Precomputed potential-grid scoring (AutoDock-style affinity maps).

Instead of summing over receptor atoms per pose, the receptor's LJ field is
precomputed once per *ligand atom class* on a regular 3-D grid covering the
search region; scoring a pose then costs only ``n_lig`` trilinear
interpolations. This trades a large one-off precomputation plus memory for a
much cheaper kernel — the design choice AutoDock ([24] in the paper) makes
and BINDSURF does not. The ablation bench quantifies the trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FLOAT_DTYPE
from repro.errors import ScoringError
from repro.molecules.forcefield import ForceField, default_forcefield
from repro.molecules.structures import Ligand, Receptor
from repro.scoring.base import BoundScorer, ScoringFunction, register_scoring
from repro.scoring.lennard_jones import lj_energy_from_r2

__all__ = ["GridMapScoring", "BoundGridMap"]

#: Modelled FLOPs per ligand atom for one trilinear interpolation
#: (8 gathers, 7 lerps ≈ 24 FLOPs + address math).
OPS_PER_INTERPOLATION: int = 30


class BoundGridMap(BoundScorer):
    """Grid-interpolated LJ scorer for one complex.

    Parameters
    ----------
    box_center, box_half:
        The axis-aligned region the grid covers. Poses whose atoms leave the
        box are scored via clamped coordinates plus a quadratic out-of-box
        penalty, keeping the optimiser inside the mapped region.
    spacing:
        Grid spacing in Å.
    """

    def __init__(
        self,
        receptor: Receptor,
        ligand: Ligand,
        forcefield: ForceField,
        box_center: np.ndarray,
        box_half: float,
        spacing: float = 0.5,
        chunk_size: int = 256,
    ) -> None:
        super().__init__(receptor, ligand)
        if spacing <= 0:
            raise ScoringError(f"spacing must be positive, got {spacing}")
        if box_half <= 0:
            raise ScoringError(f"box_half must be positive, got {box_half}")
        self.chunk_size = int(chunk_size)
        self.spacing = float(spacing)
        self.box_center = np.asarray(box_center, dtype=FLOAT_DTYPE)
        self.box_half = float(box_half)

        # Unique ligand atom classes present — one grid per class.
        lig_classes = [str(e) for e in ligand.elements]
        self.classes = sorted(set(lig_classes))
        self._class_of_atom = np.array(
            [self.classes.index(c) for c in lig_classes], dtype=np.int64
        )

        n_side = int(np.ceil(2 * self.box_half / self.spacing)) + 1
        self.n_side = n_side
        axis = self.box_center[None, :] + (
            np.arange(n_side, dtype=FLOAT_DTYPE)[:, None] * self.spacing - self.box_half
        )
        gx, gy, gz = np.meshgrid(axis[:, 0], axis[:, 1], axis[:, 2], indexing="ij")
        grid_points = np.stack([gx, gy, gz], axis=-1).reshape(-1, 3)

        # Precompute per-class fields: sum over receptor atoms of LJ at each
        # grid point. Chunk over grid points to bound memory.
        rec = receptor.coords
        rec_classes = [str(e) for e in receptor.elements]
        self.maps = np.empty((len(self.classes), n_side, n_side, n_side), dtype=FLOAT_DTYPE)
        for ci, cls in enumerate(self.classes):
            sigma_row, eps_row = forcefield.pair_tables([cls], rec_classes)
            field = np.empty(grid_points.shape[0], dtype=FLOAT_DTYPE)
            step = 4096
            for lo in range(0, grid_points.shape[0], step):
                hi = min(lo + step, grid_points.shape[0])
                diff = grid_points[lo:hi, None, :] - rec[None, :, :]
                r2 = np.einsum("gij,gij->gi", diff, diff)
                field[lo:hi] = lj_energy_from_r2(r2, sigma_row, eps_row).sum(axis=1)
            self.maps[ci] = field.reshape(n_side, n_side, n_side)

    # ------------------------------------------------------------------
    @property
    def flops_per_pose(self) -> float:
        """Grid scoring is interpolation-bound: ~30 FLOPs per ligand atom."""
        return float(self.ligand.n_atoms * OPS_PER_INTERPOLATION)

    @property
    def grid_bytes(self) -> int:
        """Memory footprint of the precomputed maps (modelled as float32)."""
        return int(self.maps.size * 4)

    def _score_chunk(
        self, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        posed = self.posed_ligand_coords(translations, quaternions)  # (p, a, 3)
        origin = self.box_center - self.box_half
        frac = (posed - origin) / self.spacing
        max_index = self.n_side - 1

        clamped = np.clip(frac, 0.0, max_index - 1e-9)
        # Quadratic penalty (kcal/mol per Å²) for atoms outside the box.
        overshoot = (np.abs(frac - clamped) * self.spacing).sum(axis=-1)
        penalty = 10.0 * (overshoot**2).sum(axis=-1)

        i0 = clamped.astype(np.int64)
        t = clamped - i0
        i1 = np.minimum(i0 + 1, max_index)

        maps = self.maps[self._class_of_atom]  # (a, n, n, n) gather per atom
        a_idx = np.arange(posed.shape[1])[None, :]

        def gather(ix, iy, iz):
            return maps[a_idx, ix, iy, iz]

        x0, y0, z0 = i0[..., 0], i0[..., 1], i0[..., 2]
        x1, y1, z1 = i1[..., 0], i1[..., 1], i1[..., 2]
        tx, ty, tz = t[..., 0], t[..., 1], t[..., 2]

        c000 = gather(x0, y0, z0)
        c100 = gather(x1, y0, z0)
        c010 = gather(x0, y1, z0)
        c110 = gather(x1, y1, z0)
        c001 = gather(x0, y0, z1)
        c101 = gather(x1, y0, z1)
        c011 = gather(x0, y1, z1)
        c111 = gather(x1, y1, z1)

        c00 = c000 * (1 - tx) + c100 * tx
        c10 = c010 * (1 - tx) + c110 * tx
        c01 = c001 * (1 - tx) + c101 * tx
        c11 = c011 * (1 - tx) + c111 * tx
        c0 = c00 * (1 - ty) + c10 * ty
        c1 = c01 * (1 - ty) + c11 * ty
        values = c0 * (1 - tz) + c1 * tz  # (p, a)
        return values.sum(axis=1) + penalty


@register_scoring("gridmap")
class GridMapScoring(ScoringFunction):
    """Factory for AutoDock-style grid-interpolated scorers.

    The grid covers a box around the *ligand-sized neighbourhood of the
    receptor centroid* by default; pass ``box_center``/``box_half`` to map a
    specific spot region instead.
    """

    def __init__(
        self,
        forcefield: ForceField | None = None,
        box_center: np.ndarray | None = None,
        box_half: float | None = None,
        spacing: float = 0.5,
        chunk_size: int = 256,
    ) -> None:
        self.forcefield = forcefield if forcefield is not None else default_forcefield()
        self.box_center = box_center
        self.box_half = box_half
        self.spacing = spacing
        self.chunk_size = chunk_size

    def bind(self, receptor: Receptor, ligand: Ligand) -> BoundGridMap:
        center = (
            np.asarray(self.box_center, dtype=FLOAT_DTYPE)
            if self.box_center is not None
            else receptor.centroid()
        )
        half = (
            float(self.box_half)
            if self.box_half is not None
            else ligand.max_radius() + 8.0
        )
        return BoundGridMap(
            receptor,
            ligand,
            self.forcefield,
            box_center=center,
            box_half=half,
            spacing=self.spacing,
            chunk_size=self.chunk_size,
        )
