"""Hydrogen-bond scoring term (12-10 potential).

Another entry in the paper's "many other types of scoring functions still
to be explored" (§6). Classic docking codes (AutoDock's empirical free
energy, the paper's [24]) model hydrogen bonds with a 12-10 potential
between polar atoms:

    E_hb = ε_hb [ 5 (r₀ / r)¹² − 6 (r₀ / r)¹⁰ ]

which has its minimum ``−ε_hb`` exactly at ``r = r₀`` (≈2.9 Å for N/O
pairs) and a much narrower well than LJ 12-6. We apply it between
donor/acceptor-capable atoms only (N, O, S by element class — crystal
structures carry no hydrogens, so the directional term is necessarily
simplified; this is the standard heavy-atom approximation).
"""

from __future__ import annotations

import numpy as np

from repro.constants import FLOAT_DTYPE, MIN_PAIR_DISTANCE
from repro.errors import ScoringError
from repro.molecules.structures import Ligand, Receptor
from repro.scoring.base import BoundScorer, ScoringFunction, register_scoring

__all__ = ["HydrogenBondScoring", "BoundHydrogenBond", "POLAR_ELEMENTS"]

#: Elements treated as hydrogen-bond capable (heavy-atom approximation).
POLAR_ELEMENTS: frozenset[str] = frozenset({"N", "O", "S"})

#: Modelled FLOPs per polar pair (dist² + two powers + blend).
OPS_PER_HBOND_PAIR: int = 16


class BoundHydrogenBond(BoundScorer):
    """12-10 polar-pair scorer for one complex."""

    def __init__(
        self,
        receptor: Receptor,
        ligand: Ligand,
        r0: float = 2.9,
        strength: float = 5.0,
        chunk_size: int | None = None,
    ) -> None:
        super().__init__(receptor, ligand)
        if r0 <= 0:
            raise ScoringError(f"r0 must be positive, got {r0}")
        if strength < 0:
            raise ScoringError(f"strength must be >= 0, got {strength}")
        if chunk_size is not None:
            self.chunk_size = int(chunk_size)
        self.r0 = float(r0)
        self.strength = float(strength)
        self._lig_polar = np.flatnonzero(
            np.isin(ligand.elements.astype(str), sorted(POLAR_ELEMENTS))
        )
        self._rec_polar = np.flatnonzero(
            np.isin(receptor.elements.astype(str), sorted(POLAR_ELEMENTS))
        )
        self._rec_coords = np.ascontiguousarray(
            receptor.coords[self._rec_polar], dtype=FLOAT_DTYPE
        )

    @property
    def n_polar_pairs(self) -> int:
        """Polar receptor-ligand pairs (the kernel's actual work)."""
        return int(self._lig_polar.size * self._rec_polar.size)

    @property
    def flops_per_pose(self) -> float:
        return float(self.n_polar_pairs * OPS_PER_HBOND_PAIR)

    def _score_chunk(
        self, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        return self._score_posed_chunk(
            self.posed_ligand_coords(translations, quaternions)
        )

    def _score_posed_chunk(self, posed: np.ndarray) -> np.ndarray:
        if self._lig_polar.size == 0 or self._rec_polar.size == 0:
            return np.zeros(posed.shape[0], dtype=FLOAT_DTYPE)
        lig = posed[:, self._lig_polar, :]  # (p, a_p, 3)
        diff = lig[:, :, None, :] - self._rec_coords[None, None, :, :]
        r2 = np.einsum("pijk,pijk->pij", diff, diff)
        np.maximum(r2, MIN_PAIR_DISTANCE * MIN_PAIR_DISTANCE, out=r2)
        # (r0/r)^10 and ^12 from the squared distance.
        s2 = (self.r0 * self.r0) / r2
        s10 = s2**5
        s12 = s10 * s2
        energy = self.strength * (5.0 * s12 - 6.0 * s10)
        return energy.sum(axis=(1, 2))


@register_scoring("hydrogen-bond")
class HydrogenBondScoring(ScoringFunction):
    """Factory for the 12-10 hydrogen-bond term.

    Parameters
    ----------
    r0:
        Optimal donor–acceptor heavy-atom distance (Å).
    strength:
        Well depth ε_hb (kcal/mol).
    """

    def __init__(self, r0: float = 2.9, strength: float = 5.0, chunk_size: int | None = None) -> None:
        self.r0 = r0
        self.strength = strength
        self.chunk_size = chunk_size

    def bind(self, receptor: Receptor, ligand: Ligand) -> BoundHydrogenBond:
        return BoundHydrogenBond(
            receptor, ligand, r0=self.r0, strength=self.strength, chunk_size=self.chunk_size
        )
