"""Dense vectorised Lennard-Jones 12-6 scoring — the paper's function.

"For simplicity our VS technique uses a scoring function based on the
Lennard-Jones potential." (§3.1). The energy of a pose is

    E = Σ_ij 4 ε_ij [ (σ_ij / r_ij)^12 − (σ_ij / r_ij)^6 ]

over all receptor-atom i / ligand-atom j pairs, with Lorentz–Berthelot
mixing. Distances are clamped at :data:`repro.constants.MIN_PAIR_DISTANCE`
so clashed poses score very badly but stay finite.

Implementation: squared distances via the expanded form
``|a|² + |b|² − 2 a·b`` so the inner loop is one GEMM plus elementwise work —
the NumPy analogue of the tiled CUDA kernel's arithmetic layout.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FLOAT_DTYPE, MIN_PAIR_DISTANCE
from repro.molecules.forcefield import ForceField, default_forcefield
from repro.molecules.structures import Ligand, Receptor
from repro.scoring.base import BoundScorer, ScoringFunction, register_scoring

__all__ = [
    "LennardJonesScoring",
    "BoundLennardJones",
    "lj_energy_from_r2",
    "lj_energy_terms_inplace",
]


def lj_energy_from_r2(
    r2: np.ndarray, sigma: np.ndarray, epsilon: np.ndarray
) -> np.ndarray:
    """Elementwise LJ 12-6 energy given *squared* distances.

    Broadcasts ``sigma``/``epsilon`` against ``r2``. Clamps ``r²`` at
    ``MIN_PAIR_DISTANCE²``.
    """
    r2 = np.maximum(r2, MIN_PAIR_DISTANCE * MIN_PAIR_DISTANCE)
    s2 = (sigma * sigma) / r2
    s6 = s2 * s2 * s2
    return 4.0 * epsilon * (s6 * s6 - s6)


def lj_energy_terms_inplace(
    r2: np.ndarray, sigma2: np.ndarray, epsilon4: np.ndarray
) -> np.ndarray:
    """Elementwise ``4ε (s¹² − s⁶)`` terms. **Destroys** ``r2``.

    The allocation-lean elementwise core shared by the dense sum and the
    cutoff scorer's compressed (within-cutoff only) reduction: two
    temporaries instead of five, all ops in place. Accepts any shape as long
    as ``sigma2``/``epsilon4`` broadcast against ``r2``.

    Parameters
    ----------
    r2:
        Squared distances (consumed as scratch).
    sigma2:
        ``σ²`` table broadcastable against ``r2`` (e.g. ``(a, r)``).
    epsilon4:
        ``4ε`` table, same broadcast shape.

    Returns
    -------
    numpy.ndarray
        Per-pair energy terms, shaped like ``r2``, in ``r2``'s dtype.
    """
    min_r2 = r2.dtype.type(MIN_PAIR_DISTANCE * MIN_PAIR_DISTANCE)
    np.maximum(r2, min_r2, out=r2)
    np.divide(sigma2, r2, out=r2)  # r2 := s²
    s6 = r2 * r2
    s6 *= r2  # s6 := s⁶
    w = s6 - r2.dtype.type(1.0)
    w *= s6  # w := s¹² − s⁶
    w *= epsilon4  # w := 4ε (s¹² − s⁶)
    return w


def lj_energy_sum_inplace(
    r2: np.ndarray, sigma2: np.ndarray, epsilon4: np.ndarray
) -> np.ndarray:
    """Per-pose LJ sums over a ``(p, a, r)`` pair block. **Destroys** ``r2``."""
    return lj_energy_terms_inplace(r2, sigma2, epsilon4).sum(axis=(1, 2))


class BoundLennardJones(BoundScorer):
    """Dense all-pairs LJ scorer for one complex."""

    def __init__(
        self,
        receptor: Receptor,
        ligand: Ligand,
        forcefield: ForceField,
        chunk_size: int | None = None,
    ) -> None:
        super().__init__(receptor, ligand)
        if chunk_size is not None:
            self.chunk_size = int(chunk_size)
        lig_classes = [str(e) for e in ligand.elements]
        rec_classes = [str(e) for e in receptor.elements]
        # (n_lig, n_rec) mixed parameter tables, precomputed once per complex.
        self.sigma, self.epsilon = forcefield.pair_tables(lig_classes, rec_classes)
        self._sigma2 = self.sigma * self.sigma
        self._epsilon4 = 4.0 * self.epsilon
        self.receptor_coords = np.ascontiguousarray(receptor.coords, dtype=FLOAT_DTYPE)
        self._rec_sq = np.einsum("ij,ij->i", self.receptor_coords, self.receptor_coords)

    def _score_chunk(
        self, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        return self._score_posed_chunk(
            self.posed_ligand_coords(translations, quaternions)
        )

    def _score_posed_chunk(self, posed: np.ndarray) -> np.ndarray:
        p, a, _ = posed.shape
        flat = posed.reshape(p * a, 3)
        # Squared distances: |lig|² + |rec|² − 2 lig·rec as one GEMM.
        lig_sq = np.einsum("ij,ij->i", flat, flat)
        r2 = flat @ self.receptor_coords.T  # (p*a, n_rec)
        r2 *= -2.0
        r2 += lig_sq[:, None]
        r2 += self._rec_sq[None, :]
        # lj_energy_sum_inplace clamps at MIN_PAIR_DISTANCE², which also
        # absorbs tiny negative values from GEMM round-off.
        return lj_energy_sum_inplace(
            r2.reshape(p, a, -1), self._sigma2, self._epsilon4
        )


@register_scoring("lennard-jones")
class LennardJonesScoring(ScoringFunction):
    """Factory for dense LJ scorers.

    Parameters
    ----------
    forcefield:
        LJ parameter table; defaults to the built-in AutoDock-like set.
    chunk_size:
        Poses per dense evaluation chunk; ``None`` (default) derives it from
        the pair-matrix memory budget (:func:`repro.scoring.base.auto_chunk_size`).
    """

    def __init__(
        self, forcefield: ForceField | None = None, chunk_size: int | None = None
    ) -> None:
        self.forcefield = forcefield if forcefield is not None else default_forcefield()
        self.chunk_size = chunk_size

    def bind(self, receptor: Receptor, ligand: Ligand) -> BoundLennardJones:
        return BoundLennardJones(
            receptor, ligand, self.forcefield, chunk_size=self.chunk_size
        )
