"""Per-spot receptor pruning: score each spot against its active-site subset.

Spots are fixed spheres on the receptor surface, and every metaheuristic
operator clips translations back into its spot's search box
(:meth:`repro.metaheuristics.context.SearchContext.clip_to_bounds`). Poses
belonging to a spot therefore can only ever interact with receptor atoms
near that spot — so each spot's scoring GEMM can shrink from ``n_receptor``
columns to the precomputed subset of receptor atoms within reach of the
spot's box. This is the input-aware pruning direction of Accordi et al.
(*Improving computation efficiency using input and architecture features*),
applied at the host level.

Exactness contract:

* Wrapping :class:`~repro.scoring.cutoff.BoundCutoffLennardJones` is
  **exact — bitwise**. The subset margin is ``ligand_extent + cutoff``, so
  every within-cutoff pair of every in-box pose survives pruning, and the
  cutoff scorer's canonical reduction
  (:func:`~repro.scoring.cutoff.lj_cutoff_energy_sums`) makes the energy
  independent of the gathered superset.
* Wrapping :class:`~repro.scoring.lennard_jones.BoundLennardJones` is
  **approximate**: the dense sum runs over all pairs, so dropping
  beyond-``prune_cutoff`` receptor atoms truncates the LJ tail. The
  truncation is bounded by ``n_dropped · n_lig · max(4ε) · (max σ²/c²)³``
  per pose, reported per spot in :attr:`BoundSpotPruned.error_bounds`.

Poses that fall outside their spot's box (or carry an unknown spot id) are
scored through the unpruned inner scorer, so pruning never changes *which*
answer is produced — only how much of the receptor is touched computing it.

``flops_per_pose`` stays the full dense ``n_receptor × n_ligand`` count per
the contract in :mod:`repro.scoring.base`: the *modelled* GPU kernel still
sweeps everything; pruning only accelerates the Python host math.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.constants import DEFAULT_CUTOFF, FLOAT_DTYPE
from repro.errors import ScoringError
from repro.molecules.spots import Spot
from repro.scoring.base import (
    BoundScorer,
    ScoringFunction,
    check_spot_ids,
    non_finite_error,
)
from repro.scoring.cutoff import GATHER_SLACK, BoundCutoffLennardJones
from repro.scoring.lennard_jones import BoundLennardJones, lj_energy_sum_inplace

__all__ = ["spot_prune_indices", "prune_bound", "BoundSpotPruned", "SpotPrunedScoring"]

#: Tolerance (Å) for the "translation inside the spot box" test; operators
#: clip exactly to the box, so anything beyond round-off means a pose from a
#: different pipeline and is routed to the unpruned fallback.
_BOX_EPS: float = 1e-9


def spot_prune_indices(
    receptor_coords: np.ndarray,
    spots: list[Spot],
    margin: float,
) -> dict[int, np.ndarray]:
    """Receptor-atom subset within ``margin`` of each spot's search box.

    Uses the exact point-to-axis-aligned-box distance for the box
    ``center ± radius`` (the region translations are clipped into), so the
    subsets are as tight as the geometry allows without per-pose knowledge.

    Returns a mapping ``spot.index -> sorted int64 atom indices``.
    """
    coords = np.asarray(receptor_coords, dtype=np.float64)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ScoringError(f"receptor coords must be (n, 3), got {coords.shape}")
    if margin < 0:
        raise ScoringError(f"margin must be non-negative, got {margin}")
    subsets: dict[int, np.ndarray] = {}
    for spot in spots:
        d = np.abs(coords - np.asarray(spot.center, dtype=np.float64)[None, :])
        d -= spot.radius
        np.maximum(d, 0.0, out=d)
        dist2 = np.einsum("ij,ij->i", d, d)
        subsets[spot.index] = np.flatnonzero(dist2 <= margin * margin).astype(np.int64)
    return subsets


@dataclass
class _SpotView:
    """Lazily built per-spot scoring state (one per spot actually scored)."""

    idx: np.ndarray  # sorted global receptor-atom indices
    tree: cKDTree | None = None  # cutoff mode: KD-tree over the subset
    rec: np.ndarray | None = None  # dense mode: subset coords
    rec_sq: np.ndarray | None = None
    sigma2: np.ndarray | None = None
    epsilon4: np.ndarray | None = None


class BoundSpotPruned(BoundScorer):
    """Spot-aware wrapper pruning the receptor per spot.

    Parameters
    ----------
    inner:
        The scorer to accelerate — a
        :class:`~repro.scoring.cutoff.BoundCutoffLennardJones` (exact) or a
        :class:`~repro.scoring.lennard_jones.BoundLennardJones`
        (bounded-error; see module docstring).
    spots:
        The search spots; their ``center``/``radius`` boxes define the
        subsets.
    prune_cutoff:
        Interaction reach used for pruning. Defaults to the inner scorer's
        ``cutoff`` (cutoff mode) or :data:`repro.constants.DEFAULT_CUTOFF`
        (dense mode).
    """

    supports_spot_scoring = True

    def __init__(
        self,
        inner: BoundScorer,
        spots: list[Spot],
        prune_cutoff: float | None = None,
    ) -> None:
        if isinstance(inner, BoundCutoffLennardJones):
            self.mode = "cutoff"
            reach = inner.cutoff if prune_cutoff is None else float(prune_cutoff)
            if reach < inner.cutoff:
                raise ScoringError(
                    f"prune_cutoff {reach} below the scoring cutoff "
                    f"{inner.cutoff} would change cutoff-scorer results"
                )
        elif isinstance(inner, BoundLennardJones):
            self.mode = "dense"
            reach = DEFAULT_CUTOFF if prune_cutoff is None else float(prune_cutoff)
        else:
            raise ScoringError(
                f"spot pruning supports the dense/cutoff LJ scorers, "
                f"not {type(inner).__name__}"
            )
        if not spots:
            raise ScoringError("spot pruning needs at least one spot")
        super().__init__(inner.receptor, inner.ligand)
        self.inner = inner
        self.chunk_size = inner.chunk_size
        self.prune_cutoff = float(reach)
        #: Farthest ligand atom from the centroid — poses reach at most this
        #: far beyond their translation.
        self.lig_extent = float(np.linalg.norm(self.ligand_coords, axis=1).max())
        self.margin = self.lig_extent + self.prune_cutoff + GATHER_SLACK
        tree_coords = (
            inner._tree_coords if self.mode == "cutoff" else inner.receptor_coords
        )
        self._tree_coords = np.asarray(tree_coords, dtype=np.float64)
        self.subsets = spot_prune_indices(self._tree_coords, spots, self.margin)
        order = sorted(self.subsets)
        by_index = {s.index: s for s in spots}
        self.spot_indices = np.asarray(order, dtype=np.int64)
        self.spot_centers = np.ascontiguousarray(
            [by_index[i].center for i in order], dtype=np.float64
        )
        self.spot_radii = np.asarray(
            [by_index[i].radius for i in order], dtype=np.float64
        )
        self._finish_init()

    @classmethod
    def _from_parts(
        cls,
        inner: BoundScorer,
        mode: str,
        prune_cutoff: float,
        lig_extent: float,
        margin: float,
        subsets: dict[int, np.ndarray],
        spot_indices: np.ndarray,
        spot_centers: np.ndarray,
        spot_radii: np.ndarray,
    ) -> "BoundSpotPruned":
        """Rebuild from precomputed parts (host-runtime worker processes).

        Skips all geometry recomputation: the parent's subsets are reused
        verbatim so worker results are bitwise identical to the parent's.
        """
        self = cls.__new__(cls)
        self.inner = inner
        self.mode = mode
        self.receptor = inner.receptor
        self.ligand = inner.ligand
        self.ligand_coords = inner.ligand_coords
        self.chunk_size = inner.chunk_size
        self.prune_cutoff = float(prune_cutoff)
        self.lig_extent = float(lig_extent)
        self.margin = float(margin)
        self._tree_coords = (
            inner._tree_coords if mode == "cutoff" else inner.receptor_coords
        )
        self.subsets = subsets
        self.spot_indices = np.asarray(spot_indices, dtype=np.int64)
        self.spot_centers = np.asarray(spot_centers, dtype=np.float64)
        self.spot_radii = np.asarray(spot_radii, dtype=np.float64)
        self._finish_init()
        return self

    def _finish_init(self) -> None:
        self._spot_row = {int(s): i for i, s in enumerate(self.spot_indices)}
        self._views: dict[int, _SpotView] = {}
        self.reset_pair_stats()
        n_rec = self.receptor.n_atoms
        n_lig = self.ligand.n_atoms
        if self.mode == "dense":
            # Tail bound per dropped pair at r ≥ c: |4ε(s¹²−s⁶)| ≤ 4ε s⁶.
            c2 = self.prune_cutoff * self.prune_cutoff
            s2_max = float(np.max(self.inner._sigma2)) / c2
            per_pair = float(np.max(self.inner._epsilon4)) * s2_max**3
            self.error_bounds = {
                spot: float((n_rec - idx.size) * n_lig * per_pair)
                for spot, idx in self.subsets.items()
            }
        else:
            self.error_bounds = {spot: 0.0 for spot in self.subsets}

    # ------------------------------------------------------------------
    # pair accounting
    # ------------------------------------------------------------------
    def reset_pair_stats(self) -> None:
        """Zero the evaluated/dense pair counters."""
        self.pairs_evaluated = 0
        self.pairs_dense = 0

    @property
    def prune_ratio(self) -> float:
        """Dense pair count over actually evaluated pairs (≥ 1 is a win)."""
        if self.pairs_evaluated == 0:
            return float("nan")
        return self.pairs_dense / self.pairs_evaluated

    def _charge(self, n_poses: int, gathered: int) -> None:
        self.pairs_evaluated += n_poses * self.ligand.n_atoms * gathered
        self.pairs_dense += n_poses * self.n_pairs

    # ------------------------------------------------------------------
    # scoring
    # ------------------------------------------------------------------
    def _score_chunk(
        self, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        # Plain (spot-blind) scoring cannot prune; delegate to the inner
        # scorer. chunk_size matches inner's, so the chunk grid is identical
        # to calling inner.score directly.
        self._charge(translations.shape[0], self.receptor.n_atoms)
        return self.inner._score_chunk(translations, quaternions)

    def score_spots(
        self,
        spot_ids: np.ndarray,
        translations: np.ndarray,
        quaternions: np.ndarray,
    ) -> np.ndarray:
        """Score poses against their spots' receptor subsets.

        Poses are grouped by spot id (stable within a group, so results land
        back in input order); each group is scored in ``chunk_size`` chunks
        against its subset. Out-of-box or unknown-spot poses fall back to the
        unpruned inner scorer.
        """
        translations = np.asarray(translations, dtype=FLOAT_DTYPE)
        quaternions = np.asarray(quaternions, dtype=FLOAT_DTYPE)
        if translations.ndim != 2 or translations.shape[1] != 3:
            raise ScoringError(
                f"translations must have shape (n, 3), got {translations.shape}"
            )
        if quaternions.shape != (translations.shape[0], 4):
            raise ScoringError(
                "quaternions must have shape "
                f"({translations.shape[0]}, 4), got {quaternions.shape}"
            )
        n = translations.shape[0]
        spot_ids = check_spot_ids(spot_ids, n)
        if n == 0:
            return np.empty(0, dtype=FLOAT_DTYPE)
        out = np.empty(n, dtype=FLOAT_DTYPE)
        order = np.argsort(spot_ids, kind="stable")
        sorted_ids = spot_ids[order]
        start = 0
        while start < n:
            end = int(np.searchsorted(sorted_ids, sorted_ids[start], side="right"))
            rows = order[start:end]
            out[rows] = self._score_group(
                int(sorted_ids[start]), translations[rows], quaternions[rows]
            )
            start = end
        if not np.all(np.isfinite(out)):
            raise non_finite_error(out, translations.shape)
        return out

    def _score_group(
        self, spot: int, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        row = self._spot_row.get(spot)
        if row is None:
            self._charge(translations.shape[0], self.receptor.n_atoms)
            return self.inner.score(translations, quaternions)
        in_box = np.all(
            np.abs(translations - self.spot_centers[row])
            <= self.spot_radii[row] + _BOX_EPS,
            axis=1,
        )
        if in_box.all():
            return self._score_pruned(spot, translations, quaternions)
        out = np.empty(translations.shape[0], dtype=FLOAT_DTYPE)
        outside = ~in_box
        self._charge(int(outside.sum()), self.receptor.n_atoms)
        out[outside] = self.inner.score(translations[outside], quaternions[outside])
        if in_box.any():
            out[in_box] = self._score_pruned(
                spot, translations[in_box], quaternions[in_box]
            )
        return out

    def _score_pruned(
        self, spot: int, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        view = self._view(spot)
        n = translations.shape[0]
        out = np.empty(n, dtype=FLOAT_DTYPE)
        for lo in range(0, n, self.chunk_size):
            hi = min(lo + self.chunk_size, n)
            out[lo:hi] = self._score_pruned_chunk(
                view, translations[lo:hi], quaternions[lo:hi]
            )
        return out

    def _score_pruned_chunk(
        self, view: _SpotView, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        posed = self.posed_ligand_coords(translations, quaternions)
        if self.mode == "cutoff":
            # Gather the union of per-pose reach balls over the spot subset:
            # tighter than one chunk-wide ball, and still a superset of every
            # within-cutoff pair, so the canonical reduction is bitwise
            # unchanged.
            reach = self.lig_extent + self.inner.cutoff + GATHER_SLACK
            hits = view.tree.query_ball_point(translations, reach)
            local = np.unique(
                np.concatenate([np.asarray(h, dtype=np.int64) for h in hits])
                if len(hits)
                else np.empty(0, dtype=np.int64)
            )
            self._charge(posed.shape[0], int(local.size))
            if local.size == 0:
                return np.zeros(posed.shape[0], dtype=FLOAT_DTYPE)
            idx = view.idx[local]  # ascending: view.idx sorted, local sorted
            return self.inner._score_gathered(posed, idx).astype(FLOAT_DTYPE)
        # dense mode: full subset, no per-chunk gather
        self._charge(posed.shape[0], int(view.idx.size))
        if view.idx.size == 0:
            return np.zeros(posed.shape[0], dtype=FLOAT_DTYPE)
        p, a, _ = posed.shape
        flat = posed.reshape(p * a, 3)
        lig_sq = np.einsum("ij,ij->i", flat, flat)
        r2 = flat @ view.rec.T
        r2 *= -2.0
        r2 += lig_sq[:, None]
        r2 += view.rec_sq[None, :]
        return lj_energy_sum_inplace(
            r2.reshape(p, a, -1), view.sigma2, view.epsilon4
        ).astype(FLOAT_DTYPE)

    def _view(self, spot: int) -> _SpotView:
        view = self._views.get(spot)
        if view is not None:
            return view
        idx = self.subsets[spot]
        if self.mode == "cutoff":
            view = _SpotView(idx=idx, tree=cKDTree(self._tree_coords[idx]))
        else:
            rec = np.ascontiguousarray(self.inner.receptor_coords[idx])
            view = _SpotView(
                idx=idx,
                rec=rec,
                rec_sq=np.einsum("ij,ij->i", rec, rec),
                sigma2=np.ascontiguousarray(self.inner._sigma2[:, idx]),
                epsilon4=np.ascontiguousarray(self.inner._epsilon4[:, idx]),
            )
        self._views[spot] = view
        return view


def prune_bound(
    scorer: BoundScorer,
    spots: list[Spot],
    prune_cutoff: float | None = None,
) -> BoundSpotPruned:
    """Wrap an already-bound dense/cutoff LJ scorer with per-spot pruning."""
    return BoundSpotPruned(scorer, spots, prune_cutoff=prune_cutoff)


class SpotPrunedScoring(ScoringFunction):
    """Factory wrapping another scoring factory with per-spot pruning.

    Spots must be known before binding, so this factory takes them up front —
    use :func:`prune_bound` when the inner scorer is already bound.
    """

    name = "spot-pruned"

    def __init__(
        self,
        spots: list[Spot],
        inner: ScoringFunction | None = None,
        prune_cutoff: float | None = None,
    ) -> None:
        from repro.scoring.cutoff import CutoffLennardJonesScoring

        self.spots = spots
        self.inner = (
            inner
            if inner is not None
            else CutoffLennardJonesScoring(dtype=np.float32)
        )
        self.prune_cutoff = prune_cutoff

    def bind(self, receptor, ligand) -> BoundSpotPruned:
        return prune_bound(
            self.inner.bind(receptor, ligand), self.spots, self.prune_cutoff
        )
