"""Pure-Python reference scorer for cross-validation.

Triple-loop, no vectorisation: the transparently correct implementation the
fast kernels are tested against. Use on small inputs only.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FLOAT_DTYPE, MIN_PAIR_DISTANCE
from repro.molecules.forcefield import ForceField, default_forcefield
from repro.molecules.structures import Ligand, Receptor
from repro.molecules.transforms import apply_pose
from repro.scoring.base import BoundScorer, ScoringFunction

__all__ = ["ReferenceLJScoring", "BoundReferenceLJ"]


class BoundReferenceLJ(BoundScorer):
    """Loop-based LJ scorer; O(n_poses × n_lig × n_rec) Python iterations."""

    def __init__(
        self, receptor: Receptor, ligand: Ligand, forcefield: ForceField
    ) -> None:
        super().__init__(receptor, ligand)
        self.chunk_size = 1_000_000  # no chunking needed; scoring is per-pose
        self._ff = forcefield
        self._lig_classes = [str(e) for e in ligand.elements]
        self._rec_classes = [str(e) for e in receptor.elements]

    def _score_chunk(
        self, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        out = np.empty(translations.shape[0], dtype=FLOAT_DTYPE)
        min_r2 = MIN_PAIR_DISTANCE * MIN_PAIR_DISTANCE
        for p in range(translations.shape[0]):
            posed = apply_pose(self.ligand_coords, translations[p], quaternions[p])
            total = 0.0
            for i in range(self.ligand.n_atoms):
                xi, yi, zi = posed[i]
                for j in range(self.receptor.n_atoms):
                    xj, yj, zj = self.receptor.coords[j]
                    r2 = (xi - xj) ** 2 + (yi - yj) ** 2 + (zi - zj) ** 2
                    r2 = max(r2, min_r2)
                    mixed = self._ff.mix(self._lig_classes[i], self._rec_classes[j])
                    s6 = (mixed.sigma * mixed.sigma / r2) ** 3
                    total += 4.0 * mixed.epsilon * (s6 * s6 - s6)
            out[p] = total
        return out


class ReferenceLJScoring(ScoringFunction):
    """Factory for the pure-Python reference scorer (tests only).

    Deliberately *not* registered in the scoring registry: it is a testing
    oracle, not a user-facing option.
    """

    name = "reference-lj"

    def __init__(self, forcefield: ForceField | None = None) -> None:
        self.forcefield = forcefield if forcefield is not None else default_forcefield()

    def bind(self, receptor: Receptor, ligand: Ligand) -> BoundReferenceLJ:
        return BoundReferenceLJ(receptor, ligand, self.forcefield)


def pairwise_lj(
    r: float, sigma: float, epsilon: float
) -> float:
    """Scalar LJ 12-6 energy at distance ``r`` — used by analytic tests."""
    r = max(r, MIN_PAIR_DISTANCE)
    s6 = (sigma / r) ** 6
    return 4.0 * epsilon * (s6 * s6 - s6)


def lj_minimum(sigma: float, epsilon: float) -> tuple[float, float]:
    """Analytic LJ minimum: ``(r_min, e_min) = (2^(1/6) σ, −ε)``."""
    return (2.0 ** (1.0 / 6.0)) * sigma, -epsilon


def lj_zero_crossing(sigma: float) -> float:
    """Distance where the LJ energy crosses zero (= σ)."""
    return sigma


def well_depth_at(r: float, sigma: float, epsilon: float) -> float:
    """Alias of :func:`pairwise_lj`, kept for test readability."""
    return pairwise_lj(r, sigma, epsilon)
