"""Soft-core Lennard-Jones scoring.

Hard LJ walls make early random poses astronomically bad, which flattens
selection pressure (every clashed pose is "equally terrible" at float
precision). The soft-core variant caps the repulsive singularity with the
standard alchemical form

    E = 4 ε [ (σ⁶ / (α σ⁶ + r⁶))² · σ⁻¹² … ]   →   4 ε [ u² − u ],
    u = σ⁶ / (α σ⁶ + r⁶)

which equals plain LJ at large ``r`` and saturates at ``4ε(1/α² − 1/α)`` as
``r → 0``. Part of the future-work scoring-function sweep.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FLOAT_DTYPE
from repro.errors import ScoringError
from repro.molecules.forcefield import ForceField, default_forcefield
from repro.molecules.structures import Ligand, Receptor
from repro.scoring.base import BoundScorer, ScoringFunction, register_scoring

__all__ = ["SoftcoreLJScoring", "BoundSoftcoreLJ"]

#: Modelled FLOPs per pair: comparable to plain LJ plus the softening add.
OPS_PER_SOFTCORE_PAIR: int = 20


class BoundSoftcoreLJ(BoundScorer):
    """Soft-core LJ scorer for one complex."""

    def __init__(
        self,
        receptor: Receptor,
        ligand: Ligand,
        forcefield: ForceField,
        alpha: float = 0.5,
        chunk_size: int | None = None,
    ) -> None:
        super().__init__(receptor, ligand)
        if alpha <= 0:
            raise ScoringError(f"alpha must be positive, got {alpha}")
        self.alpha = float(alpha)
        if chunk_size is not None:
            self.chunk_size = int(chunk_size)
        lig_classes = [str(e) for e in ligand.elements]
        rec_classes = [str(e) for e in receptor.elements]
        sigma, self.epsilon = forcefield.pair_tables(lig_classes, rec_classes)
        self._sigma6 = sigma**6
        self.receptor_coords = np.ascontiguousarray(receptor.coords, dtype=FLOAT_DTYPE)
        self._rec_sq = np.einsum("ij,ij->i", self.receptor_coords, self.receptor_coords)

    @property
    def flops_per_pose(self) -> float:
        return float(self.n_pairs * OPS_PER_SOFTCORE_PAIR)

    def _score_chunk(
        self, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        posed = self.posed_ligand_coords(translations, quaternions)
        p, a, _ = posed.shape
        flat = posed.reshape(p * a, 3)
        lig_sq = np.einsum("ij,ij->i", flat, flat)
        cross = flat @ self.receptor_coords.T
        r2 = lig_sq[:, None] + self._rec_sq[None, :] - 2.0 * cross
        np.maximum(r2, 0.0, out=r2)
        r6 = (r2 * r2 * r2).reshape(p, a, -1)
        u = self._sigma6[None] / (self.alpha * self._sigma6[None] + r6)
        energy = 4.0 * self.epsilon[None] * (u * u - u)
        return energy.sum(axis=(1, 2))


@register_scoring("lennard-jones-softcore")
class SoftcoreLJScoring(ScoringFunction):
    """Factory for soft-core LJ scorers (clash-tolerant landscape)."""

    def __init__(
        self,
        forcefield: ForceField | None = None,
        alpha: float = 0.5,
        chunk_size: int | None = None,
    ) -> None:
        self.forcefield = forcefield if forcefield is not None else default_forcefield()
        self.alpha = alpha
        self.chunk_size = chunk_size

    def bind(self, receptor: Receptor, ligand: Ligand) -> BoundSoftcoreLJ:
        return BoundSoftcoreLJ(
            receptor,
            ligand,
            self.forcefield,
            alpha=self.alpha,
            chunk_size=self.chunk_size,
        )
