"""Tile-structured Lennard-Jones scoring.

The paper's CUDA kernels "take advantage of data-locality through tiling
implementation via shared memory, which benefits the receptor scalability"
(§5). This scorer reproduces that control structure on the host: receptor
atoms are processed in fixed-size *tiles* (the shared-memory staging unit);
each tile is loaded once and applied to every pose/ligand-atom in the chunk.

Besides being the faithful mirror of the GPU kernel, the tile loop exposes
the statistics the hardware model consumes (tiles per launch, shared-memory
bytes per tile), and the ablation bench compares it against the naive
row-at-a-time scorer to demonstrate the locality effect.
"""

from __future__ import annotations

import numpy as np

from repro.constants import FLOAT_DTYPE
from repro.errors import ScoringError
from repro.molecules.forcefield import ForceField, default_forcefield
from repro.molecules.structures import Ligand, Receptor
from repro.scoring.base import BoundScorer, ScoringFunction, register_scoring
from repro.scoring.lennard_jones import lj_energy_from_r2

__all__ = ["TiledLennardJonesScoring", "BoundTiledLennardJones", "DEFAULT_TILE"]

#: Default receptor-tile size: one tile per shared-memory stage. 128 atoms ×
#: (3 coords + 2 params) × 4 bytes = 2.5 KB, comfortably within the 16/48 KB
#: shared memory of Table 1's devices.
DEFAULT_TILE: int = 128


class BoundTiledLennardJones(BoundScorer):
    """Tile-looped dense LJ scorer for one complex."""

    def __init__(
        self,
        receptor: Receptor,
        ligand: Ligand,
        forcefield: ForceField,
        tile: int = DEFAULT_TILE,
        chunk_size: int | None = None,
    ) -> None:
        super().__init__(receptor, ligand)
        if tile < 1:
            raise ScoringError(f"tile size must be >= 1, got {tile}")
        self.tile = int(tile)
        if chunk_size is not None:
            self.chunk_size = int(chunk_size)
        lig_classes = [str(e) for e in ligand.elements]
        rec_classes = [str(e) for e in receptor.elements]
        self.sigma, self.epsilon = forcefield.pair_tables(lig_classes, rec_classes)
        self.receptor_coords = np.ascontiguousarray(receptor.coords, dtype=FLOAT_DTYPE)

    # ------------------------------------------------------------------
    @property
    def n_tiles(self) -> int:
        """Receptor tiles per pose evaluation (shared-memory stages)."""
        return -(-self.receptor.n_atoms // self.tile)

    @property
    def shared_bytes_per_tile(self) -> int:
        """Bytes staged per tile in the modelled kernel (SP coords+params)."""
        return self.tile * 5 * 4  # x, y, z, sigma, epsilon as float32

    def _score_chunk(
        self, translations: np.ndarray, quaternions: np.ndarray
    ) -> np.ndarray:
        posed = self.posed_ligand_coords(translations, quaternions)  # (p, a, 3)
        total = np.zeros(posed.shape[0], dtype=FLOAT_DTYPE)
        n_rec = self.receptor_coords.shape[0]
        for lo in range(0, n_rec, self.tile):
            hi = min(lo + self.tile, n_rec)
            rec_tile = self.receptor_coords[lo:hi]  # the shared-memory stage
            diff = posed[:, :, None, :] - rec_tile[None, None, :, :]
            r2 = np.einsum("pijk,pijk->pij", diff, diff)
            energy = lj_energy_from_r2(
                r2, self.sigma[None, :, lo:hi], self.epsilon[None, :, lo:hi]
            )
            total += energy.sum(axis=(1, 2))
        return total


@register_scoring("lennard-jones-tiled")
class TiledLennardJonesScoring(ScoringFunction):
    """Factory for tile-structured LJ scorers (the CUDA-kernel mirror)."""

    def __init__(
        self,
        forcefield: ForceField | None = None,
        tile: int = DEFAULT_TILE,
        chunk_size: int | None = None,
    ) -> None:
        self.forcefield = forcefield if forcefield is not None else default_forcefield()
        self.tile = tile
        self.chunk_size = chunk_size

    def bind(self, receptor: Receptor, ligand: Ligand) -> BoundTiledLennardJones:
        return BoundTiledLennardJones(
            receptor, ligand, self.forcefield, tile=self.tile, chunk_size=self.chunk_size
        )
