"""Virtual-screening public API: docking, library screening, pipeline facade."""

from repro.vs.analysis import (
    PoseCluster,
    cluster_poses,
    convergence_statistics,
    pairwise_rmsd_matrix,
    pose_rmsd,
)
from repro.vs.docking import dock
from repro.vs.flexible import FlexibleDockingResult, FlexiblePose, dock_flexible
from repro.vs.pipeline import PipelineConfig, VirtualScreeningPipeline
from repro.vs.results import DockingResult, ScreeningEntry, ScreeningReport
from repro.vs.screening import screen, synthetic_library
from repro.vs.visualize import ascii_projection, gantt, score_map, sparkline

__all__ = [
    "DockingResult",
    "FlexibleDockingResult",
    "FlexiblePose",
    "PipelineConfig",
    "PoseCluster",
    "ScreeningEntry",
    "ScreeningReport",
    "VirtualScreeningPipeline",
    "ascii_projection",
    "gantt",
    "cluster_poses",
    "convergence_statistics",
    "dock",
    "pairwise_rmsd_matrix",
    "pose_rmsd",
    "dock_flexible",
    "score_map",
    "screen",
    "sparkline",
    "synthetic_library",
]
