"""Post-docking analysis: pose RMSD, clustering, convergence statistics.

Docking engines report more than a single best score: pose families
(clusters of similar placements), the spread of the surface score map, and
how the search converged. These utilities operate on the result objects of
:mod:`repro.vs.docking` and the metaheuristic histories.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.metaheuristics.individual import Conformation
from repro.molecules.structures import Ligand
from repro.molecules.transforms import apply_pose

__all__ = [
    "pose_rmsd",
    "pairwise_rmsd_matrix",
    "cluster_poses",
    "PoseCluster",
    "convergence_statistics",
]


def _posed_coords(ligand: Ligand, conformation: Conformation) -> np.ndarray:
    centred = ligand.coords - ligand.coords.mean(axis=0)
    return apply_pose(centred, conformation.translation, conformation.quaternion)


def pose_rmsd(ligand: Ligand, a: Conformation, b: Conformation) -> float:
    """Root-mean-square deviation (Å) between two placements of ``ligand``.

    Plain coordinate RMSD with atom correspondence by index (standard
    docking-pose RMSD; no symmetry correction).
    """
    ca = _posed_coords(ligand, a)
    cb = _posed_coords(ligand, b)
    return float(np.sqrt(((ca - cb) ** 2).sum(axis=1).mean()))


def pairwise_rmsd_matrix(
    ligand: Ligand, conformations: list[Conformation]
) -> np.ndarray:
    """Symmetric ``(n, n)`` RMSD matrix over a pose list."""
    if not conformations:
        raise ReproError("need at least one conformation")
    coords = np.stack([_posed_coords(ligand, c) for c in conformations])
    diff = coords[:, None, :, :] - coords[None, :, :, :]
    return np.sqrt((diff**2).sum(axis=3).mean(axis=2))


@dataclass(frozen=True)
class PoseCluster:
    """One family of similar poses.

    Attributes
    ----------
    representative:
        The best-scoring member.
    members:
        Indices into the input pose list.
    """

    representative: Conformation
    members: tuple[int, ...]

    @property
    def size(self) -> int:
        """Cluster population."""
        return len(self.members)


def cluster_poses(
    ligand: Ligand,
    conformations: list[Conformation],
    rmsd_cutoff: float = 2.0,
) -> list[PoseCluster]:
    """Greedy best-first RMSD clustering (the AutoDock convention).

    Poses are visited best-score-first; each either joins the first
    existing cluster whose representative lies within ``rmsd_cutoff`` or
    founds a new one. Returns clusters sorted by representative score.
    """
    if rmsd_cutoff <= 0:
        raise ReproError(f"rmsd_cutoff must be positive, got {rmsd_cutoff}")
    if not conformations:
        raise ReproError("need at least one conformation")
    order = sorted(range(len(conformations)), key=lambda i: conformations[i].score)
    reps: list[int] = []
    assignment: dict[int, list[int]] = {}
    for i in order:
        placed = False
        for rep in reps:
            if pose_rmsd(ligand, conformations[i], conformations[rep]) <= rmsd_cutoff:
                assignment[rep].append(i)
                placed = True
                break
        if not placed:
            reps.append(i)
            assignment[i] = [i]
    return [
        PoseCluster(
            representative=conformations[rep], members=tuple(assignment[rep])
        )
        for rep in reps
    ]


def convergence_statistics(best_history: list[float]) -> dict[str, float]:
    """Summarise a metaheuristic's best-score trajectory.

    Returns
    -------
    dict
        ``initial``/``final`` scores, ``improvement`` (positive = better),
        ``iterations_to_90pct`` (first iteration reaching 90 % of the total
        improvement), and ``stagnant_tail`` (trailing iterations with no
        improvement).
    """
    if not best_history:
        raise ReproError("empty history")
    h = np.asarray(best_history, dtype=float)
    initial = float(h[0])
    final = float(h[-1])
    improvement = initial - final
    if improvement > 0:
        target = initial - 0.9 * improvement
        to_90 = int(np.argmax(h <= target))
    else:
        to_90 = 0
    stagnant = 0
    for value in h[::-1]:
        if value == final:
            stagnant += 1
        else:
            break
    return {
        "initial": initial,
        "final": final,
        "improvement": improvement,
        "iterations_to_90pct": float(to_90),
        "stagnant_tail": float(stagnant - 1 if stagnant > 0 else 0),
    }
