"""Single-complex docking: one ligand over the whole receptor surface.

The BINDSURF-style flow of §3.1: find spots → place conformations at every
spot → run a metaheuristic over all spots simultaneously → report the best
pose per spot and overall.
"""

from __future__ import annotations

import numpy as np

from repro.engine.executor import MultiGpuExecutor
from repro.errors import ReproError
from repro.hardware.node import NodeSpec
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.evaluation import SerialEvaluator
from repro.metaheuristics.presets import make_preset
from repro.metaheuristics.rng import SpotRngPool
from repro.metaheuristics.template import MetaheuristicSpec, run_metaheuristic
from repro.molecules.spots import Spot, find_spots
from repro.molecules.structures import Ligand, Receptor
from repro.scoring.base import ScoringFunction
from repro.scoring.cutoff import CutoffLennardJonesScoring
from repro.vs.results import DockingResult

__all__ = ["dock"]


def _resolve_spec(metaheuristic: str | MetaheuristicSpec, workload_scale: float) -> MetaheuristicSpec:
    if isinstance(metaheuristic, MetaheuristicSpec):
        return metaheuristic
    return make_preset(metaheuristic, workload_scale)


def dock(
    receptor: Receptor,
    ligand: Ligand,
    n_spots: int = 16,
    spots: list[Spot] | None = None,
    metaheuristic: str | MetaheuristicSpec = "M2",
    scoring: ScoringFunction | None = None,
    seed: int = 0,
    workload_scale: float = 1.0,
    node: NodeSpec | None = None,
    mode: str = "gpu-heterogeneous",
) -> DockingResult:
    """Dock ``ligand`` against every surface spot of ``receptor``.

    Parameters
    ----------
    receptor, ligand:
        The complex. Ligand coordinates are re-centred internally; any input
        frame is fine.
    n_spots:
        Surface spots to search (ignored when ``spots`` is given).
    spots:
        Pre-computed spots (e.g. from a previous run, or hand-placed around
        a known binding site).
    metaheuristic:
        Preset name (``"M1"``–``"M4"``) or a custom
        :class:`~repro.metaheuristics.template.MetaheuristicSpec`.
    scoring:
        Scoring function factory; defaults to the float32 cutoff LJ (the
        GPU-precision fast path).
    seed:
        Base seed for the per-spot search streams.
    workload_scale:
        Preset workload scaling (only applies to preset names).
    node:
        Optional machine model; when given, the run is also timed on it
        under ``mode`` and the result carries ``simulated_seconds``.
    mode:
        Execution mode for the timing replay.

    Returns
    -------
    DockingResult
        Best pose per spot and overall, with workload statistics.
    """
    if spots is None:
        spots = find_spots(receptor, n_spots)
    if not spots:
        raise ReproError("docking needs at least one spot")
    scoring = scoring if scoring is not None else CutoffLennardJonesScoring(dtype=np.float32)
    scorer = scoring.bind(receptor, ligand)
    spec = _resolve_spec(metaheuristic, workload_scale)

    evaluator = SerialEvaluator(scorer)
    ctx = SearchContext(
        spots=spots,
        evaluator=evaluator,
        rng=SpotRngPool(seed, [s.index for s in spots]),
    )
    result = run_metaheuristic(spec, ctx)

    simulated = float("nan")
    if node is not None:
        executor = MultiGpuExecutor(node, seed=seed)
        timing, _ = executor.replay(evaluator.stats.launches, mode)
        simulated = timing.total_s

    return DockingResult(
        receptor=receptor,
        ligand=ligand,
        best=result.best,
        per_spot=result.best_per_spot,
        evaluations=evaluator.stats.n_conformations,
        metaheuristic=spec.name,
        simulated_seconds=simulated,
    )
