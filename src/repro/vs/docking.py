"""Single-complex docking: one ligand over the whole receptor surface.

The BINDSURF-style flow of §3.1: find spots → place conformations at every
spot → run a metaheuristic over all spots simultaneously → report the best
pose per spot and overall.
"""

from __future__ import annotations

import numpy as np

from repro import observability as obs
from repro.engine.executor import MultiGpuExecutor
from repro.engine.host_runtime import ParallelSpotEvaluator
from repro.errors import ReproError
from repro.hardware.node import NodeSpec
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.evaluation import SerialEvaluator
from repro.metaheuristics.presets import make_preset
from repro.metaheuristics.rng import SpotRngPool
from repro.metaheuristics.template import MetaheuristicSpec, run_metaheuristic
from repro.molecules.spots import Spot, find_spots
from repro.molecules.structures import Ligand, Receptor
from repro.scoring.base import ScoringFunction
from repro.scoring.cutoff import CutoffLennardJonesScoring
from repro.scoring.pruned import prune_bound
from repro.vs.results import DockingResult

__all__ = ["dock"]


def _resolve_spec(metaheuristic: str | MetaheuristicSpec, workload_scale: float) -> MetaheuristicSpec:
    if isinstance(metaheuristic, MetaheuristicSpec):
        return metaheuristic
    return make_preset(metaheuristic, workload_scale)


def _resolve_autotune(autotune, calibration_file, prune_spots):
    """Normalise the (autotune, calibration_file) inputs to a controller."""
    from repro.scoring.autotune import AutotuneController

    if autotune is None or autotune is False:
        return None
    if isinstance(autotune, AutotuneController):
        return autotune
    if autotune is True:
        if calibration_file is None:
            raise ReproError(
                "autotune=True needs a calibration_file "
                "(write one with `repro-vs calibrate`)"
            )
        return AutotuneController.from_file(calibration_file, prune_spots=prune_spots)
    raise ReproError(
        f"autotune must be a bool or AutotuneController, got {type(autotune).__name__}"
    )


def dock(
    receptor: Receptor,
    ligand: Ligand,
    n_spots: int = 16,
    spots: list[Spot] | None = None,
    metaheuristic: str | MetaheuristicSpec = "M2",
    scoring: ScoringFunction | None = None,
    seed: int = 0,
    workload_scale: float = 1.0,
    node: NodeSpec | None = None,
    mode: str = "gpu-heterogeneous",
    host_workers: int = 0,
    parallel_mode: str = "static",
    prune_spots: bool = False,
    evaluator_factory=None,
    autotune=None,
    calibration_file=None,
) -> DockingResult:
    """Dock ``ligand`` against every surface spot of ``receptor``.

    Parameters
    ----------
    receptor, ligand:
        The complex. Ligand coordinates are re-centred internally; any input
        frame is fine.
    n_spots:
        Surface spots to search (ignored when ``spots`` is given).
    spots:
        Pre-computed spots (e.g. from a previous run, or hand-placed around
        a known binding site).
    metaheuristic:
        Preset name (``"M1"``–``"M4"``) or a custom
        :class:`~repro.metaheuristics.template.MetaheuristicSpec`.
    scoring:
        Scoring function factory; defaults to the float32 cutoff LJ (the
        GPU-precision fast path).
    seed:
        Base seed for the per-spot search streams.
    workload_scale:
        Preset workload scaling (only applies to preset names).
    node:
        Optional machine model; when given, the run is also timed on it
        under ``mode`` and the result carries ``simulated_seconds``.
    mode:
        Execution mode for the timing replay.
    host_workers:
        When > 0, score on this many real worker processes
        (:class:`repro.engine.host_runtime.ParallelSpotEvaluator`). Results
        are bitwise identical to the serial path for the same ``seed``.
    parallel_mode:
        ``"static"`` (warm-up-weighted shares) or ``"dynamic"``
        (work-stealing spot queue); only used with ``host_workers > 0``.
    prune_spots:
        Wrap the scorer with per-spot receptor pruning
        (:mod:`repro.scoring.pruned`): exact for the default cutoff scoring,
        bounded-error for dense LJ.
    evaluator_factory:
        Externally-owned runtime seam: a callable ``(receptor, ligand,
        spots) -> Evaluator`` (e.g.
        :meth:`repro.engine.host_runtime.PersistentHostRuntime.evaluator_factory`).
        When given it takes precedence over ``scoring``/``host_workers``/
        ``parallel_mode``/``prune_spots``/``autotune`` — binding and pooling
        belong to the owner — and the evaluator is *not* closed here; its
        lifecycle stays with the caller (a campaign keeps one pool across
        ligands).
    autotune:
        Input-aware kernel selection (:mod:`repro.scoring.autotune`).
        ``True`` loads ``calibration_file`` into a fresh controller; an
        :class:`~repro.scoring.autotune.AutotuneController` instance is
        used as-is (a campaign shares one across ligands). The selected
        ``(variant, chunk_size)`` replaces the kernel shape only — physics
        parameters and the numerics family come from ``scoring``.
    calibration_file:
        Path to a ``repro-vs calibrate`` table; required when
        ``autotune=True``.

    Returns
    -------
    DockingResult
        Best pose per spot and overall, with workload statistics.
    """
    if host_workers < 0:
        raise ReproError(f"host_workers must be >= 0, got {host_workers}")
    if spots is None:
        spots = find_spots(receptor, n_spots)
    if not spots:
        raise ReproError("docking needs at least one spot")
    spec = _resolve_spec(metaheuristic, workload_scale)

    if evaluator_factory is not None:
        evaluator = evaluator_factory(receptor, ligand, spots)
        owns_evaluator = False
    else:
        scoring = (
            scoring if scoring is not None else CutoffLennardJonesScoring(dtype=np.float32)
        )
        controller = _resolve_autotune(autotune, calibration_file, prune_spots)
        if controller is not None:
            scoring = controller.resolve(
                scoring, receptor.n_atoms, ligand.n_atoms, host_workers
            )
        scorer = scoring.bind(receptor, ligand)
        if prune_spots:
            scorer = prune_bound(scorer, spots)
        if host_workers > 0:
            evaluator = ParallelSpotEvaluator(
                scorer, n_workers=host_workers, mode=parallel_mode
            )
            owns_evaluator = True
        else:
            evaluator = SerialEvaluator(scorer)
            owns_evaluator = False
    ctx = SearchContext(
        spots=spots,
        evaluator=evaluator,
        rng=SpotRngPool(seed, [s.index for s in spots]),
    )
    try:
        with obs.span(
            "vs.dock", metaheuristic=spec.name, host_workers=host_workers
        ):
            result = run_metaheuristic(spec, ctx)
        # Read the launch trace before any close: an externally-owned
        # evaluator may be rebound to the next ligand the moment this
        # returns, and an owned one is closed in the finally below.
        evaluations = evaluator.stats.n_conformations
        launches = evaluator.stats.launches
        obs.counter("vs.dock.evaluations").inc(evaluations)
    finally:
        if owns_evaluator:
            evaluator.close()
    obs.counter("vs.docks").inc()

    simulated = float("nan")
    if node is not None:
        executor = MultiGpuExecutor(node, seed=seed)
        timing, _ = executor.replay(launches, mode)
        simulated = timing.total_s

    return DockingResult(
        receptor=receptor,
        ligand=ligand,
        best=result.best,
        per_spot=result.best_per_spot,
        evaluations=evaluations,
        metaheuristic=spec.name,
        simulated_seconds=simulated,
    )
