"""Flexible-ligand docking (future-work extension).

Extends the pose space from rigid ``(translation, orientation)`` to
``(translation, orientation, torsions)``. The optimiser is a per-spot
stochastic hill climber over the extended vector — the same local-search
move structure the paper's Improve stage uses, with torsion moves added —
scoring conformer batches through
:meth:`repro.scoring.base.BoundScorer.score_coords`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import FLOAT_DTYPE, default_rng
from repro.errors import ReproError
from repro.molecules.flexibility import FlexibleLigand
from repro.molecules.spots import Spot, find_spots
from repro.molecules.structures import Ligand, Receptor
from repro.molecules.transforms import (
    apply_pose,
    quaternion_multiply,
    random_quaternion,
    small_random_rotation,
)
from repro.scoring.base import BoundScorer, ScoringFunction
from repro.scoring.cutoff import CutoffLennardJonesScoring

__all__ = ["FlexiblePose", "FlexibleDockingResult", "dock_flexible"]


@dataclass(frozen=True)
class FlexiblePose:
    """One flexible conformation: rigid placement plus torsion angles."""

    spot_index: int
    translation: np.ndarray
    quaternion: np.ndarray
    torsions: np.ndarray
    score: float


@dataclass
class FlexibleDockingResult:
    """Outcome of a flexible docking run."""

    best: FlexiblePose
    per_spot: list[FlexiblePose]
    evaluations: int
    n_torsions: int

    @property
    def best_score(self) -> float:
        """Best score found."""
        return self.best.score


def _score_flexible(
    scorer: BoundScorer,
    flex: FlexibleLigand,
    translations: np.ndarray,
    quaternions: np.ndarray,
    torsions: np.ndarray,
) -> np.ndarray:
    conformers = flex.conformers(torsions) if flex.n_torsions else np.broadcast_to(
        flex.base_coords, (translations.shape[0],) + flex.base_coords.shape
    )
    posed = np.stack(
        [
            apply_pose(conformers[p], translations[p], quaternions[p])
            for p in range(translations.shape[0])
        ]
    )
    return scorer.score_coords(posed)


def dock_flexible(
    receptor: Receptor,
    ligand: Ligand,
    n_spots: int = 8,
    spots: list[Spot] | None = None,
    scoring: ScoringFunction | None = None,
    max_torsions: int | None = 6,
    walkers_per_spot: int = 8,
    steps: int = 40,
    seed: int = 0,
    translation_sigma: float = 0.4,
    rotation_angle: float = 0.3,
    torsion_sigma: float = 0.35,
) -> FlexibleDockingResult:
    """Dock a flexible ligand over the receptor surface.

    Parameters
    ----------
    max_torsions:
        Cap on torsional degrees of freedom (None = all rotatable bonds).
    walkers_per_spot:
        Parallel hill-climb walkers per spot.
    steps:
        Local-search steps per walker.

    Returns
    -------
    FlexibleDockingResult
        Best extended pose per spot and overall.
    """
    if walkers_per_spot < 1 or steps < 1:
        raise ReproError("walkers_per_spot and steps must be >= 1")
    if spots is None:
        spots = find_spots(receptor, n_spots)
    if not spots:
        raise ReproError("flexible docking needs at least one spot")
    scoring = scoring if scoring is not None else CutoffLennardJonesScoring(
        dtype=np.float32
    )
    scorer = scoring.bind(receptor, ligand)
    flex = FlexibleLigand(ligand, max_torsions=max_torsions)
    rng = default_rng(seed)

    s = len(spots)
    w = walkers_per_spot
    k = flex.n_torsions
    centers = np.stack([sp.center for sp in spots]).astype(FLOAT_DTYPE)
    radii = np.array([sp.radius for sp in spots], dtype=FLOAT_DTYPE)

    # Flat (s*w) state arrays.
    t = np.repeat(centers, w, axis=0) + (
        (2 * rng.random((s * w, 3)) - 1) * np.repeat(radii, w)[:, None]
    )
    q = random_quaternion(rng, s * w)
    tor = (
        rng.uniform(-np.pi, np.pi, (s * w, k)).astype(FLOAT_DTYPE)
        if k
        else np.zeros((s * w, 0), dtype=FLOAT_DTYPE)
    )
    scores = _score_flexible(scorer, flex, t, q, tor)
    evaluations = s * w

    lo = np.repeat(centers - radii[:, None], w, axis=0)
    hi = np.repeat(centers + radii[:, None], w, axis=0)

    for step in range(steps):
        scale = 1.0 - 0.8 * step / max(1, steps - 1)
        cand_t = np.clip(
            t + rng.normal(0, translation_sigma * scale, (s * w, 3)), lo, hi
        )
        cand_q = quaternion_multiply(
            small_random_rotation(rng, rotation_angle * scale, s * w), q
        )
        if k:
            cand_tor = tor + rng.normal(0, torsion_sigma * scale, (s * w, k))
        else:
            cand_tor = tor
        cand_scores = _score_flexible(scorer, flex, cand_t, cand_q, cand_tor)
        evaluations += s * w
        better = cand_scores < scores
        t = np.where(better[:, None], cand_t, t)
        q = np.where(better[:, None], cand_q, q)
        if k:
            tor = np.where(better[:, None], cand_tor, tor)
        scores = np.where(better, cand_scores, scores)

    per_spot: list[FlexiblePose] = []
    grid = scores.reshape(s, w)
    for si in range(s):
        wi = int(np.argmin(grid[si]))
        flat = si * w + wi
        per_spot.append(
            FlexiblePose(
                spot_index=si,
                translation=t[flat].copy(),
                quaternion=q[flat].copy(),
                torsions=tor[flat].copy(),
                score=float(scores[flat]),
            )
        )
    best = min(per_spot, key=lambda p: p.score)
    return FlexibleDockingResult(
        best=best, per_spot=per_spot, evaluations=evaluations, n_torsions=k
    )
