"""High-level pipeline facade.

One object that wires the whole system together — structures in, ranked
poses and simulated timings out — so downstream users don't have to touch
the subpackages individually. This is the "public API implementing the
paper's primary contribution" entry point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.executor import EXECUTION_MODES, MultiGpuExecutor
from repro.engine.reporting import ExecutionReport
from repro.errors import ReproError
from repro.hardware.node import NodeSpec, hertz
from repro.metaheuristics.presets import make_preset
from repro.metaheuristics.template import MetaheuristicSpec
from repro.molecules.spots import Spot, find_spots
from repro.molecules.structures import Ligand, Receptor
from repro.scoring.base import ScoringFunction
from repro.scoring.cutoff import CutoffLennardJonesScoring
from repro.vs.docking import dock
from repro.vs.results import DockingResult, ScreeningReport
from repro.vs.screening import screen

__all__ = ["VirtualScreeningPipeline", "PipelineConfig"]


@dataclass(frozen=True)
class PipelineConfig:
    """Pipeline-wide settings.

    Attributes
    ----------
    n_spots:
        Surface spots searched per receptor.
    metaheuristic:
        Preset name or custom spec.
    workload_scale:
        Preset workload scaling (1.0 = paper-scale per-spot effort).
    mode:
        Execution mode used for simulated timing.
    seed:
        Base seed for all stochastic stages.
    host_workers:
        When > 0, score on real worker processes (bitwise identical to the
        serial path).
    parallel_mode:
        ``"static"`` or ``"dynamic"`` host scheduling (with
        ``host_workers > 0``).
    persistent_pool:
        Keep one pool/receptor-staging/warm-up across a whole
        :meth:`VirtualScreeningPipeline.screen` library (default); False
        builds a fresh evaluator per ligand.
    autotune:
        Input-aware kernel selection (:mod:`repro.scoring.autotune`):
        pick ``(variant, chunk_size)`` per complex-size cell from a
        calibration table. Requires ``calibration_file``.
    calibration_file:
        Path to a ``repro-vs calibrate`` table; required when
        ``autotune`` is on.
    nodes:
        When >= 2, :meth:`VirtualScreeningPipeline.screen` distributes the
        library over a local fleet of worker-node processes
        (:mod:`repro.cluster`); rankings stay bitwise identical to
        ``nodes=0``. Single-ligand :meth:`~VirtualScreeningPipeline.dock`
        always runs in-process.
    pipeline_depth:
        Ligands co-scheduled through the persistent pool during
        :meth:`VirtualScreeningPipeline.screen` (default 2): one ligand's
        barrier tails and host bookkeeping overlap another's scoring.
        Depth 1 restores the strictly serial ligand loop. Purely an
        execution knob — rankings are bitwise identical at every depth.
    """

    n_spots: int = 16
    metaheuristic: str = "M2"
    workload_scale: float = 1.0
    mode: str = "gpu-heterogeneous"
    seed: int = 0
    host_workers: int = 0
    parallel_mode: str = "static"
    persistent_pool: bool = True
    autotune: bool = False
    calibration_file: str | None = None
    nodes: int = 0
    pipeline_depth: int = 2

    def __post_init__(self) -> None:
        if self.n_spots < 1:
            raise ReproError(f"n_spots must be >= 1, got {self.n_spots}")
        if self.mode not in EXECUTION_MODES:
            raise ReproError(
                f"unknown mode {self.mode!r}; choose from {EXECUTION_MODES}"
            )
        if self.host_workers < 0:
            raise ReproError(
                f"host_workers must be >= 0, got {self.host_workers}"
            )
        if self.parallel_mode not in ("static", "dynamic"):
            raise ReproError(
                "parallel_mode must be 'static' or 'dynamic', "
                f"got {self.parallel_mode!r}"
            )
        if self.autotune and self.calibration_file is None:
            raise ReproError(
                "autotune=True needs a calibration_file "
                "(write one with `repro-vs calibrate`)"
            )
        if self.nodes < 0:
            raise ReproError(f"nodes must be >= 0, got {self.nodes}")
        if self.pipeline_depth < 1:
            raise ReproError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth}"
            )


class VirtualScreeningPipeline:
    """End-to-end metaheuristic virtual screening on a modelled node.

    Example
    -------
    >>> from repro.molecules import generate_receptor, generate_ligand
    >>> from repro.vs import VirtualScreeningPipeline
    >>> pipe = VirtualScreeningPipeline()          # Hertz node, M2, 16 spots
    >>> rec = generate_receptor(500, seed=1)
    >>> lig = generate_ligand(24, seed=2)
    >>> result = pipe.dock(rec, lig)
    >>> result.best_score < 0                      # found a binding pose
    True
    """

    def __init__(
        self,
        node: NodeSpec | None = None,
        config: PipelineConfig | None = None,
        scoring: ScoringFunction | None = None,
    ) -> None:
        self.node = node if node is not None else hertz()
        self.config = config if config is not None else PipelineConfig()
        self.scoring = (
            scoring
            if scoring is not None
            else CutoffLennardJonesScoring(dtype=np.float32)
        )

    # ------------------------------------------------------------------
    def spec(self) -> MetaheuristicSpec:
        """The resolved metaheuristic specification."""
        if isinstance(self.config.metaheuristic, MetaheuristicSpec):
            return self.config.metaheuristic
        return make_preset(self.config.metaheuristic, self.config.workload_scale)

    def find_spots(self, receptor: Receptor) -> list[Spot]:
        """Spot extraction with the pipeline's settings."""
        return find_spots(receptor, self.config.n_spots)

    def dock(self, receptor: Receptor, ligand: Ligand) -> DockingResult:
        """Dock one ligand; result carries simulated node timing."""
        return dock(
            receptor,
            ligand,
            n_spots=self.config.n_spots,
            metaheuristic=self.config.metaheuristic,
            scoring=self.scoring,
            seed=self.config.seed,
            workload_scale=self.config.workload_scale,
            node=self.node,
            mode=self.config.mode,
            host_workers=self.config.host_workers,
            parallel_mode=self.config.parallel_mode,
            autotune=self.config.autotune,
            calibration_file=self.config.calibration_file,
        )

    def screen(self, receptor: Receptor, ligands: list[Ligand]) -> ScreeningReport:
        """Screen a library; report carries accumulated simulated time."""
        return screen(
            receptor,
            ligands,
            n_spots=self.config.n_spots,
            metaheuristic=self.config.metaheuristic,
            scoring=self.scoring,
            seed=self.config.seed,
            workload_scale=self.config.workload_scale,
            node=self.node,
            mode=self.config.mode,
            host_workers=self.config.host_workers,
            parallel_mode=self.config.parallel_mode,
            persistent_pool=self.config.persistent_pool,
            autotune=self.config.autotune,
            calibration_file=self.config.calibration_file,
            nodes=self.config.nodes,
            pipeline_depth=self.config.pipeline_depth,
        )

    def compare_modes(
        self, receptor: Receptor, ligand: Ligand
    ) -> dict[str, ExecutionReport]:
        """Run one docking workload and time it under every execution mode.

        The search runs once (results are mode-invariant); each mode replays
        the same trace — exactly the paper's experimental design.
        """
        from repro.metaheuristics.context import SearchContext
        from repro.metaheuristics.evaluation import SerialEvaluator
        from repro.metaheuristics.rng import SpotRngPool
        from repro.metaheuristics.template import run_metaheuristic

        spots = self.find_spots(receptor)
        scorer = self.scoring.bind(receptor, ligand)
        evaluator = SerialEvaluator(scorer)
        ctx = SearchContext(
            spots=spots,
            evaluator=evaluator,
            rng=SpotRngPool(self.config.seed, [s.index for s in spots]),
        )
        result = run_metaheuristic(self.spec(), ctx)
        executor = MultiGpuExecutor(self.node, seed=self.config.seed)
        reports: dict[str, ExecutionReport] = {}
        for mode in EXECUTION_MODES:
            timing, scheduler_name = executor.replay(evaluator.stats.launches, mode)
            reports[mode] = ExecutionReport(
                mode=mode,
                node_name=self.node.name,
                scheduler_name=scheduler_name,
                timing=timing,
                result=result,
            )
        return reports
