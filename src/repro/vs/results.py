"""Result containers for docking and screening runs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.metaheuristics.individual import Conformation
from repro.molecules.structures import Ligand, Molecule, Receptor
from repro.molecules.transforms import apply_pose

__all__ = ["DockingResult", "ScreeningEntry", "ScreeningReport"]


@dataclass
class DockingResult:
    """Outcome of docking one ligand against one receptor.

    Attributes
    ----------
    receptor, ligand:
        The complex partners.
    best:
        Best conformation over the whole surface.
    per_spot:
        Best conformation at every spot (BINDSURF's whole-surface scoring
        distribution: "new spots found after examination of the
        distribution of scoring function values").
    evaluations:
        Total scoring evaluations spent.
    simulated_seconds:
        Modelled wall time, when a node was attached (else ``nan``).
    metaheuristic:
        Preset/spec name used.
    """

    receptor: Receptor
    ligand: Ligand
    best: Conformation
    per_spot: list[Conformation]
    evaluations: int
    metaheuristic: str
    simulated_seconds: float = float("nan")

    @property
    def best_score(self) -> float:
        """Best (lowest) binding score found."""
        return self.best.score

    def spot_scores(self) -> np.ndarray:
        """``(n_spots,)`` best score per spot — the surface score map."""
        return np.array([c.score for c in self.per_spot])

    def hot_spots(self, k: int = 5) -> list[Conformation]:
        """The ``k`` best spots, ascending score."""
        if k < 1:
            raise ReproError(f"k must be >= 1, got {k}")
        ranked = sorted(self.per_spot, key=lambda c: c.score)
        return ranked[: min(k, len(ranked))]

    def docked_ligand(self, conformation: Conformation | None = None) -> Ligand:
        """The ligand placed at a conformation (default: the best one)."""
        conf = conformation if conformation is not None else self.best
        centred = self.ligand.coords - self.ligand.coords.mean(axis=0)
        coords = apply_pose(centred, conf.translation, conf.quaternion)
        return Ligand(
            coords=coords,
            elements=[str(e) for e in self.ligand.elements],
            charges=self.ligand.charges,
            names=list(self.ligand.names),
            residues=list(self.ligand.residues),
            title=f"{self.ligand.title} docked (score {conf.score:.2f})",
        )

    def complex_molecule(self, conformation: Conformation | None = None) -> Molecule:
        """Receptor + docked ligand merged into one structure (Figure 1)."""
        docked = self.docked_ligand(conformation)
        return Molecule(
            coords=np.concatenate([self.receptor.coords, docked.coords]),
            elements=[str(e) for e in self.receptor.elements]
            + [str(e) for e in docked.elements],
            charges=np.concatenate([self.receptor.charges, docked.charges]),
            names=list(self.receptor.names) + list(docked.names),
            residues=list(self.receptor.residues) + list(docked.residues),
            residue_indices=np.concatenate(
                [
                    self.receptor.residue_indices,
                    np.full(docked.n_atoms, int(self.receptor.residue_indices.max()) + 1),
                ]
            ),
            title=f"{self.receptor.title} / {self.ligand.title} complex",
        )


def _encode_float(value: float) -> float | str:
    """JSON-safe float: non-finite values become strings (strict JSON has no
    NaN/Infinity literals)."""
    return float(value) if np.isfinite(value) else str(value)


def _decode_float(value: float | str | None) -> float:
    return float("nan") if value is None else float(value)


@dataclass(frozen=True)
class ScreeningEntry:
    """One ligand's outcome within a library screen.

    ``simulated_seconds`` is this ligand's modelled wall time (``nan`` when
    no node model was attached) — kept per entry so campaign accounting
    never loses per-ligand timing, even when some entries are non-finite.
    """

    ligand_title: str
    best_score: float
    best_spot: int
    evaluations: int
    simulated_seconds: float = float("nan")


@dataclass
class ScreeningReport:
    """Ranked outcome of screening a ligand library.

    Entries are kept in submission order; :meth:`ranked` sorts by affinity.
    """

    receptor_title: str
    entries: list[ScreeningEntry] = field(default_factory=list)
    simulated_seconds: float = 0.0

    def add(self, entry: ScreeningEntry) -> None:
        """Append one ligand result."""
        self.entries.append(entry)

    def ranked(self) -> list[ScreeningEntry]:
        """Entries sorted best-first (ascending score)."""
        return sorted(self.entries, key=lambda e: e.best_score)

    def top(self, k: int = 10) -> list[ScreeningEntry]:
        """The ``k`` best ligands."""
        if k < 1:
            raise ReproError(f"k must be >= 1, got {k}")
        return self.ranked()[: min(k, len(self.entries))]

    def to_text(self, limit: int | None = None) -> str:
        """Human-readable ranking table.

        ``limit`` caps the rows shown: selection uses a bounded heap
        (``heapq.nsmallest``) rather than sorting the full entry list, so a
        million-entry campaign can print a summary without materialising the
        whole ranking into one string.
        """
        if limit is not None and limit < 1:
            raise ReproError(f"limit must be >= 1, got {limit}")
        if limit is None or limit >= len(self.entries):
            shown = self.ranked()
        else:
            import heapq

            shown = heapq.nsmallest(limit, self.entries, key=lambda e: e.best_score)
        lines = [
            f"Screening report — receptor: {self.receptor_title}",
            f"{'rank':>4s}  {'score':>12s}  {'spot':>5s}  ligand",
        ]
        for rank, e in enumerate(shown, start=1):
            lines.append(
                f"{rank:4d}  {e.best_score:12.3f}  {e.best_spot:5d}  {e.ligand_title}"
            )
        hidden = len(self.entries) - len(shown)
        if hidden > 0:
            lines.append(f"... ({hidden} more ligands not shown)")
        if np.isfinite(self.simulated_seconds) and self.simulated_seconds > 0:
            lines.append(f"simulated wall time: {self.simulated_seconds:.2f} s")
        return "\n".join(lines)

    def to_json(self) -> str:
        """Serialise the report as strict JSON (non-finite floats become
        strings, e.g. ``"nan"``); inverse of :meth:`from_json`."""
        import json

        return json.dumps(
            {
                "receptor_title": self.receptor_title,
                "simulated_seconds": _encode_float(self.simulated_seconds),
                "entries": [
                    {
                        "ligand_title": e.ligand_title,
                        "best_score": _encode_float(e.best_score),
                        "best_spot": e.best_spot,
                        "evaluations": e.evaluations,
                        "simulated_seconds": _encode_float(e.simulated_seconds),
                    }
                    for e in self.entries
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ScreeningReport":
        """Rebuild a report from :meth:`to_json` output."""
        import json

        try:
            payload = json.loads(text)
            entries = [
                ScreeningEntry(
                    ligand_title=str(item["ligand_title"]),
                    best_score=_decode_float(item["best_score"]),
                    best_spot=int(item["best_spot"]),
                    evaluations=int(item["evaluations"]),
                    simulated_seconds=_decode_float(item.get("simulated_seconds")),
                )
                for item in payload["entries"]
            ]
            report = cls(
                receptor_title=str(payload["receptor_title"]),
                entries=entries,
                simulated_seconds=_decode_float(payload.get("simulated_seconds")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"not a screening-report document: {exc}") from None
        return report
