"""Library screening: rank many ligands against one receptor.

"Given a receptor protein, large libraries of small molecules (ligands) are
explored to search for the structures which best bind to the receptor" (§1).
Spots are computed once per receptor and shared across ligands; each ligand
gets an independent docking run, and the report ranks them by best score.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ReproError
from repro.hardware.node import NodeSpec
from repro.metaheuristics.template import MetaheuristicSpec
from repro.molecules.structures import Ligand, Receptor
from repro.molecules.synthetic import generate_ligand
from repro.scoring.base import ScoringFunction
from repro.vs.results import ScreeningReport

__all__ = ["screen", "synthetic_library"]


def synthetic_library(
    n_ligands: int,
    atoms_range: tuple[int, int] = (20, 50),
    seed: int = 0,
) -> list[Ligand]:
    """Generate a drug-like ligand library for screening demos and tests."""
    if n_ligands < 1:
        raise ReproError(f"n_ligands must be >= 1, got {n_ligands}")
    lo, hi = atoms_range
    if not 1 <= lo <= hi:
        raise ReproError(f"invalid atoms_range {atoms_range}")
    rng = np.random.default_rng(seed)
    sizes = rng.integers(lo, hi + 1, size=n_ligands)
    return [
        generate_ligand(int(sizes[i]), seed=seed + 1000 + i, title=f"LIG{i:04d}")
        for i in range(n_ligands)
    ]


def screen(
    receptor: Receptor,
    ligands: Iterable[Ligand],
    n_spots: int = 16,
    metaheuristic: str | MetaheuristicSpec = "M2",
    scoring: ScoringFunction | None = None,
    seed: int = 0,
    workload_scale: float = 1.0,
    node: NodeSpec | None = None,
    mode: str = "gpu-heterogeneous",
    host_workers: int = 0,
    parallel_mode: str = "static",
    prune_spots: bool = False,
    persistent_pool: bool = True,
    autotune=False,
    calibration_file: str | None = None,
    nodes: int = 0,
    cluster=None,
    pipeline_depth: int = 2,
) -> ScreeningReport:
    """Screen a ligand library against the receptor surface.

    Each ligand is docked independently (ligand ``i`` uses search seed
    ``seed + i``); the report ranks ligands by their best score. When a
    ``node`` is supplied, per-ligand simulated times land on each entry and
    their finite sum in ``report.simulated_seconds``. ``host_workers``/
    ``parallel_mode``/``prune_spots`` pass through to
    :func:`repro.vs.docking.dock` — real process-parallel scoring with
    bitwise-identical rankings. With ``host_workers > 0`` the worker pool,
    staged receptor and Eq. 1 warm-up persist across the whole library
    (``persistent_pool=True``, the default: each ligand is a slot rebind,
    not a pool spawn); ``persistent_pool=False`` restores the
    fresh-evaluator-per-ligand path — scores are bitwise identical either
    way.

    ``autotune`` (with ``calibration_file``, or a ready-made
    :class:`~repro.scoring.autotune.AutotuneController`) turns on
    input-aware kernel selection: one controller is shared across the whole
    library, so every ligand that lands in the same feature cell reuses the
    pinned ``(variant, chunk_size)``. For a fixed calibration table the
    scores stay bitwise identical to the serial reference path.

    ``pipeline_depth`` (default 2) co-schedules that many ligands through
    the persistent pool at once: one ligand's generation-barrier tails and
    host-side Select/Combine/Include gaps are filled with another ligand's
    poses. Per-ligand launch sequences and seeds are untouched, so the
    ranking is bitwise identical at every depth; ``pipeline_depth=1``
    restores the strictly serial ligand loop.

    ``nodes >= 2`` distributes the screen over a local fleet of worker-node
    processes (:mod:`repro.cluster`): ligands ship inline over the lease
    protocol, every node runs its own persistent host runtime, and the
    ranking is bitwise identical to ``nodes=0``. ``cluster`` optionally
    carries a :class:`repro.cluster.ClusterConfig` with fleet tuning knobs.

    ``ligands`` may be any iterable — a generator streams through without
    ever being materialised. This is a thin wrapper over a one-shot
    in-memory campaign (:class:`repro.campaign.CampaignRunner` with a
    ``:memory:`` store), so ``screen()`` and ``repro-vs campaign`` share one
    execution path; ligands with duplicate or empty titles get their global
    ordinal suffixed so report entries and store keys never collide.
    """
    from itertools import chain

    from repro import observability as obs
    from repro.campaign.library import IterableSource
    from repro.campaign.runner import CampaignRunner

    iterator = iter(ligands)
    try:
        first = next(iterator)
    except StopIteration:
        raise ReproError("screening needs at least one ligand") from None
    runner = CampaignRunner(
        receptor,
        IterableSource(chain([first], iterator)),
        store_path=":memory:",
        n_spots=n_spots,
        metaheuristic=metaheuristic,
        scoring=scoring,
        seed=seed,
        workload_scale=workload_scale,
        node=node,
        mode=mode,
        host_workers=host_workers,
        parallel_mode=parallel_mode,
        prune_spots=prune_spots,
        persistent_pool=persistent_pool,
        autotune=autotune,
        calibration_file=calibration_file,
        max_attempts=1,
        raise_on_failure=True,
        nodes=nodes,
        cluster=cluster,
        pipeline_depth=pipeline_depth,
    )
    with obs.span("vs.screen", host_workers=host_workers, mode=parallel_mode):
        obs.counter("vs.screen.runs").inc()
        with runner.run() as store:
            report = store.to_report()
    obs.counter("vs.screen.ligands").inc(len(report.entries))
    return report
