"""Terminal visualisation utilities.

No plotting dependencies exist in this environment, so the library renders
its own artifacts as text: depth projections of complexes (the Figure 1
stand-in), surface score maps, and convergence sparklines. All functions
return strings; callers print or save them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.molecules.structures import Molecule

__all__ = ["ascii_projection", "gantt", "score_map", "sparkline"]

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def ascii_projection(
    layers: list[tuple[Molecule | np.ndarray, str]],
    width: int = 64,
    height: int = 24,
    axes: tuple[int, int] = (0, 1),
) -> str:
    """Project molecule layers onto a character canvas.

    Parameters
    ----------
    layers:
        ``(molecule_or_coords, glyph)`` pairs, painted in order (later
        layers overdraw earlier ones — put the ligand last).
    axes:
        Which two coordinate axes to project onto.

    Returns
    -------
    str
        ``height`` lines of ``width`` characters.
    """
    if not layers:
        raise ReproError("need at least one layer")
    if width < 2 or height < 2:
        raise ReproError("canvas must be at least 2×2")
    ax, ay = axes
    point_sets = []
    for source, glyph in layers:
        coords = source.coords if isinstance(source, Molecule) else np.asarray(source)
        if coords.ndim != 2 or coords.shape[1] < max(ax, ay) + 1:
            raise ReproError(f"cannot project coordinates of shape {coords.shape}")
        if len(glyph) != 1:
            raise ReproError(f"glyph must be one character, got {glyph!r}")
        point_sets.append((coords[:, [ax, ay]], glyph))

    merged = np.vstack([pts for pts, _ in point_sets])
    lo = merged.min(axis=0)
    span = np.maximum(merged.max(axis=0) - lo, 1e-9)
    canvas = [[" "] * width for _ in range(height)]
    for pts, glyph in point_sets:
        cols = ((pts[:, 0] - lo[0]) / span[0] * (width - 1)).astype(int)
        rows = ((pts[:, 1] - lo[1]) / span[1] * (height - 1)).astype(int)
        for r, c in zip(rows, cols):
            canvas[height - 1 - r][c] = glyph  # y grows upward
    return "\n".join("".join(row) for row in canvas)


def score_map(scores: np.ndarray, labels: list[str] | None = None, width: int = 40) -> str:
    """Horizontal-bar rendering of per-spot scores (best = longest bar).

    Scores are docking energies (lower = better); bars are scaled to the
    best score's magnitude.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.ndim != 1 or scores.size == 0:
        raise ReproError("scores must be a non-empty 1-D array")
    if labels is not None and len(labels) != scores.size:
        raise ReproError(f"{len(labels)} labels for {scores.size} scores")
    best = scores.min()
    lines = []
    for i in np.argsort(scores):
        label = labels[i] if labels is not None else f"spot {i:3d}"
        magnitude = max(0.0, -float(scores[i]))
        reference = max(1e-9, -float(best))
        bar = "█" * int(round(width * magnitude / reference))
        lines.append(f"{label:>10s} {scores[i]:10.2f} |{bar}")
    return "\n".join(lines)


def sparkline(history: list[float] | np.ndarray) -> str:
    """One-line glyph rendering of a score trajectory (▁ best … █ worst)."""
    h = np.asarray(history, dtype=float)
    if h.size == 0:
        raise ReproError("empty history")
    if h.size == 1 or np.ptp(h) < 1e-12:
        return _SPARK_GLYPHS[0] * h.size
    normalised = (h - h.min()) / np.ptp(h)
    indices = np.minimum(
        (normalised * len(_SPARK_GLYPHS)).astype(int), len(_SPARK_GLYPHS) - 1
    )
    return "".join(_SPARK_GLYPHS[i] for i in indices)


def gantt(
    timeline: list[tuple[int, float, float, str]],
    device_names: list[str] | None = None,
    width: int = 72,
) -> str:
    """Render a device schedule as a text Gantt chart.

    Parameters
    ----------
    timeline:
        ``(device, start_s, end_s, kind)`` intervals, e.g. collected by
        ``simulate_gpu_trace(..., timeline=[])``. ``kind`` selects the
        glyph: ``population`` launches draw ``█``, ``improve`` launches
        ``▒``, anything else ``░``.
    device_names:
        Row labels; defaults to ``dev 0`` …

    Returns
    -------
    str
        One row per device plus a time axis.
    """
    if not timeline:
        raise ReproError("empty timeline")
    n_devices = max(d for d, *_ in timeline) + 1
    horizon = max(end for _, _, end, _ in timeline)
    if horizon <= 0:
        raise ReproError("timeline has zero duration")
    if device_names is not None and len(device_names) < n_devices:
        raise ReproError(
            f"{len(device_names)} names for {n_devices} devices"
        )
    glyphs = {"population": "█", "improve": "▒"}
    rows = [[" "] * width for _ in range(n_devices)]
    for device, start, end, kind in timeline:
        c0 = int(start / horizon * (width - 1))
        c1 = max(c0 + 1, int(np.ceil(end / horizon * (width - 1))))
        glyph = glyphs.get(kind, "░")
        for c in range(c0, min(c1, width)):
            rows[device][c] = glyph
    lines = []
    for d in range(n_devices):
        label = device_names[d] if device_names else f"dev {d}"
        lines.append(f"{label[:18]:>18s} |{''.join(rows[d])}|")
    axis = f"{'':>18s} 0{'s':<{width - len(f'{horizon:.2f}s') - 1}s}{horizon:.2f}s"
    lines.append(axis)
    return "\n".join(lines)
