"""End-to-end CLI coverage for ``repro-vs campaign`` and flag validation."""

import json
import sqlite3

import pytest

import repro.campaign.runner as runner_mod
from repro.campaign import CampaignRunner, SyntheticSource
from repro.cli import main
from repro.molecules.synthetic import generate_receptor

RUN_ARGS = [
    "campaign", "run",
    "--receptor-atoms", "60",
    "--ligands", "4",
    "--atoms-min", "8",
    "--atoms-max", "12",
    "--spots", "2",
    "--metaheuristic", "M1",
    "--scale", "0.05",
    "--seed", "3",
    "--shard-size", "2",
    "--node", "none",
]


def run_campaign(store_path, capsys):
    rc = main(RUN_ARGS + ["--store", str(store_path)])
    out = capsys.readouterr().out
    assert rc == 0
    return out


def test_campaign_run_status_top_export(tmp_path, capsys):
    store = tmp_path / "c.sqlite"
    out = run_campaign(store, capsys)
    assert "campaign complete: 4 done, 0 failed, 0 outstanding" in out
    assert "shard" not in out  # progress is opt-in (--progress) and on stderr

    assert main(["campaign", "status", "--store", str(store)]) == 0
    out = capsys.readouterr().out
    assert "4 done" in out and "complete" in out

    assert main(["campaign", "top", "--store", str(store), "-k", "2"]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert lines[0].split() == ["rank", "score", "spot", "ligand"]
    assert [line.split()[0] for line in lines[1:]] == ["1", "2"]

    dump = tmp_path / "dump.json"
    assert main([
        "campaign", "export", "--store", str(store), "--out", str(dump),
    ]) == 0
    payload = json.loads(dump.read_text())
    assert len(payload["results"]) == 4

    report_path = tmp_path / "report.json"
    assert main([
        "campaign", "export", "--store", str(store),
        "--out", str(report_path), "--format", "report",
    ]) == 0
    report = json.loads(report_path.read_text())
    assert len(report["entries"]) == 4

    csv_path = tmp_path / "dump.csv"
    assert main([
        "campaign", "export", "--store", str(store),
        "--out", str(csv_path), "--format", "csv",
    ]) == 0
    assert csv_path.read_text().count("\n") == 5  # header + 4 rows


def test_campaign_progress_flag_writes_refreshing_stderr_line(tmp_path, capsys):
    store = tmp_path / "c.sqlite"
    rc = main(RUN_ARGS + ["--store", str(store), "--progress"])
    assert rc == 0
    captured = capsys.readouterr()
    assert "shard" not in captured.out  # stdout stays pipe-clean
    # Carriage-return refresh, one frame per shard, with rate and ETA.
    frames = [f for f in captured.err.split("\r") if f.strip()]
    assert len(frames) == 2
    assert frames[0].startswith("shard 1/2")
    assert frames[1].startswith("shard 2/2")
    assert "lig/s" in frames[1] and "ETA" in frames[1]
    assert captured.err.endswith("\n")  # closed with a trailing newline


def test_campaign_resume_completed_is_noop(tmp_path, capsys):
    store = tmp_path / "c.sqlite"
    run_campaign(store, capsys)
    assert main(["campaign", "resume", "--store", str(store)]) == 0
    assert "campaign complete" in capsys.readouterr().out


def test_cli_resume_finishes_interrupted_campaign(tmp_path, capsys, monkeypatch):
    # Build the identical campaign the CLI `run` above would, but kill it
    # mid-flight; the CLI `resume` must reconstruct everything from the
    # store's descriptors and finish the job.
    receptor = generate_receptor(60, seed=3)
    runner = CampaignRunner(
        receptor,
        SyntheticSource(4, atoms_range=(8, 12), seed=13),
        store_path=tmp_path / "c.sqlite",
        n_spots=2,
        metaheuristic="M1",
        seed=3,
        workload_scale=0.05,
        shard_size=2,
        receptor_descriptor={"kind": "synthetic", "n_atoms": 60, "seed": 3},
    )
    real_dock = runner_mod.dock
    calls = {"n": 0}

    def dying_dock(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] >= 2:
            raise KeyboardInterrupt
        return real_dock(*args, **kwargs)

    monkeypatch.setattr(runner_mod, "dock", dying_dock)
    with pytest.raises(KeyboardInterrupt):
        runner.run()
    monkeypatch.setattr(runner_mod, "dock", real_dock)

    assert main(["campaign", "resume", "--store", str(tmp_path / "c.sqlite")]) == 0
    out = capsys.readouterr().out
    assert "campaign complete: 4 done" in out

    # And it matches a never-interrupted CLI run bitwise.
    reference = tmp_path / "ref.sqlite"
    ref_out = run_campaign(reference, capsys)
    assert [l for l in out.splitlines() if l.startswith("  ")] == [
        l for l in ref_out.splitlines() if l.startswith("  ")
    ]


def test_negative_host_workers_rejected(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(RUN_ARGS + ["--store", str(tmp_path / "c.sqlite"),
                         "--host-workers", "-2"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "must be >= 0, got -2" in err
    assert "Traceback" not in err


def test_unknown_parallel_mode_rejected(tmp_path, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(RUN_ARGS + ["--store", str(tmp_path / "c.sqlite"),
                         "--parallel-mode", "quantum"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "invalid choice: 'quantum'" in err
    assert "Traceback" not in err


def test_run_onto_existing_store_is_clean_error(tmp_path, capsys):
    store = tmp_path / "c.sqlite"
    run_campaign(store, capsys)
    assert main(RUN_ARGS + ["--store", str(store)]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "already exists" in err
    assert "Traceback" not in err


def test_resume_missing_store_is_clean_error(tmp_path, capsys):
    assert main(["campaign", "resume", "--store", str(tmp_path / "nope.sqlite")]) == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "no campaign store" in err


def test_resume_config_mismatch_is_clean_error(tmp_path, capsys):
    store = tmp_path / "c.sqlite"
    run_campaign(store, capsys)
    # Tamper with a science-affecting config key behind the store's back.
    conn = sqlite3.connect(store)
    raw = conn.execute("SELECT value FROM meta WHERE key = 'config'").fetchone()[0]
    config = json.loads(raw)
    config["seed"] = 999
    conn.execute(
        "UPDATE meta SET value = ? WHERE key = 'config'", (json.dumps(config),)
    )
    conn.commit()
    conn.close()

    assert main(["campaign", "resume", "--store", str(store)]) == 2
    err = capsys.readouterr().err
    assert "config mismatch" in err
    assert "Traceback" not in err


def test_status_of_missing_store_is_clean_error(tmp_path, capsys):
    assert main(["campaign", "status", "--store", str(tmp_path / "x.sqlite")]) == 2
    assert "no campaign store" in capsys.readouterr().err
