"""Columnar campaign store: SQLite parity, sealing, compaction, top-K.

Every behavioural test here runs the same operation sequence against both
backends and asserts identical observable state — counts, science digest,
top-K ranking, export bytes — because the columnar store's whole contract
is "drop-in behind the store interface".
"""

import json
import random

import pytest

from repro.campaign.backends import (
    create_store,
    detect_backend,
    open_store,
    store_disk_bytes,
)
from repro.campaign.colstore import COLSTORE_SCHEMA_VERSION, ColumnarStore
from repro.campaign.store import CampaignStore
from repro.errors import CampaignError

CONFIG = {
    "receptor_title": "colstore-test receptor",
    "n_spots": 4,
    "metaheuristic": "M1",
    "seed": 7,
}


@pytest.fixture()
def store(tmp_path):
    with ColumnarStore.create(
        tmp_path / "c.col", CONFIG, "hash-1", group_rows=16, compact_fanin=3
    ) as s:
        yield s


def both_stores(tmp_path, **options):
    """A fresh (sqlite, columnar) pair sharing one config."""
    sq = CampaignStore.create(tmp_path / "pair.sqlite", CONFIG, "hash-1")
    co = ColumnarStore.create(tmp_path / "pair.col", CONFIG, "hash-1", **options)
    return sq, co


def assert_parity(sq, co, k=10):
    assert sq.counts() == co.counts()
    assert sq.science_digest() == co.science_digest()
    assert sq.finished_shards() == co.finished_shards()
    assert [
        (r["ordinal"], r["title"], r["best_score"], r["best_spot"])
        for r in sq.top(k)
    ] == [
        (r["ordinal"], r["title"], r["best_score"], r["best_spot"])
        for r in co.top(k)
    ]
    assert list(sq.iter_results()) == list(co.iter_results())


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def test_create_and_reopen_roundtrip(tmp_path):
    path = tmp_path / "c.col"
    store = ColumnarStore.create(path, CONFIG, "hash-1")
    store.record_result(0, "L0", -5.0, 1, 100, 0.1, 0.2)
    store.close()

    with ColumnarStore.open(path) as reopened:
        assert reopened.config == CONFIG
        assert reopened.config_hash == "hash-1"
        assert reopened.counts()["done"] == 1
        assert not reopened.is_complete()


def test_create_refuses_existing_and_memory(tmp_path):
    path = tmp_path / "c.col"
    ColumnarStore.create(path, CONFIG, "h").close()
    with pytest.raises(CampaignError, match="already exists"):
        ColumnarStore.create(path, CONFIG, "h")
    with pytest.raises(CampaignError, match=":memory:"):
        ColumnarStore.create(":memory:", CONFIG, "h")
    with pytest.raises(CampaignError, match="invalid columnar store options"):
        ColumnarStore.create(tmp_path / "bad.col", CONFIG, "h", compact_fanin=1)


def test_open_missing_and_garbage(tmp_path):
    with pytest.raises(CampaignError, match="no campaign store"):
        ColumnarStore.open(tmp_path / "nope.col")
    garbage = tmp_path / "garbage.col"
    garbage.mkdir()
    with pytest.raises(CampaignError, match="not a campaign store"):
        ColumnarStore.open(garbage)
    (garbage / "meta.json").write_text("definitely not json")
    with pytest.raises(CampaignError, match="not a campaign store"):
        ColumnarStore.open(garbage)


def test_open_rejects_schema_mismatch(tmp_path):
    path = tmp_path / "c.col"
    ColumnarStore.create(path, CONFIG, "h").close()
    meta = json.loads((path / "meta.json").read_text())
    meta["schema_version"] = COLSTORE_SCHEMA_VERSION + 1
    (path / "meta.json").write_text(json.dumps(meta))
    with pytest.raises(CampaignError, match="schema"):
        ColumnarStore.open(path)


def test_completion_flag_survives_reopen(tmp_path):
    path = tmp_path / "c.col"
    store = ColumnarStore.create(path, CONFIG, "h")
    assert not store.is_complete()
    store.mark_complete(42)
    store.close()
    with ColumnarStore.open(path) as reopened:
        assert reopened.is_complete()
        assert reopened.n_ligands == 42


# ----------------------------------------------------------------------
# backend registry
# ----------------------------------------------------------------------
def test_backend_detection_and_open_store(tmp_path):
    sq, co = both_stores(tmp_path)
    sq.close()
    co.close()
    assert detect_backend(tmp_path / "pair.sqlite") == "sqlite"
    assert detect_backend(tmp_path / "pair.col") == "columnar"
    assert detect_backend(":memory:") == "sqlite"
    with open_store(tmp_path / "pair.sqlite") as store:
        assert isinstance(store, CampaignStore)
    with open_store(tmp_path / "pair.col") as store:
        assert isinstance(store, ColumnarStore)
    assert store_disk_bytes(tmp_path / "pair.col") > 0
    assert store_disk_bytes(tmp_path / "pair.sqlite") > 0
    with pytest.raises(CampaignError):
        detect_backend(tmp_path / "missing")


def test_create_store_dispatches_and_validates(tmp_path):
    with create_store(tmp_path / "a.sqlite", CONFIG, "h") as store:
        assert isinstance(store, CampaignStore)
    with create_store(
        tmp_path / "a.col", CONFIG, "h", backend="columnar", group_rows=8
    ) as store:
        assert isinstance(store, ColumnarStore)
    with pytest.raises(CampaignError, match="backend"):
        create_store(tmp_path / "b", CONFIG, "h", backend="parquet")
    with pytest.raises(CampaignError):
        # store options are a columnar-only concept
        create_store(tmp_path / "b.sqlite", CONFIG, "h", group_rows=8)


# ----------------------------------------------------------------------
# SQLite-parity semantics (same sequences, same observable state)
# ----------------------------------------------------------------------
def test_upsert_is_idempotent(store):
    store.record_result(3, "L3", -4.0, 0, 50, 0.1, 0.0)
    store.record_result(3, "L3", -4.5, 2, 60, 0.2, 0.0, attempts=2)
    assert store.counts()["done"] == 1
    row = store.top(1)[0]
    assert row["best_score"] == -4.5
    assert row["best_spot"] == 2


def test_failure_then_success_transitions(store):
    store.register_ligands([(0, "L0")])
    assert store.counts()["pending"] == 1
    store.mark_running(0)
    assert store.counts()["running"] == 1
    store.record_failure(0, "L0", "ScoringError: pose 3 non-finite", attempts=3)
    counts = store.counts()
    assert counts["failed"] == 1 and counts["running"] == 0
    store.record_result(0, "L0", -1.0, 0, 10, 0.1, 0.0)
    counts = store.counts()
    assert counts["done"] == 1 and counts["failed"] == 0
    assert store.top(1)[0]["title"] == "L0"


def test_register_ligands_never_downgrades(store):
    store.record_result(1, "L1", -2.0, 0, 10, 0.1, 0.0)
    store.register_ligands([(1, "L1"), (2, "L2")])
    counts = store.counts()
    assert counts["done"] == 1 and counts["pending"] == 1


def test_top_k_ordering_and_ties(store):
    store.record_result(0, "A", -3.0, 0, 10, 0.1, 0.0)
    store.record_result(1, "B", -5.0, 1, 10, 0.1, 0.0)
    store.record_result(2, "C", -5.0, 2, 10, 0.1, 0.0)  # tie → ordinal order
    store.record_failure(3, "D", "boom", 1)
    top = store.top(10)
    assert [r["title"] for r in top] == ["B", "C", "A"]
    assert [r["title"] for r in store.top(1)] == ["B"]
    with pytest.raises(CampaignError):
        store.top(0)


def test_shard_tracking(store):
    store.start_shard(0, 0, 4)
    store.start_shard(1, 4, 8)
    assert store.finished_shards() == set()
    store.finish_shard(0, 1.5)
    assert store.finished_shards() == {0}
    store.start_shard(0, 0, 4)  # resume replay re-marks it running
    assert store.finished_shards() == set()


def test_done_ordinals_range_spans_sealed_and_overlay(store):
    store.start_shard(0, 0, 4)
    for ordinal in (0, 1):
        store.record_result(ordinal, f"L{ordinal}", -1.0, 0, 1, 0.1, 0.0)
    store.record_failure(2, "L2", "x", 1)
    store.finish_shard(0, 0.5)  # seals [0, 4) into a segment
    store.record_result(5, "L5", -1.0, 0, 1, 0.1, 0.0)  # overlay only
    assert store.done_ordinals(0, 4) == {0, 1}
    assert store.done_ordinals(4, 8) == {5}


def test_random_operation_sequence_matches_sqlite(tmp_path):
    rng = random.Random(20260808)
    sq, co = both_stores(tmp_path, group_rows=8, compact_fanin=3)
    n, shard = 120, 10
    for shard_id in range(n // shard):
        start, stop = shard_id * shard, (shard_id + 1) * shard
        for st in (sq, co):
            st.start_shard(shard_id, start, stop)
            st.register_ligands([(o, f"L{o}") for o in range(start, stop)])
        for ordinal in range(start, stop):
            roll = rng.random()
            score = round(rng.uniform(-9.0, -1.0), 6)
            spot = rng.randrange(4)
            for st in (sq, co):
                st.mark_running(ordinal)
                if roll < 0.15:
                    st.record_failure(ordinal, f"L{ordinal}", "boom", 2)
                elif roll < 0.2:
                    pass  # left running: a crash mid-ligand
                else:
                    st.record_result(ordinal, f"L{ordinal}", score, spot, 64, 0.1, 0.2)
        if rng.random() < 0.8:  # some shards stay open (crash window)
            wall = rng.random()
            for st in (sq, co):
                st.finish_shard(shard_id, wall)
    assert_parity(sq, co, k=25)
    for start, stop in ((0, n), (15, 37), (100, 200)):
        assert sq.done_ordinals(start, stop) == co.done_ordinals(start, stop)
    # Parity survives a full reopen (columnar recovery path included).
    sq.close()
    co.close()
    with open_store(tmp_path / "pair.sqlite") as sq2, open_store(
        tmp_path / "pair.col"
    ) as co2:
        assert_parity(sq2, co2, k=25)


# ----------------------------------------------------------------------
# sealing, compaction, and the top-K index
# ----------------------------------------------------------------------
def fill_shards(store, n_shards, shard_size=8):
    for shard_id in range(n_shards):
        start, stop = shard_id * shard_size, (shard_id + 1) * shard_size
        store.start_shard(shard_id, start, stop)
        for ordinal in range(start, stop):
            store.record_result(
                ordinal, f"L{ordinal}", -1.0 - (ordinal % 17) * 0.25, 0, 8, 0.1, 0.0
            )
        store.finish_shard(shard_id, 0.1)


def test_sealed_shards_become_segments_and_drop_logs(store):
    fill_shards(store, 2)
    assert len(store._segments) == 2
    assert store._active_rows == {}  # overlay drained into segments
    assert not list((store.root / "active").glob("shard-*.log"))
    # Sealed rows stay queryable.
    assert store.counts()["done"] == 16
    assert len(store.top(16)) == 16


def test_compaction_preserves_rows_and_bounds_segment_count(tmp_path):
    store = ColumnarStore.create(
        tmp_path / "c.col", CONFIG, "h", group_rows=8, compact_fanin=3
    )
    fill_shards(store, 9)
    store.wait_for_compaction()  # compaction is async; settle the manifest
    before = list(store.science_rows())
    # fanin=3 keeps the manifest small no matter how many shards sealed.
    assert len(store._segments) < 3 + 2
    assert store.counts()["done"] == 72
    store.close()
    with ColumnarStore.open(tmp_path / "c.col") as reopened:
        assert list(reopened.science_rows()) == before


def test_compaction_runs_off_the_finish_shard_thread(tmp_path, monkeypatch):
    import threading

    store = ColumnarStore.create(
        tmp_path / "c.col", CONFIG, "h", group_rows=8, compact_fanin=3
    )
    threads = []
    original = ColumnarStore._maybe_compact

    def spying(self):
        threads.append(threading.current_thread().name)
        return original(self)

    monkeypatch.setattr(ColumnarStore, "_maybe_compact", spying)
    fill_shards(store, 3)
    store.wait_for_compaction()
    # finish_shard only scheduled the merge; the work ran on the background
    # compaction thread, not inline on the committing thread.
    assert any(name.startswith("colstore-compact") for name in threads)
    store.close()
    assert len(store._segments) < 3


def test_failed_background_compaction_surfaces_on_wait(tmp_path, monkeypatch):
    store = ColumnarStore.create(
        tmp_path / "c.col", CONFIG, "h", group_rows=8, compact_fanin=3
    )

    def boom(self):
        raise RuntimeError("compaction exploded")

    monkeypatch.setattr(ColumnarStore, "_maybe_compact", boom)
    fill_shards(store, 3)
    with pytest.raises(RuntimeError, match="compaction exploded"):
        store.wait_for_compaction()
    monkeypatch.undo()
    store.close()  # drains cleanly once compaction works again
    with ColumnarStore.open(tmp_path / "c.col") as reopened:
        assert reopened.counts()["done"] == 24  # no rows lost to the failure


def test_streaming_reads_are_consistent_during_background_compaction(tmp_path):
    # Regression: background compaction rewrites the segment list (and
    # unlinks the merged files) from its own thread while _iter_logical
    # streams it — an unlocked reader sees a half-swapped list and drops
    # whole merged runs. Hammer iter_results from a reader thread while the
    # writer seals shards; every sealed row must be visible in every pass.
    import threading

    store = ColumnarStore.create(
        tmp_path / "c.col", CONFIG, "h", group_rows=8, compact_fanin=3
    )
    halt = threading.Event()
    sealed: dict[int, bool] = {}
    problems: list[str] = []

    def reader():
        while not halt.is_set():
            snapshot = dict(sealed)
            try:
                rows = {row["ordinal"] for row in store.iter_results()}
            except Exception as err:  # unlinked segment file, torn manifest
                problems.append(repr(err))
                continue
            missing = {o for o, done in snapshot.items() if done} - rows
            if missing:
                problems.append(f"missing {len(missing)} sealed rows")

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for shard_id in range(40):
            start, stop = shard_id * 8, (shard_id + 1) * 8
            store.start_shard(shard_id, start, stop)
            for ordinal in range(start, stop):
                store.record_result(
                    ordinal, f"L{ordinal}", -1.0 - (ordinal % 17) * 0.25,
                    0, 8, 0.1, 0.0,
                )
                sealed[ordinal] = False
            store.finish_shard(shard_id, 0.1)
            for ordinal in range(start, stop):
                sealed[ordinal] = True
        store.wait_for_compaction()
    finally:
        halt.set()
        thread.join()
    assert not problems, problems[:3]
    assert {row["ordinal"] for row in store.iter_results()} == set(range(320))
    store.close()


def test_sqlite_store_wait_for_compaction_is_noop(tmp_path):
    store = CampaignStore.create(tmp_path / "c.sqlite", CONFIG, "h")
    store.wait_for_compaction()  # interface parity with the columnar store
    store.close()


def test_update_to_sealed_row_goes_to_orphan_log_and_wins(store):
    fill_shards(store, 1)
    # Ordinal 3 is sealed; a later cluster retry re-records it.
    store.record_result(3, "L3", -99.0, 1, 8, 0.1, 0.0, attempts=2)
    assert (store.root / "active" / "orphan.log").exists()
    assert store.top(1)[0]["ordinal"] == 3
    store.close()
    with ColumnarStore.open(store.path) as reopened:
        assert reopened.top(1)[0]["ordinal"] == 3
        assert reopened.counts()["done"] == 8


def test_stale_topk_index_is_detected_and_rebuilt(store):
    fill_shards(store, 2)
    (store.root / "topk.idx").write_bytes(b"RVSTOPK1" + b"\x00" * 16)
    store.close()
    with ColumnarStore.open(store.path) as reopened:
        assert reopened._topk_dirty
        assert [r["ordinal"] for r in reopened.top(3)] == [
            r["ordinal"] for r in store.top(3)
        ]
        assert not reopened._topk_dirty  # the query rebuilt it


def test_top_overflows_capacity_with_full_scan(tmp_path):
    store = ColumnarStore.create(
        tmp_path / "c.col", CONFIG, "h", group_rows=8, topk_capacity=4
    )
    fill_shards(store, 2)  # 16 done rows, index holds only the best 4
    top = store.top(10)
    assert len(top) == 10
    scores = [r["best_score"] for r in top]
    assert scores == sorted(scores)
    store.close()


# ----------------------------------------------------------------------
# export parity
# ----------------------------------------------------------------------
def test_exports_match_sqlite_byte_for_byte(tmp_path):
    sq, co = both_stores(tmp_path)
    for st in (sq, co):
        st.record_result(0, "L0", -2.5, 1, 20, 0.125, 0.25)
        st.record_failure(1, "L1", "ValueError: poisoned", 3)
        st.record_result(2, "L2", -3.5, 0, 20, 0.125, float("nan"))
    for fmt in ("export_csv", "export_json"):
        a, b = tmp_path / f"sq-{fmt}.out", tmp_path / f"co-{fmt}.out"
        assert getattr(sq, fmt)(a) == getattr(co, fmt)(b) == 3
    assert (tmp_path / "sq-export_csv.out").read_bytes() == (
        tmp_path / "co-export_csv.out"
    ).read_bytes()
    ra, rb = sq.to_report(), co.to_report()
    assert ra.to_json() == rb.to_json()
    sq.close()
    co.close()
