"""Crash matrix: real SIGKILL mid-shard on the columnar backend.

Unlike the exception-injection tests in ``test_runner.py``, these kill an
actual campaign *process* with ``SIGKILL`` — no finally blocks, no flushes,
no close — across the worker-count × pool-mode matrix, with a batched
journal so group-commit loss is part of the crash surface. The bar: resume
docks only the missing ligands, the final store is complete, and its
science digest is bitwise identical to a serial SQLite run of the same
campaign — and to a 2-node fleet run.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

import repro.campaign.runner as runner_mod
from repro.campaign import CampaignRunner, SyntheticSource, open_store
from repro.vs.docking import dock as real_dock

SEED = 42
N_LIGANDS = 6
SRC = str(Path(__file__).resolve().parents[2] / "src")

CHILD_SCRIPT = """
import os, signal, sys
sys.path.insert(0, {src!r})
import repro.campaign.runner as runner_mod
from repro.campaign import CampaignRunner, SyntheticSource
from repro.molecules.synthetic import generate_receptor
from repro.vs.docking import dock as real_dock

kill_at, store, workers, persistent = (
    int(sys.argv[1]), sys.argv[2], int(sys.argv[3]), sys.argv[4] == "1",
)
state = {{"calls": 0}}

def killing_dock(receptor, ligand, **kwargs):
    state["calls"] += 1
    if state["calls"] == kill_at:
        os.kill(os.getpid(), signal.SIGKILL)  # the real thing
    return real_dock(receptor, ligand, **kwargs)

runner_mod.dock = killing_dock
CampaignRunner(
    generate_receptor(80, seed=5),
    SyntheticSource({n_ligands}, atoms_range=(8, 12), seed=52),
    store_path=store,
    store_backend="columnar",
    journal_batch_records=3,
    n_spots=2,
    metaheuristic="M1",
    seed={seed},
    workload_scale=0.04,
    shard_size=2,
    node=None,
    host_workers=workers,
    persistent_pool=persistent,
    backoff_base=0.0,
).run()
""".format(src=SRC, n_ligands=N_LIGANDS, seed=SEED)


def make_runner(store_path, backend="columnar", workers=0, persistent=True):
    from repro.molecules.synthetic import generate_receptor

    return CampaignRunner(
        generate_receptor(80, seed=5),
        SyntheticSource(N_LIGANDS, atoms_range=(8, 12), seed=52),
        store_path=str(store_path),
        store_backend=backend,
        n_spots=2,
        metaheuristic="M1",
        seed=SEED,
        workload_scale=0.04,
        shard_size=2,
        node=None,
        host_workers=workers,
        persistent_pool=persistent,
        backoff_base=0.0,
    )


@pytest.fixture(scope="module")
def serial_sqlite(tmp_path_factory):
    """Reference digest + ranking from a serial SQLite campaign."""
    path = tmp_path_factory.mktemp("ref") / "ref.sqlite"
    with make_runner(path, backend="sqlite").run() as store:
        return store.science_digest(), [
            (r["title"], r["best_score"]) for r in store.top(N_LIGANDS)
        ]


class ResumeSpy:
    def __init__(self):
        self.ordinals = []

    def __call__(self, receptor, ligand, **kwargs):
        self.ordinals.append(kwargs["seed"] - SEED)
        return real_dock(receptor, ligand, **kwargs)


def sigkill_campaign(store_path, kill_at, workers, persistent):
    script = store_path.parent / "kill_child.py"
    script.write_text(CHILD_SCRIPT)
    proc = subprocess.run(
        [
            sys.executable, str(script), str(kill_at), str(store_path),
            str(workers), "1" if persistent else "0",
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        timeout=300,
    )
    assert proc.returncode == -signal.SIGKILL, (
        f"child survived the kill (exit {proc.returncode})"
    )


@pytest.mark.parametrize(
    "workers,persistent,kill_at",
    [
        (0, True, 4),
        (1, True, 3),
        (1, False, 5),
        (4, True, 4),
        (4, False, 3),
    ],
    ids=["w0", "w1-persistent", "w1-fresh", "w4-persistent", "w4-fresh"],
)
def test_sigkill_mid_shard_resumes_bitwise(
    tmp_path, monkeypatch, serial_sqlite, workers, persistent, kill_at
):
    expected_digest, expected_ranking = serial_sqlite
    store_path = tmp_path / "killed.col"
    sigkill_campaign(store_path, kill_at, workers, persistent)

    # The store survived the kill in a resumable state: everything the
    # child committed is durable, nothing after the kill exists.
    with open_store(store_path) as store:
        assert not store.is_complete()
        assert store.counts()["done"] <= kill_at - 1

    spy = ResumeSpy()
    monkeypatch.setattr(runner_mod, "dock", spy)
    with make_runner(
        store_path, workers=workers, persistent=persistent
    ).resume() as store:
        assert store.is_complete()
        counts = store.counts()
        assert counts["done"] == N_LIGANDS and counts["failed"] == 0
        # Bitwise parity with the serial SQLite reference.
        assert store.science_digest() == expected_digest
        assert [
            (r["title"], r["best_score"]) for r in store.top(N_LIGANDS)
        ] == expected_ranking
    # Nothing committed before the kill was recomputed.
    assert len(spy.ordinals) == len(set(spy.ordinals))
    assert set(spy.ordinals) <= set(range(N_LIGANDS))
    assert len(spy.ordinals) <= N_LIGANDS - (kill_at - 1) + 1


def test_two_node_fleet_on_columnar_matches_serial(tmp_path, serial_sqlite):
    expected_digest, _ = serial_sqlite
    runner = make_runner(tmp_path / "fleet.col", workers=0)
    runner.nodes = 2
    with runner.run() as store:
        assert store.is_complete()
        assert store.science_digest() == expected_digest


def test_single_node_columnar_matches_serial(tmp_path, serial_sqlite):
    expected_digest, _ = serial_sqlite
    with make_runner(tmp_path / "one.col").run() as store:
        assert store.science_digest() == expected_digest
