"""Exports must stream: bounded-memory regression tests.

A million-ligand campaign report cannot be built as an in-memory list of
row dicts. These tests write several thousand rows (enough that a
materialised export would allocate multiple megabytes), then put a
``tracemalloc`` ceiling on the export paths of *both* backends. The
ceiling is far below what ``list(iter_results())`` would cost, so any
regression back to collect-then-write trips it immediately.
"""

import json
import tracemalloc

import pytest

from repro.campaign import CampaignStore, export_report
from repro.campaign.colstore import ColumnarStore
from repro.vs.results import ScreeningReport

CONFIG = {"receptor_title": "stream receptor", "n_spots": 4, "seed": 9}
N_ROWS = 6000
SHARD = 500
# list(iter_results()) over 6000 rows costs >3 MB of dicts; a streaming
# export touches one row at a time and stays far under this.
CEILING_BYTES = 2 * 1024 * 1024


def _fill(store):
    for start in range(0, N_ROWS, SHARD):
        shard_id = start // SHARD
        store.start_shard(shard_id, start, start + SHARD)
        for ordinal in range(start, start + SHARD):
            store.record_result(
                ordinal, f"LIG-{ordinal:06d}", -1.0 - (ordinal % 97) / 7.0,
                ordinal % 4, 128, 0.01, 0.25,
            )
        store.finish_shard(shard_id, 0.5)
    return store


@pytest.fixture(scope="module", params=["sqlite", "columnar"])
def filled_store(request, tmp_path_factory):
    root = tmp_path_factory.mktemp(f"export-{request.param}")
    if request.param == "sqlite":
        store = _fill(CampaignStore.create(root / "c.sqlite", CONFIG, "h"))
    else:
        store = _fill(
            ColumnarStore.create(root / "c.col", CONFIG, "h", group_rows=512)
        )
    yield store
    store.close()


def _peak_during(fn):
    tracemalloc.start()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def test_report_export_streams(filled_store, tmp_path):
    out = tmp_path / "report.json"
    n, peak = _peak_during(lambda: export_report(filled_store, out))
    assert n == N_ROWS
    assert peak < CEILING_BYTES, f"report export allocated {peak} bytes"
    report = ScreeningReport.from_json(out.read_text())
    assert len(report.entries) == N_ROWS
    assert report.entries[0].ligand_title == "LIG-000000"


def test_json_export_streams(filled_store, tmp_path):
    out = tmp_path / "rows.json"
    n, peak = _peak_during(lambda: filled_store.export_json(out))
    assert n == N_ROWS
    assert peak < CEILING_BYTES, f"json export allocated {peak} bytes"
    rows = json.loads(out.read_text())["results"]
    assert len(rows) == N_ROWS and rows[-1]["ordinal"] == N_ROWS - 1


def test_csv_export_streams(filled_store, tmp_path):
    out = tmp_path / "rows.csv"
    n, peak = _peak_during(lambda: filled_store.export_csv(out))
    assert n == N_ROWS
    assert peak < CEILING_BYTES, f"csv export allocated {peak} bytes"
    lines = out.read_text().strip().splitlines()
    assert len(lines) == N_ROWS + 1  # header + rows


def test_iter_results_is_lazy(filled_store):
    # Pulling three rows from the iterator must not decode the world.
    def take3():
        iterator = filled_store.iter_results()
        return [next(iterator) for _ in range(3)]

    rows, peak = _peak_during(take3)
    assert [r["ordinal"] for r in rows] == [0, 1, 2]
    assert peak < CEILING_BYTES / 2
