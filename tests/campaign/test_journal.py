"""Write-ahead journal: durability records and truncated-tail recovery."""

import json

import pytest

from repro.campaign.journal import CampaignJournal
from repro.errors import CampaignError


@pytest.fixture()
def journal(tmp_path):
    return CampaignJournal(tmp_path / "campaign.journal")


def test_replay_missing_file_is_empty(journal):
    state = journal.replay()
    assert state.started == {}
    assert state.finished == set()
    assert not state.campaign_finished
    assert state.config_hash is None


def test_append_replay_roundtrip(journal):
    journal.campaign_start("abc123")
    journal.shard_start(0, 0, 4)
    journal.shard_finish(0, 4, 0)
    journal.shard_start(1, 4, 8)
    state = journal.replay()
    assert state.config_hash == "abc123"
    assert state.started == {0: (0, 4), 1: (4, 8)}
    assert state.finished == {0}
    assert state.unfinished() == {1}
    assert not state.campaign_finished

    journal.shard_finish(1, 3, 1)
    journal.campaign_finish(8)
    state = journal.replay()
    assert state.unfinished() == set()
    assert state.campaign_finished


def test_records_are_one_json_line_each(journal):
    journal.campaign_start("h")
    journal.shard_start(2, 8, 12)
    lines = journal.path.read_text().splitlines()
    assert len(lines) == 2
    assert all(isinstance(json.loads(line), dict) for line in lines)


def test_truncated_tail_is_dropped(journal):
    # A SIGKILL mid-append leaves a partial final line; replay must treat it
    # as if the record was never written.
    journal.campaign_start("h")
    journal.shard_start(0, 0, 4)
    journal.shard_finish(0, 4, 0)
    with open(journal.path, "a") as fh:
        fh.write('{"record": "shard_start", "sha')  # torn write, no newline
    state = journal.replay()
    assert state.truncated_records == 1
    assert state.started == {0: (0, 4)}
    assert state.finished == {0}


def test_corruption_before_tail_raises(journal):
    journal.campaign_start("h")
    with open(journal.path, "a") as fh:
        fh.write("not json at all\n")
    journal.shard_start(0, 0, 4)
    with pytest.raises(CampaignError, match="corrupt journal"):
        journal.replay()


def test_valid_json_non_record_line_raises_midfile(journal):
    journal.campaign_start("h")
    with open(journal.path, "a") as fh:
        fh.write('["not", "a", "record"]\n')
    journal.shard_start(0, 0, 4)
    with pytest.raises(CampaignError, match="corrupt journal"):
        journal.replay()


def test_config_hash_change_midfile_raises(journal):
    journal.campaign_start("aaa")
    journal.campaign_resume("bbb")
    with pytest.raises(CampaignError, match="config hash changed"):
        journal.replay()


def test_resume_marker_with_same_hash_ok(journal):
    journal.campaign_start("aaa")
    journal.shard_start(0, 0, 2)
    journal.campaign_resume("aaa")
    state = journal.replay()
    assert state.config_hash == "aaa"
    assert state.unfinished() == {0}


def test_unknown_record_kinds_are_ignored(journal):
    journal.campaign_start("h")
    journal.append({"record": "future_marker", "x": 1})
    state = journal.replay()
    assert state.config_hash == "h"


def test_append_requires_record_key(journal):
    with pytest.raises(CampaignError):
        journal.append({"no": "kind"})
