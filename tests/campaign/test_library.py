"""Streaming library sources, sharding, and title resolution."""

import numpy as np
import pytest

from repro.campaign.library import (
    IterableSource,
    ListSource,
    PDBDirectorySource,
    Shard,
    SyntheticSource,
    iter_shards,
    receptor_fingerprint,
    resolve_title,
)
from repro.errors import CampaignError
from repro.molecules.pdb import dumps_pdb, write_pdb
from repro.molecules.synthetic import generate_ligand, generate_receptor
from repro.vs.screening import synthetic_library


def test_synthetic_source_matches_materialized_library():
    # Lazy streaming must reproduce synthetic_library() ligand-for-ligand.
    source = SyntheticSource(5, atoms_range=(8, 14), seed=9)
    materialized = synthetic_library(5, atoms_range=(8, 14), seed=9)
    streamed = list(source)
    assert len(streamed) == 5
    for lazy, eager in zip(streamed, materialized):
        assert lazy.title == eager.title
        assert np.array_equal(lazy.coords, eager.coords)
        assert list(lazy.elements) == list(eager.elements)


def test_synthetic_source_random_access():
    source = SyntheticSource(6, atoms_range=(8, 12), seed=4)
    assert source.count() == 6
    third = source.ligand_at(3)
    assert third.title == "LIG0003"
    assert np.array_equal(third.coords, list(source)[3].coords)
    with pytest.raises(CampaignError):
        source.ligand_at(6)
    with pytest.raises(CampaignError):
        SyntheticSource(0)
    with pytest.raises(CampaignError):
        SyntheticSource(3, atoms_range=(10, 5))


def test_list_and_iterable_sources():
    ligands = [generate_ligand(8, seed=i) for i in range(3)]
    listed = ListSource(ligands)
    assert listed.count() == 3
    assert listed.descriptor() == {"kind": "list", "n_ligands": 3}
    assert [l.title for l in listed] == [l.title for l in ligands]

    streaming = IterableSource(iter(ligands))
    assert streaming.count() is None
    assert streaming.descriptor() == {"kind": "iterable"}
    assert len(list(streaming)) == 3


def test_iter_shards_deterministic_plan():
    source = ListSource([generate_ligand(6, seed=i) for i in range(7)])
    shards = list(iter_shards(source, 3))
    assert [s.shard_id for s, _ in shards] == [0, 1, 2]
    assert [(s.start, s.stop) for s, _ in shards] == [(0, 3), (3, 6), (6, 7)]
    assert shards[-1][0].size == 1
    # Ordinals are global and contiguous across shards.
    ordinals = [o for _, items in shards for o, _ in items]
    assert ordinals == list(range(7))
    assert list(shards[1][0].ordinals()) == [3, 4, 5]
    with pytest.raises(CampaignError):
        list(iter_shards(source, 0))


def test_shard_is_value_object():
    assert Shard(1, 3, 6) == Shard(1, 3, 6)
    assert Shard(1, 3, 6).size == 3


def test_resolve_title_collisions():
    seen: set[str] = set()
    assert resolve_title("LIGA", 0, seen) == "LIGA"
    assert resolve_title("LIGB", 1, seen) == "LIGB"
    # Duplicate gets the global ordinal suffixed.
    assert resolve_title("LIGA", 2, seen) == "LIGA#2"
    # Empty title falls back to the ordinal form.
    assert resolve_title("", 3, seen) == "ligand-3"
    # And even that collides safely with a hostile explicit title.
    assert resolve_title("ligand-3", 4, seen) == "ligand-3#4"
    assert len(seen) == 5


def test_pdb_directory_source(tmp_path):
    # Two single-ligand files plus one two-model file, in name order.
    lig_a = generate_ligand(8, seed=1, title="")
    lig_b = generate_ligand(9, seed=2, title="beta")
    write_pdb(lig_a, tmp_path / "a_first.pdb")
    write_pdb(lig_b, tmp_path / "b_second.pdb")
    model_1 = generate_ligand(7, seed=3, title="")
    model_2 = generate_ligand(6, seed=4, title="")
    multi = []
    for i, lig in enumerate((model_1, model_2), start=1):
        body = "\n".join(
            line
            for line in dumps_pdb(lig).splitlines()
            if not line.startswith("END")
        )
        multi.append(f"MODEL     {i}\n{body}\nENDMDL\n")
    (tmp_path / "c_multi.pdb").write_text("".join(multi))

    source = PDBDirectorySource(tmp_path)
    ligands = list(source)
    assert [l.title for l in ligands] == [
        "a_first",  # untitled file inherits its stem
        "beta",
        "c_multi:1",  # untitled models get stem:model
        "c_multi:2",
    ]
    assert [l.n_atoms for l in ligands] == [8, 9, 7, 6]
    assert source.count() is None
    descriptor = source.descriptor()
    assert descriptor["kind"] == "pdb-dir"
    # Two iterations stream identical content (resume re-streams).
    assert [l.title for l in source] == [l.title for l in ligands]


def test_pdb_directory_source_validation(tmp_path):
    with pytest.raises(CampaignError):
        PDBDirectorySource(tmp_path / "missing")
    with pytest.raises(CampaignError):
        PDBDirectorySource(tmp_path)  # exists but empty


def test_receptor_fingerprint_sensitivity():
    receptor = generate_receptor(50, seed=5)
    same = generate_receptor(50, seed=5)
    other = generate_receptor(50, seed=6)
    assert receptor_fingerprint(receptor) == receptor_fingerprint(same)
    assert receptor_fingerprint(receptor) != receptor_fingerprint(other)
    moved = receptor.translated(np.array([0.1, 0.0, 0.0]))
    assert receptor_fingerprint(receptor) != receptor_fingerprint(moved)
