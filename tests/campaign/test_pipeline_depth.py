"""Docking-pipeline campaign correctness (``pipeline_depth > 1``).

The contract under test: co-scheduling D ligands through one persistent
pool is *purely* an execution optimisation. The science digest — every
ordinal's score, spot, and evaluation count, byte for byte — must be
identical at any depth, any worker count, fresh or persistent pool, and
through a kill-mid-shard resume. Depth 1 must not merely agree on results:
it must take today's exact serial code path (main thread, ordinal order,
non-interleaved launch sequence).
"""

import threading

import pytest

import repro.campaign.runner as runner_mod
from repro.campaign import CampaignRunner, SyntheticSource
from repro.vs.docking import dock as real_dock

SEED = 11
N_LIGANDS = 7


def make_runner(receptor, tmp_path, name="c.sqlite", **overrides):
    kwargs = dict(
        store_path=tmp_path / name,
        n_spots=2,
        metaheuristic="M1",
        seed=SEED,
        workload_scale=0.05,
        shard_size=3,
        backoff_base=0.0,
    )
    kwargs.update(overrides)
    return CampaignRunner(
        receptor, SyntheticSource(N_LIGANDS, atoms_range=(8, 12), seed=2), **kwargs
    )


@pytest.fixture(scope="module")
def serial_digest(receptor, tmp_path_factory):
    """The byte-exact science reference: serial, single-process run."""
    tmp = tmp_path_factory.mktemp("pipeline-serial")
    with make_runner(receptor, tmp).run() as store:
        return store.science_digest()


# Fresh-pool at 0 workers is the serial path twice over; skip the duplicate.
MATRIX = [
    (depth, workers, persistent)
    for depth in (1, 2, 4)
    for workers in (0, 1, 4)
    for persistent in (True, False)
    if not (workers == 0 and not persistent)
]


@pytest.mark.parametrize("depth,workers,persistent", MATRIX)
def test_science_digest_parity_matrix(
    receptor, tmp_path, serial_digest, depth, workers, persistent
):
    with make_runner(
        receptor,
        tmp_path,
        host_workers=workers,
        persistent_pool=persistent,
        pipeline_depth=depth,
    ).run() as store:
        assert store.science_digest() == serial_digest
        assert store.counts()["done"] == N_LIGANDS


def test_kill_mid_shard_then_resume_at_depth_4(
    receptor, tmp_path, serial_digest, monkeypatch
):
    # With four docks in flight the interrupt lands at a nondeterministic
    # point, so no exact-ordinal assertions — the bar is that the store
    # stays prefix-consistent (ordinal-ordered commits) and the resumed
    # campaign's science digest is still byte-identical to serial.
    calls = {"n": 0}
    lock = threading.Lock()

    def interrupting(receptor_arg, ligand, **kwargs):
        with lock:
            calls["n"] += 1
            if calls["n"] == 4:
                raise KeyboardInterrupt  # the simulated SIGKILL
        return real_dock(receptor_arg, ligand, **kwargs)

    monkeypatch.setattr(runner_mod, "dock", interrupting)
    with pytest.raises(KeyboardInterrupt):
        make_runner(
            receptor, tmp_path, host_workers=2, pipeline_depth=4, shard_size=4
        ).run()

    monkeypatch.setattr(runner_mod, "dock", real_dock)
    with make_runner(
        receptor, tmp_path, host_workers=2, pipeline_depth=4, shard_size=4
    ).resume() as store:
        assert store.is_complete()
        assert store.counts()["done"] == N_LIGANDS
        assert store.science_digest() == serial_digest


def test_depth_1_runs_exact_legacy_serial_path(receptor, tmp_path, monkeypatch):
    order = []

    def tracing(receptor_arg, ligand, **kwargs):
        order.append((kwargs["seed"] - SEED, threading.current_thread().name))
        return real_dock(receptor_arg, ligand, **kwargs)

    monkeypatch.setattr(runner_mod, "dock", tracing)
    with make_runner(
        receptor, tmp_path, host_workers=2, pipeline_depth=1
    ).run() as store:
        assert store.counts()["done"] == N_LIGANDS
    # Depth 1 is the legacy loop, not a one-lane pipeline: every dock runs
    # on the main thread, strictly in ordinal order.
    assert [ordinal for ordinal, _ in order] == list(range(N_LIGANDS))
    assert all(name == "MainThread" for _, name in order)


def test_depth_1_launch_sequence_is_not_interleaved(receptor, tmp_path, monkeypatch):
    from repro.engine.host_runtime import ParallelSpotEvaluator

    versions = []
    original = ParallelSpotEvaluator.submit

    def spy(self, *args, **kwargs):
        ticket = original(self, *args, **kwargs)
        versions.append(ticket.binding.version)
        return ticket

    monkeypatch.setattr(ParallelSpotEvaluator, "submit", spy)
    with make_runner(receptor, tmp_path, host_workers=2, pipeline_depth=1).run():
        pass
    assert versions  # the spy actually saw the campaign's launches
    # Legacy sequence: each ligand's launches form one contiguous block —
    # no other ligand's launch ever lands inside it.
    block_starts = [
        v for i, v in enumerate(versions) if i == 0 or versions[i - 1] != v
    ]
    assert len(block_starts) == len(set(versions))


def test_pipeline_depth_validation(receptor, tmp_path):
    from repro.errors import CampaignError

    with pytest.raises(CampaignError, match="pipeline_depth"):
        make_runner(receptor, tmp_path, pipeline_depth=0)


def test_pipelined_campaign_emits_overlap_telemetry(receptor, tmp_path):
    from repro import observability as obs

    # The tracer is session-global: only look at spans this run appends.
    seen = len(obs.get_telemetry().snapshot()["spans"])
    with make_runner(
        receptor, tmp_path, host_workers=2, pipeline_depth=2
    ).run() as store:
        assert store.counts()["done"] == N_LIGANDS
    assert obs.gauge("host.pipeline.depth").value == 2
    snapshot = obs.get_telemetry().snapshot()
    lanes = {
        span["tags"].get("pipeline_lane")
        for span in snapshot["spans"][seen:]
        if span["name"] == "campaign.pipeline.dock"
    }
    assert lanes and lanes <= {0, 1}
