"""Regression: resuming a complete campaign is an observable no-op.

``repro-vs campaign resume`` on an already-complete store must exit 0
without re-docking anything, and still leave a *valid* metrics snapshot
behind — one that says, in telemetry, "this was a no-op".
"""

import pytest

from repro import observability as obs
from repro.cli import main
from repro.observability import load_snapshot

RUN_ARGS = [
    "campaign", "run",
    "--receptor-atoms", "60",
    "--ligands", "4",
    "--atoms-min", "8",
    "--atoms-max", "12",
    "--spots", "2",
    "--metaheuristic", "M1",
    "--scale", "0.05",
    "--seed", "3",
    "--shard-size", "2",
    "--node", "none",
]


@pytest.fixture
def complete_store(tmp_path, capsys):
    store = tmp_path / "c.sqlite"
    assert main(RUN_ARGS + ["--store", str(store)]) == 0
    capsys.readouterr()
    return store


def _counters(snapshot):
    return {(c["name"]): c["value"] for c in snapshot["counters"] if not c["tags"]}


def test_noop_resume_exits_zero_with_valid_metrics(complete_store, capsys):
    obs.reset()  # isolate the resume's telemetry from the run's
    assert main(["campaign", "resume", "--store", str(complete_store)]) == 0
    out = capsys.readouterr().out
    assert "campaign complete" in out

    metrics_path = str(complete_store) + ".metrics.json"
    snapshot = load_snapshot(metrics_path)  # validates schema + version

    counters = _counters(snapshot)
    assert counters.get("campaign.resumes.noop") == 1
    assert "campaign.ligands.done" not in counters, "no-op must not re-dock"

    resume_spans = [s for s in snapshot["spans"] if s["name"] == "campaign.resume"]
    assert len(resume_spans) == 1
    assert resume_spans[0]["tags"].get("noop") is True


def test_noop_resume_metrics_out_flag_overrides_default(
    complete_store, tmp_path, capsys
):
    obs.reset()
    out_path = tmp_path / "custom-metrics.json"
    assert main([
        "campaign", "resume", "--store", str(complete_store),
        "--metrics-out", str(out_path),
    ]) == 0
    capsys.readouterr()
    snapshot = load_snapshot(out_path)
    assert _counters(snapshot).get("campaign.resumes.noop") == 1


def test_repeated_noop_resume_stays_a_noop(complete_store, capsys):
    obs.reset()
    for _ in range(2):
        assert main(["campaign", "resume", "--store", str(complete_store)]) == 0
    capsys.readouterr()
    snapshot = load_snapshot(str(complete_store) + ".metrics.json")
    assert _counters(snapshot).get("campaign.resumes.noop") == 2
    assert "campaign.ligands.done" not in _counters(snapshot)
