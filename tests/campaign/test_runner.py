"""Campaign orchestration: crash/resume determinism, retries, progress.

The kill-mid-shard tests simulate a SIGKILL via exception injection: a
monkeypatched ``dock`` raises ``KeyboardInterrupt`` partway through a shard,
which the runner must never swallow. The acceptance bar: resume completes
the *remaining* ligands only (nothing lost, nothing recomputed) and the
final ranking is bitwise identical to an uninterrupted run — including under
the real process-parallel host runtime (1 and 4 workers).
"""

import math
import os

import pytest

import repro.campaign.runner as runner_mod
from repro import observability as obs
from repro.campaign import CampaignRunner, SyntheticSource
from repro.errors import CampaignError
from repro.vs.docking import dock as real_dock
from repro.vs.screening import screen, synthetic_library

SEED = 11
N_LIGANDS = 5


def make_runner(receptor, tmp_path, name="c.sqlite", **overrides):
    kwargs = dict(
        store_path=tmp_path / name,
        n_spots=2,
        metaheuristic="M1",
        seed=SEED,
        workload_scale=0.05,
        shard_size=2,
        backoff_base=0.0,
    )
    kwargs.update(overrides)
    return CampaignRunner(
        receptor, SyntheticSource(N_LIGANDS, atoms_range=(8, 12), seed=2), **kwargs
    )


class DockSpy:
    """Stand-in for ``runner.dock`` that records ordinals and can blow up."""

    def __init__(self, interrupt_before_call=None, poison_ordinal=None):
        self.ordinals = []
        self.calls = 0
        self.interrupt_before_call = interrupt_before_call
        self.poison_ordinal = poison_ordinal

    def __call__(self, receptor, ligand, **kwargs):
        self.calls += 1
        if (
            self.interrupt_before_call is not None
            and self.calls >= self.interrupt_before_call
        ):
            raise KeyboardInterrupt  # the simulated SIGKILL
        ordinal = kwargs["seed"] - SEED
        if ordinal == self.poison_ordinal:
            raise ValueError(f"poisoned ligand {ordinal}")
        self.ordinals.append(ordinal)
        return real_dock(receptor, ligand, **kwargs)


def ranking(store, k=N_LIGANDS):
    return [(row["title"], row["best_score"]) for row in store.top(k)]


def test_run_matches_screen_bitwise(receptor, tmp_path):
    # The durable path and the in-memory screen() wrapper share one code
    # path; different shard sizes must not change a single bit.
    with make_runner(receptor, tmp_path).run() as store:
        report = store.to_report()
    library = synthetic_library(N_LIGANDS, atoms_range=(8, 12), seed=2)
    direct = screen(
        receptor, library, n_spots=2, metaheuristic="M1",
        workload_scale=0.05, seed=SEED,
    )
    assert [e.ligand_title for e in report.entries] == [
        e.ligand_title for e in direct.entries
    ]
    assert [e.best_score for e in report.entries] == [
        e.best_score for e in direct.entries
    ]


def test_rerun_onto_existing_store_refused(receptor, tmp_path):
    make_runner(receptor, tmp_path).run().close()
    with pytest.raises(CampaignError, match="already exists"):
        make_runner(receptor, tmp_path).run()


def test_resume_completed_campaign_is_noop(receptor, tmp_path, monkeypatch):
    make_runner(receptor, tmp_path).run().close()
    spy = DockSpy()
    monkeypatch.setattr(runner_mod, "dock", spy)
    with make_runner(receptor, tmp_path).resume() as store:
        assert store.is_complete()
        assert store.counts()["done"] == N_LIGANDS
    assert spy.calls == 0  # nothing recomputed


@pytest.mark.parametrize("host_workers", [0, 1, 4])
def test_kill_mid_shard_then_resume_is_bitwise_identical(
    receptor, tmp_path, monkeypatch, host_workers
):
    # Uninterrupted reference run.
    with make_runner(
        receptor, tmp_path, name="ref.sqlite", host_workers=host_workers
    ).run() as store:
        expected = ranking(store)

    # Interrupted run: the 4th dock call (ordinal 3, mid-shard-1) dies.
    spy = DockSpy(interrupt_before_call=4)
    monkeypatch.setattr(runner_mod, "dock", spy)
    with pytest.raises(KeyboardInterrupt):
        make_runner(
            receptor, tmp_path, name="kill.sqlite", host_workers=host_workers
        ).run()
    assert spy.ordinals == [0, 1, 2]

    # Resume: only the remaining ligands are docked, nothing is recomputed,
    # and no completed result was lost.
    resume_spy = DockSpy()
    monkeypatch.setattr(runner_mod, "dock", resume_spy)
    with make_runner(
        receptor, tmp_path, name="kill.sqlite", host_workers=host_workers
    ).resume() as store:
        assert resume_spy.ordinals == [3, 4]
        assert store.is_complete()
        assert store.counts()["done"] == N_LIGANDS
        # Bitwise-identical final ranking (scores compared exactly).
        assert ranking(store) == expected


def test_persistent_pool_matches_fresh_pool_and_serial_bitwise(receptor, tmp_path):
    # One pool reused across the campaign, a fresh pool per ligand, and the
    # plain serial path must agree on every float.
    warmups = obs.counter("host.warmups").value
    with make_runner(
        receptor, tmp_path, name="persistent.sqlite", host_workers=2
    ).run() as store:
        persistent = ranking(store)
    # The whole campaign paid exactly one pool spawn + receptor staging.
    assert obs.counter("host.warmups").value == warmups + 1
    with make_runner(
        receptor, tmp_path, name="fresh.sqlite", host_workers=2,
        persistent_pool=False,
    ).run() as store:
        fresh = ranking(store)
    with make_runner(receptor, tmp_path, name="serial.sqlite").run() as store:
        serial = ranking(store)
    assert persistent == fresh == serial


def test_kill_mid_shard_resume_with_persistent_pool_matches_fresh(
    receptor, tmp_path, monkeypatch
):
    # Fresh-pool-per-ligand reference ranking.
    with make_runner(
        receptor, tmp_path, name="fresh.sqlite", host_workers=2,
        persistent_pool=False,
    ).run() as store:
        expected = ranking(store)

    # Kill a persistent-pool campaign mid-shard...
    spy = DockSpy(interrupt_before_call=4)
    monkeypatch.setattr(runner_mod, "dock", spy)
    runner = make_runner(
        receptor, tmp_path, name="kill.sqlite", host_workers=2
    )
    with pytest.raises(KeyboardInterrupt):
        runner.run()
    assert spy.ordinals == [0, 1, 2]
    assert runner._runtime is None  # the crash path closed the pool

    # ...and resume with a persistent pool: only ordinals 3 and 4 are
    # docked, and the ranking is bitwise identical to the fresh-pool run.
    resume_spy = DockSpy()
    monkeypatch.setattr(runner_mod, "dock", resume_spy)
    with make_runner(
        receptor, tmp_path, name="kill.sqlite", host_workers=2
    ).resume() as store:
        assert resume_spy.ordinals == [3, 4]
        assert store.is_complete()
        assert ranking(store) == expected


def test_worker_death_recycles_pool_without_restaging(receptor, tmp_path):
    # A ligand whose dock kills a worker must not poison the pool: the
    # campaign recycles the workers, keeps the staged receptor and Eq. 1
    # weights, retries the ligand, and finishes with nothing failed.
    warmups = obs.counter("host.warmups").value
    recycles = obs.counter("host.pool.recycles").value
    runner = make_runner(receptor, tmp_path, host_workers=2, max_attempts=2)
    killed = []

    def sabotage(receptor_arg, ligand, **kwargs):
        if kwargs["seed"] - SEED == 1 and not killed:
            killed.append(True)
            runner._runtime.evaluator._pool.submit(os._exit, 1)
        return real_dock(receptor_arg, ligand, **kwargs)

    original_dock = runner_mod.dock
    runner_mod.dock = sabotage
    try:
        with runner.run() as store:
            counts = store.counts()
            assert counts["done"] == N_LIGANDS
            assert counts["failed"] == 0
    finally:
        runner_mod.dock = original_dock
    assert killed  # the sabotage actually fired
    assert obs.counter("host.pool.recycles").value == recycles + 1
    # Receptor staging + warm-up happened exactly once despite the crash.
    assert obs.counter("host.warmups").value == warmups + 1


def test_kill_then_resume_without_journal_uses_store(receptor, tmp_path, monkeypatch):
    spy = DockSpy(interrupt_before_call=4)
    monkeypatch.setattr(runner_mod, "dock", spy)
    runner = make_runner(receptor, tmp_path)
    with pytest.raises(KeyboardInterrupt):
        runner.run()
    # Journal lost (e.g. different filesystem) — the store alone suffices.
    runner.journal.path.unlink()
    monkeypatch.setattr(runner_mod, "dock", DockSpy())
    with make_runner(receptor, tmp_path).resume() as store:
        assert store.counts()["done"] == N_LIGANDS


def test_journal_records_crash_boundary(receptor, tmp_path, monkeypatch):
    monkeypatch.setattr(runner_mod, "dock", DockSpy(interrupt_before_call=4))
    runner = make_runner(receptor, tmp_path)
    with pytest.raises(KeyboardInterrupt):
        runner.run()
    state = runner.journal.replay()
    assert state.finished == {0}
    assert state.unfinished() == {1}  # started, never finished
    assert not state.campaign_finished


def test_poisoned_ligand_is_recorded_and_campaign_continues(
    receptor, tmp_path, monkeypatch
):
    sleeps = []
    monkeypatch.setattr(runner_mod, "dock", DockSpy(poison_ordinal=1))
    with make_runner(
        receptor, tmp_path, max_attempts=2, backoff_base=0.25,
        sleep=sleeps.append,
    ).run() as store:
        counts = store.counts()
        assert counts["done"] == N_LIGANDS - 1
        assert counts["failed"] == 1
        assert store.is_complete()
        row = [r for r in store.iter_results() if r["ordinal"] == 1][0]
        assert row["status"] == "failed"
        assert "ValueError" in row["error"] and "poisoned" in row["error"]
        assert row["attempts"] == 2
        # Failed ligands are simply absent from the ranking.
        assert len(store.top(N_LIGANDS)) == N_LIGANDS - 1
    # One backoff sleep between the two attempts, at the base delay.
    assert sleeps == [0.25]


def test_transient_failure_retries_with_backoff(receptor, tmp_path, monkeypatch):
    failures = {"left": 2}
    sleeps = []

    def flaky(receptor_arg, ligand, **kwargs):
        if kwargs["seed"] - SEED == 1 and failures["left"] > 0:
            failures["left"] -= 1
            raise RuntimeError("transient worker death")
        return real_dock(receptor_arg, ligand, **kwargs)

    monkeypatch.setattr(runner_mod, "dock", flaky)
    with make_runner(
        receptor, tmp_path, max_attempts=3, backoff_base=0.5, sleep=sleeps.append
    ).run() as store:
        assert store.counts()["done"] == N_LIGANDS
        row = [r for r in store.iter_results() if r["ordinal"] == 1][0]
        assert row["attempts"] == 3  # two transient failures, third try wins
    assert sleeps == [0.5, 1.0]  # exponential backoff


def test_screen_raises_instead_of_recording_failures(receptor, monkeypatch):
    # screen() is a one-shot in-memory campaign with raise_on_failure.
    monkeypatch.setattr(runner_mod, "dock", DockSpy(poison_ordinal=1))
    library = synthetic_library(3, atoms_range=(8, 12), seed=2)
    with pytest.raises(ValueError, match="poisoned"):
        screen(receptor, library, n_spots=2, metaheuristic="M1",
               workload_scale=0.05, seed=SEED)


def test_progress_snapshots(receptor, tmp_path):
    snapshots = []
    with make_runner(receptor, tmp_path, progress=snapshots.append).run():
        pass
    assert [s.shard_id for s in snapshots] == [0, 1, 2]
    assert [s.done for s in snapshots] == [2, 4, 5]
    assert all(s.total == N_LIGANDS for s in snapshots)
    assert all(s.ligands_per_second > 0 for s in snapshots)
    assert all(not math.isnan(s.eta_seconds) for s in snapshots)
    assert snapshots[-1].eta_seconds == 0.0


def test_resume_config_mismatch_rejected(receptor, tmp_path):
    make_runner(receptor, tmp_path).run().close()
    with pytest.raises(CampaignError, match="config mismatch"):
        make_runner(receptor, tmp_path, seed=SEED + 1).resume()
    with pytest.raises(CampaignError, match="config mismatch"):
        make_runner(receptor, tmp_path, n_spots=3).resume()


def test_runner_validation(receptor, tmp_path):
    with pytest.raises(CampaignError):
        make_runner(receptor, tmp_path, host_workers=-1)
    with pytest.raises(CampaignError):
        make_runner(receptor, tmp_path, parallel_mode="magic")
    with pytest.raises(CampaignError):
        make_runner(receptor, tmp_path, shard_size=0)
    with pytest.raises(CampaignError):
        make_runner(receptor, tmp_path, max_attempts=0)


def test_resume_missing_store_rejected(receptor, tmp_path):
    with pytest.raises(CampaignError, match="no campaign store"):
        make_runner(receptor, tmp_path).resume()
