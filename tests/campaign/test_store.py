"""SQLite campaign store: durability, idempotency, ranking, export."""

import csv
import json
import math
import sqlite3

import pytest

from repro.campaign.store import SCHEMA_VERSION, CampaignStore
from repro.errors import CampaignError

CONFIG = {
    "receptor_title": "store-test receptor",
    "n_spots": 4,
    "metaheuristic": "M1",
    "seed": 7,
}


@pytest.fixture()
def store(tmp_path):
    with CampaignStore.create(tmp_path / "c.sqlite", CONFIG, "hash-1") as s:
        yield s


def test_create_and_reopen_roundtrip(tmp_path):
    path = tmp_path / "c.sqlite"
    store = CampaignStore.create(path, CONFIG, "hash-1")
    store.record_result(0, "L0", -5.0, 1, 100, 0.1, 0.2)
    store.close()

    with CampaignStore.open(path) as reopened:
        assert reopened.config == CONFIG
        assert reopened.config_hash == "hash-1"
        assert reopened.counts()["done"] == 1
        assert not reopened.is_complete()


def test_create_refuses_existing(tmp_path):
    path = tmp_path / "c.sqlite"
    CampaignStore.create(path, CONFIG, "h").close()
    with pytest.raises(CampaignError, match="already exists"):
        CampaignStore.create(path, CONFIG, "h")


def test_open_missing_and_garbage(tmp_path):
    with pytest.raises(CampaignError, match="no campaign store"):
        CampaignStore.open(tmp_path / "nope.sqlite")
    garbage = tmp_path / "garbage.sqlite"
    garbage.write_text("definitely not a database " * 100)
    with pytest.raises(CampaignError):
        CampaignStore.open(garbage)


def test_open_rejects_schema_mismatch(tmp_path):
    path = tmp_path / "c.sqlite"
    CampaignStore.create(path, CONFIG, "h").close()
    conn = sqlite3.connect(path)
    conn.execute(
        "UPDATE meta SET value = ? WHERE key = 'schema_version'",
        (str(SCHEMA_VERSION + 1),),
    )
    conn.commit()
    conn.close()
    with pytest.raises(CampaignError, match="schema"):
        CampaignStore.open(path)


def test_wal_mode_on_disk(store):
    mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
    assert mode == "wal"


def test_upsert_is_idempotent(store):
    store.record_result(3, "L3", -4.0, 0, 50, 0.1, 0.0)
    store.record_result(3, "L3", -4.5, 2, 60, 0.2, 0.0, attempts=2)
    assert store.counts()["done"] == 1
    row = store.top(1)[0]
    assert row["best_score"] == -4.5
    assert row["best_spot"] == 2


def test_failure_then_success_transitions(store):
    store.register_ligands([(0, "L0")])
    assert store.counts()["pending"] == 1
    store.mark_running(0)
    assert store.counts()["running"] == 1
    store.record_failure(0, "L0", "ScoringError: pose 3 non-finite", attempts=3)
    counts = store.counts()
    assert counts["failed"] == 1 and counts["running"] == 0
    # A later retry that succeeds clears the failure record.
    store.record_result(0, "L0", -1.0, 0, 10, 0.1, 0.0)
    counts = store.counts()
    assert counts["done"] == 1 and counts["failed"] == 0
    assert store.top(1)[0]["title"] == "L0"


def test_register_ligands_never_downgrades(store):
    store.record_result(1, "L1", -2.0, 0, 10, 0.1, 0.0)
    store.register_ligands([(1, "L1"), (2, "L2")])
    counts = store.counts()
    assert counts["done"] == 1 and counts["pending"] == 1


def test_top_k_ordering_and_ties(store):
    store.record_result(0, "A", -3.0, 0, 10, 0.1, 0.0)
    store.record_result(1, "B", -5.0, 1, 10, 0.1, 0.0)
    store.record_result(2, "C", -5.0, 2, 10, 0.1, 0.0)  # tie → ordinal order
    store.record_failure(3, "D", "boom", 1)
    top = store.top(10)
    assert [r["title"] for r in top] == ["B", "C", "A"]
    assert [r["title"] for r in store.top(1)] == ["B"]
    with pytest.raises(CampaignError):
        store.top(0)


def test_top_uses_partial_index(store):
    plan = store._conn.execute(
        "EXPLAIN QUERY PLAN "
        "SELECT ordinal FROM ligands "
        "WHERE status = 'done' AND best_score IS NOT NULL "
        "ORDER BY best_score ASC, ordinal ASC LIMIT 5"
    ).fetchall()
    text = " ".join(str(tuple(row)) for row in plan)
    assert "ligands_score_idx" in text


def test_shard_tracking(store):
    store.start_shard(0, 0, 4)
    store.start_shard(1, 4, 8)
    assert store.finished_shards() == set()
    store.finish_shard(0, 1.5)
    assert store.finished_shards() == {0}
    store.start_shard(0, 0, 4)  # resume replay re-marks it running
    assert store.finished_shards() == set()


def test_done_ordinals_range(store):
    for ordinal in (0, 1, 5):
        store.record_result(ordinal, f"L{ordinal}", -1.0, 0, 1, 0.1, 0.0)
    store.record_failure(2, "L2", "x", 1)
    assert store.done_ordinals(0, 4) == {0, 1}
    assert store.done_ordinals(4, 8) == {5}


def test_completion_flag(store):
    assert not store.is_complete()
    store.mark_complete(42)
    assert store.is_complete()
    assert store.n_ligands == 42


def test_export_json_and_csv(store, tmp_path):
    store.record_result(0, "L0", -2.5, 1, 20, 0.1, 0.3)
    store.record_failure(1, "L1", "ValueError: poisoned", 3)

    json_path = tmp_path / "dump.json"
    assert store.export_json(json_path) == 2
    payload = json.loads(json_path.read_text())
    assert payload["campaign"] == CONFIG
    assert payload["config_hash"] == "hash-1"
    assert payload["counts"]["done"] == 1
    rows = payload["results"]
    assert [r["ordinal"] for r in rows] == [0, 1]
    assert rows[0]["best_score"] == -2.5
    assert rows[1]["status"] == "failed"
    assert "poisoned" in rows[1]["error"]

    csv_path = tmp_path / "dump.csv"
    assert store.export_csv(csv_path) == 2
    with open(csv_path, newline="") as fh:
        parsed = list(csv.DictReader(fh))
    assert len(parsed) == 2
    assert parsed[0]["title"] == "L0"
    assert parsed[1]["status"] == "failed"


def test_to_report_orders_and_accumulates(store):
    store.record_result(2, "L2", -1.0, 0, 10, 0.1, 0.25)
    store.record_result(0, "L0", -3.0, 1, 10, 0.1, 0.5)
    store.record_result(1, "L1", -2.0, 0, 10, 0.1, float("nan"))
    store.record_failure(3, "L3", "x", 1)
    report = store.to_report()
    assert report.receptor_title == "store-test receptor"
    # Ordinal (submission) order, failed ligands omitted.
    assert [e.ligand_title for e in report.entries] == ["L0", "L1", "L2"]
    assert report.simulated_seconds == pytest.approx(0.75)
    # NaN simulated time survives on its entry without poisoning the total.
    assert math.isnan(report.entries[1].simulated_seconds)
    assert report.entries[0].simulated_seconds == pytest.approx(0.5)


def test_in_memory_store_works():
    with CampaignStore.create(":memory:", CONFIG, "h") as store:
        store.record_result(0, "L0", -1.0, 0, 1, 0.1, 0.0)
        assert store.counts()["done"] == 1


# ----------------------------------------------------------------------
# science digest + busy-database backoff (cluster durability satellites)
# ----------------------------------------------------------------------
def test_science_digest_covers_science_and_ignores_timing(tmp_path):
    a = CampaignStore.create(tmp_path / "a.sqlite", CONFIG, "h")
    b = CampaignStore.create(tmp_path / "b.sqlite", CONFIG, "h")
    a.record_result(0, "L0", -3.0, 1, 10, wall_seconds=0.1, simulated_seconds=0.2)
    b.record_result(0, "L0", -3.0, 1, 10, wall_seconds=9.9, simulated_seconds=0.3)
    a.record_failure(1, "L1", "boom", 2)
    b.record_failure(1, "L1", "boom", 7)  # attempt counts are not science
    assert a.science_digest() == b.science_digest()
    assert list(a.science_rows()) == [
        (0, "L0", "done", -3.0, 1, 10),
        (1, "L1", "failed", None, None, None),
    ]
    b.record_result(2, "L2", -1.0, 0, 5, 0.1, 0.1)  # science diverges
    assert a.science_digest() != b.science_digest()
    a.close()
    b.close()


class _FlakyConn:
    """Wraps the real connection; first N execute calls report a busy DB."""

    def __init__(self, real, failures, message="database is locked"):
        self._real = real
        self.failures = failures
        self.message = message
        self.attempts = 0

    def execute(self, sql, params=()):
        self.attempts += 1
        if self.failures > 0:
            self.failures -= 1
            raise sqlite3.OperationalError(self.message)
        return self._real.execute(sql, params)

    def __getattr__(self, name):
        return getattr(self._real, name)


def test_busy_database_is_retried_with_backoff(store):
    store._conn = _FlakyConn(store._conn, failures=2)
    store.record_result(0, "L0", -1.0, 0, 1, 0.1, 0.0)  # survives the lock
    assert store.counts()["done"] == 1
    assert store._conn.attempts >= 3


def test_persistently_locked_database_raises_campaign_error(store):
    store._conn = _FlakyConn(store._conn, failures=10_000)
    with pytest.raises(CampaignError, match="stayed locked"):
        store.record_result(0, "L0", -1.0, 0, 1, 0.1, 0.0)


def test_non_lock_operational_errors_propagate_unchanged(store):
    store._conn = _FlakyConn(store._conn, failures=1, message="no such table: x")
    with pytest.raises(sqlite3.OperationalError, match="no such table"):
        store.record_result(0, "L0", -1.0, 0, 1, 0.1, 0.0)
    assert store._conn.attempts == 1  # no retry on a real error
