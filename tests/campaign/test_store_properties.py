"""Property-based invariants of the columnar store and streaming readers.

Uses hypothesis when the container provides it; otherwise the same
properties run over a seeded-random case battery (deterministic across
runs), mirroring ``tests/engine/test_partition_properties.py``.

The three invariants: (1) sealing + compaction is a pure re-layout — the
logical row set is exactly the written row set, at any group size or
fan-in; (2) the incremental top-K index agrees with a full sort for any
score stream, at any capacity, including ties; (3) the bounded-memory
streaming dedup keeps exactly the lines an unbounded in-memory dedup would.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.campaign.colstore import ColumnarStore
from repro.campaign.library import SmilesSource

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - container ships hypothesis
    HAVE_HYPOTHESIS = False

CONFIG = {"receptor_title": "prop receptor", "n_spots": 2, "seed": 1}


def _seeded_cases(draw, n=25, seed=20260808):
    rng = np.random.default_rng(seed)
    return [draw(rng) for _ in range(n)]


# ----------------------------------------------------------------------
# (1) seal + compact round-trip
# ----------------------------------------------------------------------
def check_compaction_roundtrip(scores, shard_size, group_rows, fanin):
    model = {}  # ordinal -> (title, score or None if failed)
    with tempfile.TemporaryDirectory() as tmp:
        store = ColumnarStore.create(
            Path(tmp) / "c.col", CONFIG, "h",
            group_rows=group_rows, compact_fanin=fanin, topk_capacity=4,
        )
        for start in range(0, len(scores), shard_size):
            stop = min(start + shard_size, len(scores))
            shard_id = start // shard_size
            store.start_shard(shard_id, start, stop)
            for ordinal in range(start, stop):
                title = f"L{ordinal}"
                score = scores[ordinal]
                if score is None:
                    store.record_failure(ordinal, title, "boom", 1)
                else:
                    store.record_result(ordinal, title, score, 0, 8, 0.1, 0.0)
                model[ordinal] = (title, score)
            store.finish_shard(shard_id, 0.1)
        # Compaction kicked in (unless too few segments formed) and the
        # logical rows survived the re-layout exactly.
        got = {
            row["ordinal"]: (row["title"], row["best_score"])
            for row in store.iter_results()
        }
        assert got == model
        done = sorted(
            (score, ordinal)
            for ordinal, (_, score) in model.items()
            if score is not None
        )
        top = store.top(max(1, len(model)))
        assert [(r["best_score"], r["ordinal"]) for r in top] == done
        # ...and again through the recovery path.
        store.close()
        with ColumnarStore.open(Path(tmp) / "c.col") as reopened:
            assert {
                row["ordinal"]: (row["title"], row["best_score"])
                for row in reopened.iter_results()
            } == model


def _draw_roundtrip(rng):
    n = int(rng.integers(1, 60))
    scores = [
        None if rng.random() < 0.15 else round(float(rng.uniform(-9, -1)), 4)
        for _ in range(n)
    ]
    return (
        scores,
        int(rng.integers(1, 9)),  # shard_size
        int(rng.integers(1, 9)),  # group_rows
        int(rng.integers(2, 5)),  # compact_fanin
    )


if HAVE_HYPOTHESIS:

    @settings(max_examples=25, deadline=None)
    @given(
        scores=st.lists(
            st.one_of(
                st.none(),
                st.floats(-9, -1, allow_nan=False).map(lambda s: round(s, 4)),
            ),
            min_size=1,
            max_size=60,
        ),
        shard_size=st.integers(1, 8),
        group_rows=st.integers(1, 8),
        fanin=st.integers(2, 4),
    )
    def test_compaction_roundtrip_properties(scores, shard_size, group_rows, fanin):
        check_compaction_roundtrip(scores, shard_size, group_rows, fanin)

else:

    @pytest.mark.parametrize(
        "scores,shard_size,group_rows,fanin", _seeded_cases(_draw_roundtrip)
    )
    def test_compaction_roundtrip_properties(scores, shard_size, group_rows, fanin):
        check_compaction_roundtrip(scores, shard_size, group_rows, fanin)


# ----------------------------------------------------------------------
# (2) top-K index == full sort
# ----------------------------------------------------------------------
def check_topk_matches_full_sort(scores, capacity):
    with tempfile.TemporaryDirectory() as tmp:
        store = ColumnarStore.create(
            Path(tmp) / "c.col", CONFIG, "h",
            group_rows=8, topk_capacity=capacity,
        )
        for ordinal, score in enumerate(scores):
            store.record_result(ordinal, f"L{ordinal}", score, 0, 8, 0.1, 0.0)
        # Ascending score, ordinal breaking ties — for every k, saturated
        # index or not.
        expected = sorted((score, ordinal) for ordinal, score in enumerate(scores))
        for k in (1, capacity, capacity + 3, len(scores) + 5):
            got = [(r["best_score"], r["ordinal"]) for r in store.top(k)]
            assert got == expected[:k], f"k={k} capacity={capacity}"
        store.close()


def _draw_topk(rng):
    n = int(rng.integers(1, 80))
    # Coarse rounding forces score ties, the ordering's hard case.
    scores = [round(float(rng.uniform(-5, -1)), 1) for _ in range(n)]
    return scores, int(rng.integers(1, 12))


if HAVE_HYPOTHESIS:

    @settings(max_examples=25, deadline=None)
    @given(
        scores=st.lists(
            st.floats(-5, -1, allow_nan=False).map(lambda s: round(s, 1)),
            min_size=1,
            max_size=80,
        ),
        capacity=st.integers(1, 12),
    )
    def test_topk_matches_full_sort(scores, capacity):
        check_topk_matches_full_sort(scores, capacity)

else:

    @pytest.mark.parametrize("scores,capacity", _seeded_cases(_draw_topk))
    def test_topk_matches_full_sort(scores, capacity):
        check_topk_matches_full_sort(scores, capacity)


# ----------------------------------------------------------------------
# (3) streaming dedup == in-memory dedup
# ----------------------------------------------------------------------
def check_reader_dedup(titles):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "lib.smi"
        path.write_text(
            "".join(f"CCO {title}\n" for title in titles), encoding="utf-8"
        )
        streamed = [lig.title for lig in SmilesSource(path, seed=3)]
        seen, expected = set(), []
        for title in titles:
            if title not in seen:
                seen.add(title)
                expected.append(title)
        assert streamed == expected
        # dedup=False keeps every line, order intact.
        assert [
            lig.title for lig in SmilesSource(path, seed=3, dedup=False)
        ] == list(titles)


def _draw_titles(rng):
    n = int(rng.integers(1, 60))
    pool = [f"mol{i}" for i in range(max(1, n // 3))]
    return ([pool[int(rng.integers(0, len(pool)))] for _ in range(n)],)


if HAVE_HYPOTHESIS:

    @settings(max_examples=25, deadline=None)
    @given(
        titles=st.lists(
            st.sampled_from([f"mol{i}" for i in range(12)]), min_size=1, max_size=60
        )
    )
    def test_reader_dedup_matches_in_memory(titles):
        check_reader_dedup(titles)

else:

    @pytest.mark.parametrize("titles", _seeded_cases(_draw_titles))
    def test_reader_dedup_matches_in_memory(titles):
        check_reader_dedup(titles)
