"""Streaming SMILES/CSV library readers: parsing, dedup, determinism."""

import pytest

from repro.campaign.library import (
    CsvSource,
    SmilesSource,
    build_source,
    materialize_ordinals,
)
from repro.errors import CampaignError

SMI = """\
# demo library
CCO ethanol
CC(=O)O acetic-acid

c1ccccc1 benzene
CCO ethanol
CCN
"""

CSV = """\
id,SMILES,Title,note
1,CCO,ethanol,aliphatic
2,CC(=O)O,acetic-acid,
3,,skipped-empty-smiles,
4,c1ccccc1,,untitled row
5,CCO,ethanol,duplicate
"""


@pytest.fixture
def smi_path(tmp_path):
    path = tmp_path / "lib.smi"
    path.write_text(SMI, encoding="utf-8")
    return path


@pytest.fixture
def csv_path(tmp_path):
    path = tmp_path / "lib.csv"
    path.write_text(CSV, encoding="utf-8")
    return path


def test_smiles_parsing_and_dedup(smi_path):
    ligands = list(SmilesSource(smi_path, seed=7))
    # Comment + blank skipped, duplicate "ethanol" dropped, untitled line
    # falls back to its SMILES string as title.
    assert [l.title for l in ligands] == [
        "ethanol", "acetic-acid", "benzene", "CCN"
    ]
    assert all(l.n_atoms >= 4 for l in ligands)


def test_smiles_dedup_off_keeps_duplicates(smi_path):
    titles = [l.title for l in SmilesSource(smi_path, seed=7, dedup=False)]
    assert titles == ["ethanol", "acetic-acid", "benzene", "ethanol", "CCN"]


def test_smiles_heavy_atom_estimate(tmp_path):
    path = tmp_path / "sized.smi"
    path.write_text("CCO tiny\nCC(=O)Nc1ccc(O)cc1 medium\n", encoding="utf-8")
    tiny, medium = list(SmilesSource(path, seed=0, atoms_range=(2, 64)))
    assert tiny.n_atoms == 3  # C, C, O
    assert medium.n_atoms == 11  # paracetamol heavy atoms
    # Clamped to atoms_range at both ends.
    tiny2, medium2 = list(SmilesSource(path, seed=0, atoms_range=(5, 8)))
    assert tiny2.n_atoms == 5 and medium2.n_atoms == 8


def test_smiles_deterministic_across_iterations_and_instances(smi_path):
    first = list(SmilesSource(smi_path, seed=7))
    second = list(SmilesSource(smi_path, seed=7))
    for a, b in zip(first, second):
        assert a.title == b.title
        assert (a.coords == b.coords).all()
    # A different seed keeps titles but changes conformers.
    other = list(SmilesSource(smi_path, seed=8))
    assert any((a.coords != c.coords).any() for a, c in zip(first, other))


def test_csv_parsing(csv_path):
    ligands = list(CsvSource(csv_path, seed=7))
    # Case-insensitive header match, empty-SMILES row skipped, untitled row
    # titled by its SMILES, duplicate title deduped.
    assert [l.title for l in ligands] == ["ethanol", "acetic-acid", "c1ccccc1"]


def test_csv_missing_smiles_column(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("id,name\n1,x\n", encoding="utf-8")
    with pytest.raises(CampaignError, match="no 'smiles' column"):
        list(CsvSource(path)._entries())


def test_csv_empty_file(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("", encoding="utf-8")
    with pytest.raises(CampaignError, match="is empty"):
        list(CsvSource(path)._entries())


def test_missing_file_and_bad_atoms_range(tmp_path):
    with pytest.raises(CampaignError, match="not found"):
        SmilesSource(tmp_path / "nope.smi")
    path = tmp_path / "ok.smi"
    path.write_text("CCO x\n", encoding="utf-8")
    with pytest.raises(CampaignError, match="invalid atoms_range"):
        SmilesSource(path, atoms_range=(9, 2))


def test_descriptor_round_trip(smi_path, csv_path):
    smiles = SmilesSource(smi_path, seed=11, dedup=False, atoms_range=(6, 30))
    rebuilt = build_source(smiles.descriptor())
    assert isinstance(rebuilt, SmilesSource) and not isinstance(rebuilt, CsvSource)
    assert rebuilt.descriptor() == smiles.descriptor()
    assert [l.title for l in rebuilt] == [l.title for l in smiles]

    csv_src = CsvSource(csv_path, seed=3, smiles_column="SMILES")
    rebuilt_csv = build_source(csv_src.descriptor())
    assert isinstance(rebuilt_csv, CsvSource)
    assert rebuilt_csv.descriptor() == csv_src.descriptor()
    assert [l.title for l in rebuilt_csv] == [l.title for l in csv_src]


def test_count_unknowable_before_streaming(smi_path):
    assert SmilesSource(smi_path).count() is None


def test_materialize_ordinals_scans_stream_once(smi_path):
    source = SmilesSource(smi_path, seed=7)
    picked = materialize_ordinals(source, [0, 2])
    assert picked[0].title == "ethanol" and picked[2].title == "benzene"
    with pytest.raises(CampaignError, match="library ended"):
        materialize_ordinals(source, [99])
