"""Torn-write fuzzing: truncate/corrupt store logs at every byte boundary.

A SIGKILL can shear any append mid-write. The contract under test: a torn
*tail* is detected, physically truncated, and recovery resumes with every
record before the tear intact — at every possible truncation offset, not
just the ones a lucky crash produces. Corruption that is *not* at the tail
is a real integrity failure and must raise, never be silently skipped.
"""

import shutil

import pytest

from repro.campaign.colstore import ColumnarStore, _FRAME, _pack_frame
from repro.campaign.journal import CampaignJournal
from repro.errors import CampaignError

CONFIG = {"receptor_title": "fuzz receptor", "n_spots": 2, "seed": 3}


def build_store(root):
    """One sealed shard, one active shard with a final RESULT record."""
    store = ColumnarStore.create(root, CONFIG, "hash-f", group_rows=4)
    store.start_shard(0, 0, 3)
    store.register_ligands([(o, f"L{o}") for o in range(3)])
    for o in range(3):
        store.record_result(o, f"L{o}", -1.0 - o, 0, 8, 0.1, 0.0)
    store.finish_shard(0, 0.2)
    store.start_shard(1, 3, 6)
    store.register_ligands([(o, f"L{o}") for o in range(3, 6)])
    store.record_result(3, "L3", -7.0, 1, 8, 0.1, 0.0)
    store.record_result(4, "L4", -8.0, 1, 8, 0.1, 0.0)  # the final record
    store.close()
    return root


def last_record_start(data: bytes) -> int:
    """Offset where the final frame of a well-formed log begins."""
    offset, last = 0, 0
    while offset < len(data):
        last = offset
        _, _, length, _ = _FRAME.unpack_from(data, offset)
        offset += _FRAME.size + length
    assert offset == len(data), "log under test must be well-formed"
    return last


def clone(src, dst):
    if dst.exists():
        shutil.rmtree(dst)
    shutil.copytree(src, dst)
    return dst


def test_active_log_truncation_sweep(tmp_path):
    pristine = build_store(tmp_path / "pristine")
    log_rel = "active/shard-1.log"
    data = (pristine / log_rel).read_bytes()
    start = last_record_start(data)
    for cut in range(start, len(data)):
        root = clone(pristine, tmp_path / "case")
        with open(root / log_rel, "r+b") as handle:
            handle.truncate(cut)
        with ColumnarStore.open(root) as store:
            # Everything before the tear survives; the torn record is gone.
            counts = store.counts()
            assert counts["done"] == 4, f"cut at byte {cut}"
            assert store.done_ordinals(3, 6) == {3}
            # L4 reverts to pending (it re-docks on resume); L5's REGISTER
            # is pre-tear and survives.
            assert counts["pending"] == 2
        # The tear was physically truncated in place.
        assert len((root / log_rel).read_bytes()) == start


def test_shards_log_truncation_sweep(tmp_path):
    pristine = build_store(tmp_path / "pristine")
    data = (pristine / "shards.log").read_bytes()
    start = last_record_start(data)  # the SHARD_START of shard 1
    for cut in range(start, len(data)):
        root = clone(pristine, tmp_path / "case")
        with open(root / "shards.log", "r+b") as handle:
            handle.truncate(cut)
        with ColumnarStore.open(root) as store:
            # Shard 0 (sealed, pre-tear) is untouchable; shard 1's start
            # marker tore, so it simply isn't tracked — its ligand rows are
            # still recovered from the active log and nothing re-docks.
            assert store.finished_shards() == {0}
            assert store.done_ordinals(0, 6) == {0, 1, 2, 3, 4}


def test_corrupt_final_record_is_dropped_as_torn(tmp_path):
    pristine = build_store(tmp_path / "pristine")
    log_rel = "active/shard-1.log"
    data = (pristine / log_rel).read_bytes()
    start = last_record_start(data)
    # Flip one payload byte at each offset of the final record's payload.
    for position in range(start + _FRAME.size, len(data)):
        root = clone(pristine, tmp_path / "case")
        corrupted = bytearray(data)
        corrupted[position] ^= 0xFF
        (root / log_rel).write_bytes(bytes(corrupted))
        with ColumnarStore.open(root) as store:
            assert store.done_ordinals(3, 6) == {3}, f"flip at byte {position}"


def test_corrupt_mid_file_record_raises(tmp_path):
    pristine = build_store(tmp_path / "pristine")
    log_rel = "active/shard-1.log"
    data = bytearray((pristine / log_rel).read_bytes())
    # Corrupt a payload byte of the FIRST record — complete bytes follow it,
    # so this is corruption, not a torn tail.
    data[_FRAME.size + 2] ^= 0xFF
    (pristine / log_rel).write_bytes(bytes(data))
    with pytest.raises(CampaignError, match="CRC mismatch"):
        ColumnarStore.open(pristine)


def test_bad_magic_raises(tmp_path):
    pristine = build_store(tmp_path / "pristine")
    log_rel = "active/shard-1.log"
    data = bytearray((pristine / log_rel).read_bytes())
    data[0] ^= 0xFF  # first frame's magic
    (pristine / log_rel).write_bytes(bytes(data))
    with pytest.raises(CampaignError, match="bad magic"):
        ColumnarStore.open(pristine)


def test_unreferenced_segment_debris_is_deleted(tmp_path):
    pristine = build_store(tmp_path / "pristine")
    debris = pristine / "segments" / "seg-00000099.col"
    debris.write_bytes(b"half-written segment before the manifest published")
    with ColumnarStore.open(pristine) as store:
        assert store.counts()["done"] == 5
    assert not debris.exists()


def test_truncated_segment_trailer_is_detected(tmp_path):
    pristine = build_store(tmp_path / "pristine")
    (segment,) = list((pristine / "segments").glob("seg-*.col"))
    data = segment.read_bytes()
    segment.write_bytes(data[:-4])  # shear the end-marker
    store = ColumnarStore.open(pristine)
    with pytest.raises(CampaignError, match="corrupt segment"):
        list(store.science_rows())
    store.close()


# ----------------------------------------------------------------------
# journal tail
# ----------------------------------------------------------------------
def build_journal(path):
    journal = CampaignJournal(path)
    journal.campaign_start("hash-j")
    journal.shard_start(0, 0, 4)
    journal.shard_finish(0, 4, 0)
    journal.shard_start(1, 4, 8)
    journal.shard_finish(1, 4, 0)  # the final line
    return path.read_bytes()


def test_journal_truncation_sweep(tmp_path):
    path = tmp_path / "c.journal"
    data = build_journal(path)
    last_line_start = data[:-1].rfind(b"\n") + 1
    for cut in range(last_line_start, len(data)):
        path.write_bytes(data[:cut])
        state = CampaignJournal(path).replay()
        # Pre-tear records always survive; the torn marker is dropped and
        # shard 1 re-queues (its store rows make the re-run a no-op).
        assert state.started.keys() == {0, 1}, f"cut at byte {cut}"
        assert 0 in state.finished
        if cut == last_line_start:
            assert state.truncated_records == 0  # clean boundary, no tear
            assert state.finished == {0}
        else:
            assert state.truncated_records in (0, 1)
            assert state.unfinished() <= {1}


def test_journal_mid_file_corruption_raises(tmp_path):
    path = tmp_path / "c.journal"
    data = build_journal(path).split(b"\n")
    data[1] = b"{torn json that is not the last line"
    path.write_bytes(b"\n".join(data))
    with pytest.raises(CampaignError, match="corrupt journal record"):
        CampaignJournal(path).replay()


def test_journal_group_commit_batches_fsyncs(tmp_path):
    from repro import observability as obs

    path = tmp_path / "batched.journal"
    journal = CampaignJournal(path, batch_records=4)
    flushes = obs.counter("campaign.journal.flushes").value
    journal.shard_start(0, 0, 4)
    journal.shard_finish(0, 4, 0)
    journal.shard_start(1, 4, 8)
    assert path.exists() is False or b"shard" not in path.read_bytes()
    journal.shard_finish(1, 4, 0)  # 4th record: one group commit
    assert obs.counter("campaign.journal.flushes").value == flushes + 1
    state = CampaignJournal(path).replay()
    assert state.finished == {0, 1}
    # Lifecycle markers are urgent: they flush whatever is buffered.
    journal.shard_start(2, 8, 12)
    journal.campaign_finish(12)
    assert CampaignJournal(path).replay().campaign_finished


def test_journal_time_based_flush(tmp_path, monkeypatch):
    import repro.campaign.journal as journal_mod

    clock = {"now": 100.0}
    monkeypatch.setattr(journal_mod.time, "monotonic", lambda: clock["now"])
    path = tmp_path / "timed.journal"
    journal = CampaignJournal(path, batch_records=100, batch_seconds=2.0)
    journal.shard_start(0, 0, 4)
    assert not path.exists()  # buffered: batch neither full nor old
    clock["now"] += 3.0
    journal.shard_start(1, 4, 8)  # arrives past the deadline → flush
    assert CampaignJournal(path).replay().started.keys() == {0, 1}


def test_journal_replay_flushes_own_buffer(tmp_path):
    journal = CampaignJournal(tmp_path / "j", batch_records=50)
    journal.shard_start(0, 0, 4)
    assert journal.replay().started == {0: (0, 4)}  # sees its own buffer
