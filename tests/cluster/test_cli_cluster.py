"""CLI wiring: ``campaign run --nodes`` and ``repro-vs cluster ...``."""

import multiprocessing
import socket

import pytest

from repro.campaign.store import CampaignStore
from repro.cli import main
from repro.errors import ClusterError

CAMPAIGN_ARGS = [
    "--receptor-atoms", "60",
    "--ligands", "6",
    "--atoms-min", "8",
    "--atoms-max", "12",
    "--spots", "2",
    "--metaheuristic", "M1",
    "--scale", "0.04",
    "--seed", "3",
    "--shard-size", "2",
    "--node", "none",
]


def _digest(path):
    with CampaignStore.open(path) as store:
        assert store.is_complete()
        return store.science_digest()


def _free_port():
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _worker_entry(address):
    raise SystemExit(main(["cluster", "worker", "--connect", address]))


def test_campaign_run_nodes_matches_inprocess(tmp_path, capsys):
    single, fleet = tmp_path / "single.sqlite", tmp_path / "fleet.sqlite"
    assert main(["campaign", "run", "--store", str(single)] + CAMPAIGN_ARGS) == 0
    rc = main(
        ["campaign", "run", "--store", str(fleet), "--nodes", "2"]
        + CAMPAIGN_ARGS
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "campaign complete: 6 done, 0 failed" in out
    assert _digest(fleet) == _digest(single)


def test_cluster_coordinator_serves_remote_cli_workers(tmp_path, capsys):
    single, fleet = tmp_path / "single.sqlite", tmp_path / "fleet.sqlite"
    assert main(["campaign", "run", "--store", str(single)] + CAMPAIGN_ARGS) == 0
    capsys.readouterr()

    port = _free_port()
    address = f"127.0.0.1:{port}"
    ctx = multiprocessing.get_context("fork")
    workers = [
        ctx.Process(target=_worker_entry, args=(address,), daemon=True)
        for _ in range(2)
    ]
    for worker in workers:
        worker.start()
    rc = main(
        [
            "cluster", "coordinator",
            "--store", str(fleet),
            "--listen", address,
            "--expect-nodes", "2",
        ]
        + CAMPAIGN_ARGS
    )
    for worker in workers:
        worker.join(timeout=30.0)
    captured = capsys.readouterr()
    assert rc == 0
    assert "fleet: 2 nodes" in captured.out
    assert all(worker.exitcode == 0 for worker in workers)
    assert _digest(fleet) == _digest(single)


def test_cluster_worker_reports_unreachable_coordinator(capsys):
    port = _free_port()
    rc = main(
        [
            "cluster", "worker",
            "--connect", f"127.0.0.1:{port}",
            "--connect-attempts", "1",
            "--connect-backoff", "0.01",
        ]
    )
    assert rc == 2  # ClusterError -> `error: ...` + exit 2
    assert f"127.0.0.1:{port}" in capsys.readouterr().err


@pytest.mark.parametrize("text", ["localhost", "host:NaN", ":9", "h:70000"])
def test_malformed_hostport_is_rejected(text):
    from repro.cli import _parse_hostport

    with pytest.raises(ClusterError):
        _parse_hostport(text)


def test_nodes_flag_rejects_negative():
    with pytest.raises(SystemExit):
        main(["campaign", "run", "--store", "x", "--nodes", "-1"])
