"""Distributed fleet: parity, stealing, node death, coordinator crash.

The contract under test is the determinism invariant: ligand ``i`` docks
with seed ``campaign_seed + i`` on whichever node holds its lease, so the
science rows (and their :meth:`CampaignStore.science_digest`) are bitwise
identical across node counts, shard assignments, SIGKILLed workers, and
crash-resume — the same single-node store every time.
"""

import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.campaign import CampaignRunner, SyntheticSource
from repro.campaign.store import CampaignStore
from repro.cluster import ClusterCampaign, ClusterConfig
from repro.errors import ClusterError
from repro.metaheuristics.presets import make_preset
from repro.molecules.synthetic import generate_receptor
from repro.scoring.lennard_jones import LennardJonesScoring

N_LIGANDS = 16


def make_runner(store_path, *, nodes=0, cluster=None, progress=None, **overrides):
    """One campaign definition shared by every test (same science rows)."""
    kwargs = dict(
        store_path=str(store_path),
        n_spots=2,
        metaheuristic="M1",
        seed=42,
        workload_scale=0.04,
        shard_size=2,
        node=None,
        max_attempts=1,
        raise_on_failure=True,
        nodes=nodes,
        cluster=cluster,
        progress=progress,
    )
    kwargs.update(overrides)
    return CampaignRunner(
        generate_receptor(80, seed=5),
        SyntheticSource(N_LIGANDS, atoms_range=(8, 14), seed=52),
        **kwargs,
    )


def completed_digest(path):
    with CampaignStore.open(path) as store:
        assert store.is_complete()
        counts = store.counts()
        assert counts["done"] == N_LIGANDS and counts["failed"] == 0
        return store.science_digest()


@pytest.fixture(scope="module")
def baseline_digest(tmp_path_factory):
    """The single-node store fingerprint every fleet run must reproduce."""
    path = tmp_path_factory.mktemp("baseline") / "c.sqlite"
    with make_runner(path).run():
        pass
    return completed_digest(path)


def test_two_node_fleet_matches_single_node_bitwise(tmp_path, baseline_digest):
    seen = []
    runner = make_runner(tmp_path / "c.sqlite", nodes=2, progress=seen.append)
    with runner.run():
        pass
    assert completed_digest(tmp_path / "c.sqlite") == baseline_digest
    summary = runner.fleet.summary
    assert summary["nodes"] == 2
    assert summary["node_deaths"] == 0
    assert summary["shards"] == N_LIGANDS // 2
    # Progress snapshots carry the per-node fleet table (ClusterProgress).
    assert seen, "fleet emitted no progress"
    table = seen[-1].nodes
    assert {row["node"] for row in table} == {0, 1}
    assert sum(row["done"] for row in table) == N_LIGANDS


def test_skewed_probe_weights_trigger_stealing(tmp_path, baseline_digest):
    # Node 1 reports a 4x slower probe, so Eq. 1 hands it a quarter of the
    # shards — but both nodes actually dock at the same (service-limited)
    # rate, so node 1 drains early and steals from node 0's queue.
    cluster = ClusterConfig(
        probe_seconds_override=((0, 1.0), (1, 4.0)),
        service_time_s=0.05,
        heartbeat_interval_s=0.1,
    )
    runner = make_runner(tmp_path / "c.sqlite", nodes=2, cluster=cluster)
    with runner.run():
        pass
    assert completed_digest(tmp_path / "c.sqlite") == baseline_digest
    assert runner.fleet.summary["steals"] >= 1


def test_sigkilled_worker_node_recovers_bitwise(tmp_path, baseline_digest):
    cluster = ClusterConfig(
        heartbeat_interval_s=0.1,
        heartbeat_timeout_s=1.0,
        service_time_s=0.2,  # hard floor: 8 ligands/node * 0.2s > kill time
    )
    runner = make_runner(tmp_path / "c.sqlite", nodes=2, cluster=cluster)

    def kill_one_worker():
        time.sleep(1.0)
        fleet = runner.fleet
        if fleet is not None and fleet.processes:
            os.kill(fleet.processes[0].pid, signal.SIGKILL)

    killer = threading.Thread(target=kill_one_worker, daemon=True)
    killer.start()
    with runner.run():
        pass
    killer.join()
    assert completed_digest(tmp_path / "c.sqlite") == baseline_digest
    summary = runner.fleet.summary
    assert summary["node_deaths"] >= 1
    assert summary["recovery_seconds"] is not None


def test_shutdown_collects_byes_without_stalling(tmp_path, baseline_digest):
    # Regression: a handler thread that bails on its idle tick once the
    # fleet starts closing strands the worker's in-flight bye, and
    # _shutdown_fleet then waits the full message timeout (30 s). The
    # service sleep delays each bye past several 0.1 s idle ticks, which
    # made the stall deterministic before the fix.
    cluster = ClusterConfig(service_time_s=0.1, heartbeat_interval_s=0.1)
    runner = make_runner(tmp_path / "c.sqlite", nodes=2, cluster=cluster)
    t0 = time.monotonic()
    with runner.run():
        pass
    wall = time.monotonic() - t0
    assert completed_digest(tmp_path / "c.sqlite") == baseline_digest
    assert wall < 15.0, f"fleet shutdown stalled ({wall:.1f}s)"


def _run_fleet_campaign(store_path):
    """Child-process entry: a 2-node campaign slow enough to kill mid-run."""
    cluster = ClusterConfig(service_time_s=0.25, heartbeat_interval_s=0.1)
    with make_runner(store_path, nodes=2, cluster=cluster).run():
        pass


def test_sigkilled_coordinator_resumes_bitwise(tmp_path, baseline_digest):
    path = tmp_path / "c.sqlite"
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(target=_run_fleet_campaign, args=(str(path),))
    child.start()
    # Wait for real progress, then kill the whole coordinator process.
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            with CampaignStore.open(path) as store:
                if store.counts()["done"] >= 2:
                    break
        except Exception:
            pass
        time.sleep(0.1)
    else:
        pytest.fail("campaign never made progress before the kill")
    os.kill(child.pid, signal.SIGKILL)
    child.join(timeout=10.0)

    with CampaignStore.open(path) as store:
        assert not store.is_complete()
        assert store.counts()["done"] < N_LIGANDS
    # `campaign resume` path: same config, fresh fleet, journal replay.
    runner = make_runner(
        path, nodes=2, cluster=ClusterConfig(heartbeat_interval_s=0.1)
    )
    with runner.resume():
        pass
    assert completed_digest(path) == baseline_digest


def test_custom_metaheuristic_cannot_cross_node_boundary(tmp_path):
    runner = make_runner(
        tmp_path / "c.sqlite", metaheuristic=make_preset("M1", 0.04)
    )
    with pytest.raises(ClusterError, match="MetaheuristicSpec"):
        ClusterCampaign(runner, nodes=2)


def test_custom_scoring_cannot_cross_node_boundary(tmp_path):
    class TweakedScoring(LennardJonesScoring):
        pass

    runner = make_runner(tmp_path / "c.sqlite", scoring=TweakedScoring())
    with pytest.raises(ClusterError):
        ClusterCampaign(runner, nodes=2)


def test_custom_node_spec_cannot_cross_node_boundary(tmp_path):
    from repro.hardware.node import custom_node

    runner = make_runner(
        tmp_path / "c.sqlite",
        node=custom_node("franken", "Xeon E5-2620", 1, ["Tesla K40c"]),
    )
    with pytest.raises(ClusterError, match="jupiter/hertz"):
        ClusterCampaign(runner, nodes=2)


def test_fleet_needs_at_least_one_node(tmp_path):
    runner = make_runner(tmp_path / "c.sqlite")
    with pytest.raises(ClusterError, match="nodes >= 1"):
        ClusterCampaign(runner, nodes=0)
