"""Fleet observability: trace lanes, flight dumps, and doctor after a SIGKILL.

Satellite coverage for the tracing tentpole: a 2-node fleet run with one
SIGKILLed worker must still export a merged Chrome trace whose per-node
lanes include the killed node (its spans arrive via heartbeat telemetry,
merged when the coordinator declares it dead), with no orphan span ids and
cross-node ligand-lifecycle flow events; the coordinator must leave a
readable ``*.flight`` dump recording the death; and ``repro-vs doctor``
must name the dead node.
"""

import os
import signal
import threading
import time

from repro import observability as obs
from repro.campaign import CampaignRunner, SyntheticSource
from repro.campaign.store import CampaignStore
from repro.cluster import ClusterConfig
from repro.molecules.synthetic import generate_receptor
from repro.observability import diagnose_campaign
from repro.observability.flight import flight_dir, read_flight_dir, reset_flight
from repro.observability.trace import snapshot_to_trace_events

N_LIGANDS = 16


def make_runner(store_path, *, nodes=0, cluster=None, **overrides):
    kwargs = dict(
        store_path=str(store_path),
        n_spots=2,
        metaheuristic="M1",
        seed=42,
        workload_scale=0.04,
        shard_size=2,
        node=None,
        max_attempts=1,
        raise_on_failure=True,
        nodes=nodes,
        cluster=cluster,
    )
    kwargs.update(overrides)
    return CampaignRunner(
        generate_receptor(80, seed=5),
        SyntheticSource(N_LIGANDS, atoms_range=(8, 14), seed=52),
        **kwargs,
    )


def test_sigkilled_fleet_trace_flight_and_doctor(tmp_path):
    obs.reset()
    reset_flight("coordinator")
    path = tmp_path / "c.sqlite"
    cluster = ClusterConfig(
        heartbeat_interval_s=0.1,
        heartbeat_timeout_s=1.0,
        service_time_s=0.2,  # hard floor so the kill lands mid-campaign
    )
    runner = make_runner(path, nodes=2, cluster=cluster)

    def kill_one_worker():
        time.sleep(1.0)
        fleet = runner.fleet
        if fleet is not None and fleet.processes:
            os.kill(fleet.processes[0].pid, signal.SIGKILL)

    killer = threading.Thread(target=kill_one_worker, daemon=True)
    killer.start()
    with runner.run():
        pass
    killer.join()

    with CampaignStore.open(path) as store:
        assert store.is_complete()
        assert store.counts()["done"] == N_LIGANDS
    summary = runner.fleet.summary
    assert summary["node_deaths"] >= 1

    # ---- flight dumps: the coordinator's black box records the death ----
    dumps = read_flight_dir(flight_dir(path))
    readable = [d for d in dumps if "events" in d]
    assert readable, f"no readable flight dumps in {flight_dir(path)}"
    coord = next(
        d for d in readable if (d.get("header") or {}).get("role") == "coordinator"
    )
    assert not coord["torn"]
    kinds = {e["kind"] for e in coord["events"]}
    assert "fleet.start" in kinds
    assert "lease.grant" in kinds
    deaths = [e for e in coord["events"] if e["kind"] == "node.dead"]
    assert deaths, "coordinator flight dump recorded no node.dead event"
    dead_node = deaths[0]["node"]
    assert deaths[0]["reclaimed"], "death event lists no reclaimed leases"

    # ---- merged trace: per-node lanes survive the SIGKILL ----
    snap = obs.snapshot()
    trace = snapshot_to_trace_events(snap)
    events = trace["traceEvents"]
    lane_names = {
        e["args"]["name"] for e in events if e.get("name") == "thread_name"
    }
    assert any(name.startswith("node 0") for name in lane_names), lane_names
    assert any(name.startswith("node 1") for name in lane_names), lane_names
    # The killed node's lane specifically: its spans rode in on heartbeat
    # telemetry and were merged at death detection.
    assert any(
        name.startswith(f"node {dead_node}") for name in lane_names
    ), f"killed node {dead_node} has no lane in {lane_names}"

    # No orphan span ids: every parent reference resolves post-merge.
    span_ids = {s["id"] for s in snap["spans"]}
    for span in snap["spans"]:
        parent = span.get("parent")
        assert parent is None or parent in span_ids, span

    # Cross-node ligand lifecycle: dock->commit flow arrows exist and pair.
    assert trace["otherData"]["lifecycle_flows"] >= 1
    starts = [e for e in events if e.get("cat") == "lifecycle" and e["ph"] == "s"]
    finishes = [e for e in events if e.get("cat") == "lifecycle" and e["ph"] == "f"]
    assert len(starts) == len(finishes) == trace["otherData"]["lifecycle_flows"]
    assert {e["id"] for e in starts} == {e["id"] for e in finishes}
    for flow in finishes:
        assert flow["bp"] == "e"

    # Commit spans on the coordinator carry the measured wire time.
    commits = [s for s in snap["spans"] if s["name"] == "cluster.ligand.commit"]
    assert commits
    assert any(s["tags"].get("wire_s") is not None for s in commits)

    # ---- doctor: names the dead node with evidence ----
    report = diagnose_campaign(path)
    text = report.to_text()
    assert f"node {dead_node} died" in text
    assert report.verdict in ("warn", "bad")
    dead_section = next(s for s in report.sections if s.title == "dead nodes")
    assert dead_section.verdict == "bad"
    diagnosis = next(s for s in report.sections if s.title == "diagnosis")
    assert any("reclaimed and the campaign completed" in line
               for line in diagnosis.lines)


def test_clean_fleet_run_dumps_worker_flights(tmp_path):
    obs.reset()
    reset_flight("coordinator")
    path = tmp_path / "c.sqlite"
    runner = make_runner(
        path, nodes=2, cluster=ClusterConfig(heartbeat_interval_s=0.1)
    )
    with runner.run():
        pass
    roles = {
        (d.get("header") or {}).get("role")
        for d in read_flight_dir(flight_dir(path))
        if "events" in d
    }
    # Clean exits dump all three black boxes: coordinator + both workers.
    assert "coordinator" in roles
    assert "worker-node0" in roles and "worker-node1" in roles

    # Worker dumps carry the per-node event vocabulary.
    dumps = read_flight_dir(flight_dir(path))
    worker = next(
        d for d in dumps
        if (d.get("header") or {}).get("role") == "worker-node0"
    )
    kinds = {e["kind"] for e in worker["events"]}
    assert "probe" in kinds
    assert "lease.accept" in kinds
    assert "shutdown.recv" in kinds


def test_single_node_runner_dumps_flight(tmp_path):
    obs.reset()
    reset_flight("runner")
    path = tmp_path / "c.sqlite"
    with make_runner(path).run():
        pass
    dumps = read_flight_dir(flight_dir(path))
    runner_dump = next(d for d in dumps if "events" in d)
    kinds = {e["kind"] for e in runner_dump["events"]}
    assert "shard.finish" in kinds
    # The runner also tracks store growth at shard boundaries.
    snap = obs.snapshot()
    disk = [g for g in snap["gauges"] if g["name"] == "store.disk.bytes"]
    assert disk and disk[0]["value"] > 0
