"""Wire protocol: framing, timeouts, death detection, payload round-trips."""

import socket
import struct

import numpy as np
import pytest

from repro.cluster import (
    MAX_MESSAGE_BYTES,
    Channel,
    connect,
    ligand_from_payload,
    ligand_to_payload,
    receptor_from_payload,
    molecule_to_payload,
    recv_message,
    send_message,
)
from repro.errors import ClusterError, ConnectionClosed, ProtocolError
from repro.molecules.synthetic import generate_ligand, generate_receptor


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def test_message_round_trip(pair):
    a, b = pair
    message = {
        "kind": "result",
        "node": 3,
        "ordinal": 17,
        "score": -12.625,
        "ok": True,
    }
    send_message(a, message, timeout=5.0)
    assert recv_message(b, timeout=5.0) == message


def test_idle_timeout_returns_none_at_frame_boundary(pair):
    _, b = pair
    assert recv_message(b, timeout=5.0, idle_timeout=0.05) is None


def test_eof_at_boundary_is_connection_closed(pair):
    a, b = pair
    a.close()
    with pytest.raises(ConnectionClosed):
        recv_message(b, timeout=1.0)


def test_mid_frame_stall_is_protocol_error(pair):
    a, b = pair
    a.sendall(b"\x00\x00")  # half a header, then silence
    with pytest.raises(ProtocolError, match="timed out"):
        recv_message(b, timeout=0.2)


def test_mid_frame_eof_is_unrecoverable(pair):
    a, b = pair
    a.sendall(struct.pack(">I", 100) + b'{"kind"')  # frame starts, peer dies
    a.close()
    with pytest.raises((ProtocolError, ConnectionClosed)):
        recv_message(b, timeout=1.0)


def test_oversized_frame_rejected_without_reading_it(pair):
    a, b = pair
    a.sendall(struct.pack(">I", MAX_MESSAGE_BYTES + 1))
    with pytest.raises(ProtocolError, match="exceeds"):
        recv_message(b, timeout=1.0)


def test_unknown_kind_rejected_on_both_sides(pair):
    a, b = pair
    with pytest.raises(ProtocolError, match="unknown kind"):
        send_message(a, {"kind": "gossip"}, timeout=1.0)
    payload = b'{"kind": "gossip"}'
    a.sendall(struct.pack(">I", len(payload)) + payload)
    with pytest.raises(ProtocolError, match="not a known message"):
        recv_message(b, timeout=1.0)


def test_undecodable_frame_is_protocol_error(pair):
    a, b = pair
    payload = b"\xff\xfe not json"
    a.sendall(struct.pack(">I", len(payload)) + payload)
    with pytest.raises(ProtocolError, match="undecodable"):
        recv_message(b, timeout=1.0)


def test_channel_send_recv_and_close(pair):
    a, b = pair
    ch_a, ch_b = Channel(a, timeout=5.0), Channel(b, timeout=5.0)
    ch_a.send({"kind": "heartbeat", "node": 0})
    assert ch_b.recv()["kind"] == "heartbeat"
    ch_a.close()
    with pytest.raises(ConnectionClosed):
        ch_a.send({"kind": "heartbeat", "node": 0})
    with pytest.raises(ConnectionClosed):  # peer sees the shutdown instantly
        ch_b.recv()


def test_connect_failure_names_the_address():
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))  # bound but never listening -> refused
    port = listener.getsockname()[1]
    listener.close()
    with pytest.raises(ClusterError, match=f"127.0.0.1:{port}"):
        connect("127.0.0.1", port, attempts=2, backoff_s=0.01)


def test_ligand_payload_round_trip_is_bitwise():
    ligand = generate_ligand(23, seed=91, title="LIG(91) αβ")
    back = ligand_from_payload(ligand_to_payload(ligand))
    assert back.title == ligand.title
    assert list(back.elements) == list(ligand.elements)
    assert np.array_equal(back.coords, ligand.coords)  # exact, not approx
    assert np.array_equal(back.charges, ligand.charges)


def test_receptor_payload_round_trip_is_bitwise():
    receptor = generate_receptor(60, seed=3, title="R")
    back = receptor_from_payload(molecule_to_payload(receptor))
    assert np.array_equal(back.coords, receptor.coords)
    assert np.array_equal(back.charges, receptor.charges)


def test_malformed_molecule_payload_is_protocol_error():
    with pytest.raises(ProtocolError, match="malformed molecule payload"):
        ligand_from_payload({"coords": [[0.0, 0.0, 0.0]]})  # missing keys
