"""Eq. 1 node shares and the contiguous shard partition built from them."""

import math

import pytest

from repro.cluster import node_shares, partition_shards
from repro.errors import ClusterError


def test_equal_probes_give_equal_weights():
    shares = node_shares({0: 0.5, 1: 0.5, 2: 0.5})
    assert shares == pytest.approx({0: 1 / 3, 1: 1 / 3, 2: 1 / 3})


def test_twice_as_slow_gets_half_the_weight():
    # Eq. 1: Percent_i = t_i / t_slowest, share ∝ 1 / Percent_i.
    shares = node_shares({0: 1.0, 1: 2.0})
    assert shares[0] == pytest.approx(2 * shares[1])
    assert sum(shares.values()) == pytest.approx(1.0)


def test_bad_probe_falls_back_to_slowest_measured():
    shares = node_shares({0: float("nan"), 1: 2.0})
    assert shares == pytest.approx({0: 0.5, 1: 0.5})
    shares = node_shares({0: -1.0, 1: 1.0, 2: 2.0})
    assert shares[0] == pytest.approx(shares[2])  # misfired node = slowest
    assert shares[1] == pytest.approx(2 * shares[2])


def test_all_bad_probes_give_equal_shares():
    shares = node_shares({0: math.inf, 1: 0.0})
    assert shares == pytest.approx({0: 0.5, 1: 0.5})


def test_no_probes_is_an_error():
    with pytest.raises(ClusterError, match="at least one probe"):
        node_shares({})


def test_partition_is_contiguous_and_conserving():
    shard_ids = list(range(9))
    queues = partition_shards(shard_ids, {0: 2.0, 1: 1.0})
    assert sorted(list(queues[0]) + list(queues[1])) == shard_ids
    assert list(queues[0]) == shard_ids[: len(queues[0])]  # contiguous runs
    assert list(queues[1]) == shard_ids[len(queues[0]) :]
    assert len(queues[0]) == 6 and len(queues[1]) == 3


def test_partition_with_degenerate_weights_splits_evenly():
    queues = partition_shards(list(range(4)), {0: 0.0, 1: 0.0})
    assert len(queues[0]) == 2 and len(queues[1]) == 2


def test_partition_without_nodes_is_an_error():
    with pytest.raises(ClusterError, match="at least one node"):
        partition_shards([0, 1], {})
