"""Shared fixtures: one small synthetic complex reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.molecules.spots import find_spots
from repro.molecules.synthetic import generate_ligand, generate_receptor
from repro.scoring.cutoff import CutoffLennardJonesScoring
from repro.scoring.lennard_jones import LennardJonesScoring


@pytest.fixture(scope="session")
def receptor():
    """A 300-atom globular receptor (session-cached; treat as immutable)."""
    return generate_receptor(300, seed=11, title="test receptor")


@pytest.fixture(scope="session")
def ligand():
    """An 18-atom drug-like ligand (session-cached; treat as immutable)."""
    return generate_ligand(18, seed=12, title="test ligand")


@pytest.fixture(scope="session")
def spots(receptor):
    """Four spots on the test receptor."""
    return find_spots(receptor, 4)


@pytest.fixture(scope="session")
def dense_scorer(receptor, ligand):
    """Exact double-precision dense LJ scorer."""
    return LennardJonesScoring().bind(receptor, ligand)


@pytest.fixture(scope="session")
def fast_scorer(receptor, ligand):
    """The engine's fast path: float32 cutoff LJ."""
    return CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)


@pytest.fixture()
def pose_batch(spots, rng):
    """A spot-anchored batch of 12 random poses (translations, quaternions)."""
    from repro.molecules.transforms import random_quaternion

    centers = np.stack([s.center for s in spots])
    translations = np.repeat(centers, 3, axis=0) + rng.normal(0, 1.0, (12, 3))
    quaternions = random_quaternion(rng, 12)
    return translations, quaternions
