"""Barrier-free (per-spot asynchronous) execution tests."""

import numpy as np
import pytest

from repro.engine.async_mode import partition_spots_by_weight, simulate_async_trace
from repro.engine.executor import simulate_gpu_trace
from repro.engine.scheduler import StaticProportionalScheduler
from repro.errors import SchedulingError
from repro.experiments.trace import analytic_trace
from repro.hardware.node import hertz, jupiter


def _trace(n_spots=64):
    return analytic_trace("M2", n_spots, 3264, 45)


def test_partition_spots_conserves_and_orders():
    shares = partition_spots_by_weight(list(range(10)), np.array([3.0, 1.0]))
    assert len(shares) == 2
    assert shares[0] + shares[1] == list(range(10))
    assert len(shares[0]) > len(shares[1])
    with pytest.raises(SchedulingError):
        partition_spots_by_weight([], np.array([1.0]))


def test_async_timing_structure():
    node = hertz()
    timing = simulate_async_trace(_trace(), node)
    assert timing.scoring_s == pytest.approx(timing.device_busy_s.max())
    assert timing.host_s == 0.0
    assert timing.n_conformations == sum(r.n_conformations for r in _trace())


def test_async_validation():
    node = hertz()
    with pytest.raises(SchedulingError):
        simulate_async_trace([], node)
    with pytest.raises(SchedulingError):
        simulate_async_trace(_trace(), node.with_gpus([]))
    with pytest.raises(SchedulingError):
        simulate_async_trace(_trace(), node, weights=np.ones(5))


def test_async_beats_sync_barrier_on_hertz():
    """Removing the per-launch barrier cannot be slower than the
    synchronised proportional split at the same (ideal) weights."""
    node = hertz()
    trace = _trace()
    weights = np.array([g.pairs_per_sec for g in node.gpus], dtype=float)
    sync = simulate_gpu_trace(
        trace, node, StaticProportionalScheduler(weights / weights.sum())
    )
    async_timing = simulate_async_trace(trace, node, weights)
    # Compare total time including the sync run's serial host overhead.
    assert async_timing.total_s <= sync.total_s * 1.05


def test_async_balance_limited_by_spot_granularity():
    """With very few spots, one device may idle — spot granularity bounds
    the balance of the independent-executions mode."""
    node = hertz()
    coarse = simulate_async_trace(analytic_trace("M2", 3, 3264, 45), node)
    fine = simulate_async_trace(analytic_trace("M2", 96, 3264, 45), node)
    assert fine.balance >= coarse.balance - 1e-9


def test_async_jupiter_uses_all_devices():
    node = jupiter()
    timing = simulate_async_trace(_trace(96), node)
    assert np.all(timing.device_busy_s > 0)
    assert timing.balance > 0.9
