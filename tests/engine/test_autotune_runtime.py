"""Runtime integration of the batched kernel and the autotuner.

The acceptance matrix for the determinism invariant: the batched scorer —
selected by hand or by a calibration table — produces bitwise-identical
scores across serial, static/dynamic multi-worker, and persistent/fresh
pool execution, because every path cuts pose blocks on the same absolute
chunk grid.
"""

import json
import math

import numpy as np
import pytest

from repro import observability as obs
from repro.engine.host_runtime import (
    SharedArrayStage,
    rebuild_scorer,
    stage_scorer,
)
from repro.molecules.synthetic import generate_ligand, generate_receptor
from repro.scoring.autotune import CalibrationCell, CalibrationTable
from repro.scoring.batched import BatchedLJScoring, BoundBatchedLJ
from repro.scoring.lennard_jones import LennardJonesScoring
from repro.vs.screening import screen


# ----------------------------------------------------------------------
# Staging: the tuned (variant, chunk_size) rides the spec to workers
# ----------------------------------------------------------------------
def test_stage_rebuild_batched_round_trip_bitwise(receptor, ligand, pose_batch):
    scorer = BatchedLJScoring(chunk_size=5).bind(receptor, ligand)
    t, q = pose_batch
    stage = SharedArrayStage()
    try:
        spec = stage_scorer(scorer, stage)
        assert spec["kind"] == "batched", "batched scorers stage structurally"
        assert spec["chunk_size"] == 5, "the tuned chunk size rides the spec"
        rebuilt = rebuild_scorer(spec)
        assert isinstance(rebuilt, BoundBatchedLJ)
        assert rebuilt.chunk_size == 5
        assert np.array_equal(rebuilt.score(t, q), scorer.score(t, q))
    finally:
        stage.close()


# ----------------------------------------------------------------------
# Parity matrix: batched scorer through the full screen() stack
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def parity_complexes():
    receptor = generate_receptor(150, seed=5, title="autotune parity receptor")
    ligands = [generate_ligand(8 + i, seed=40 + i) for i in range(3)]
    return receptor, ligands


def _entries(report):
    return [
        (e.ligand_title, e.best_score, e.best_spot, e.evaluations)
        for e in report.entries
    ]


def _run_batched(receptor, ligands, workers, mode, persistent):
    report = screen(
        receptor,
        ligands,
        n_spots=2,
        metaheuristic="M1",
        scoring=BatchedLJScoring(),
        seed=9,
        workload_scale=0.02,
        host_workers=workers,
        parallel_mode=mode,
        persistent_pool=persistent,
    )
    return _entries(report)


@pytest.fixture(scope="module")
def serial_batched_entries(parity_complexes):
    receptor, ligands = parity_complexes
    return _run_batched(receptor, ligands, 0, "static", True)


@pytest.mark.parametrize(
    "workers,mode,persistent",
    [
        (1, "static", True),
        (4, "static", True),
        (4, "dynamic", True),
        (4, "static", False),
        (4, "dynamic", False),
    ],
)
def test_batched_parallel_matches_serial_bitwise(
    parity_complexes, serial_batched_entries, workers, mode, persistent
):
    receptor, ligands = parity_complexes
    got = _run_batched(receptor, ligands, workers, mode, persistent)
    assert len(got) == len(serial_batched_entries) == len(ligands)
    for a, b in zip(got, serial_batched_entries):
        assert a[0] == b[0] and a[2] == b[2] and a[3] == b[3]
        assert math.isfinite(a[1])
        assert a[1] == b[1], (
            f"batched score drifted: {a} vs serial {b} "
            f"(workers={workers} mode={mode} persistent={persistent})"
        )


# ----------------------------------------------------------------------
# Autotuned screening: fixed table ⇒ bitwise-stable scores in every mode
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def calibration_path(tmp_path_factory):
    """A hand-built table whose exact-family winner is the batched kernel.

    Cells are recorded at worker_count=0 only (like the default sweep), so
    every execution mode nearest-matches the *same* cells and receives the
    same ``(variant, chunk_size)`` — the precondition for cross-mode
    bitwise equality.
    """
    table = CalibrationTable(
        [
            CalibrationCell(150, 10, 0, "exact", "lennard-jones", 256, 1000.0),
            CalibrationCell(
                150, 10, 0, "exact", "lennard-jones-batched", 64, 5000.0
            ),
        ]
    )
    path = tmp_path_factory.mktemp("autotune") / "calibration.json"
    table.save(path)
    return str(path)


def _run_autotuned(receptor, ligands, workers, mode, calibration_path):
    obs.reset()
    report = screen(
        receptor,
        ligands,
        n_spots=2,
        metaheuristic="M1",
        scoring=LennardJonesScoring(),
        seed=9,
        workload_scale=0.02,
        host_workers=workers,
        parallel_mode=mode,
        autotune=True,
        calibration_file=calibration_path,
    )
    return _entries(report)


def test_autotuned_screen_is_bitwise_stable_across_modes(
    parity_complexes, calibration_path
):
    receptor, ligands = parity_complexes
    serial = _run_autotuned(receptor, ligands, 0, "static", calibration_path)
    counters = {
        (c["name"], tuple(sorted(c["tags"].items()))): c["value"]
        for c in obs.snapshot()["counters"]
    }
    picked = counters.get(
        ("autotune.selections", (("variant", "lennard-jones-batched"),))
    )
    assert picked and picked >= len(ligands), (
        "the selector must have picked the batched kernel from the table"
    )
    for workers, mode in [(1, "static"), (4, "static"), (4, "dynamic")]:
        got = _run_autotuned(receptor, ligands, workers, mode, calibration_path)
        assert got == serial, f"autotuned scores drifted at {workers}/{mode}"


def test_autotuned_screen_matches_untuned_scores(parity_complexes, calibration_path):
    """Autotuning changes the kernel, not the science: the selected batched
    kernel agrees with the requested dense scorer to GEMM round-off, and
    spot/evaluation bookkeeping is untouched."""
    receptor, ligands = parity_complexes
    tuned = _run_autotuned(receptor, ligands, 0, "static", calibration_path)
    plain = _entries(
        screen(
            receptor,
            ligands,
            n_spots=2,
            metaheuristic="M1",
            scoring=LennardJonesScoring(),
            seed=9,
            workload_scale=0.02,
        )
    )
    for a, b in zip(tuned, plain):
        assert a[0] == b[0] and a[2] == b[2] and a[3] == b[3]
        assert a[1] == pytest.approx(b[1], rel=1e-9)


def test_campaign_config_hash_covers_calibration(
    parity_complexes, calibration_path, tmp_path
):
    """Two different tables ⇒ two different campaign config hashes, and the
    same table twice ⇒ the same hash (resume compatibility)."""
    from repro.campaign.library import IterableSource
    from repro.campaign.runner import CampaignRunner

    receptor, ligands = parity_complexes

    def runner_with(path):
        return CampaignRunner(
            receptor,
            IterableSource(iter(ligands)),
            store_path=":memory:",
            n_spots=2,
            metaheuristic="M1",
            scoring=LennardJonesScoring(),
            workload_scale=0.02,
            autotune=True,
            calibration_file=path,
        )

    base_hash = runner_with(calibration_path).config_hash
    assert runner_with(calibration_path).config_hash == base_hash
    doc = json.loads(open(calibration_path).read())
    doc["cells"][0]["poses_per_s"] = 123.0
    other = tmp_path / "other.json"
    other.write_text(json.dumps(doc))
    assert runner_with(str(other)).config_hash != base_hash
    # And an untuned campaign keeps its pre-autotune hash shape: the keys
    # are omitted entirely, not recorded as nulls.
    untuned = CampaignRunner(
        receptor,
        IterableSource(iter(ligands)),
        store_path=":memory:",
        n_spots=2,
        metaheuristic="M1",
        scoring=LennardJonesScoring(),
        workload_scale=0.02,
    )
    assert "autotune" not in untuned.config
    assert "calibration_hash" not in untuned.config
