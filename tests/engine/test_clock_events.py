"""Virtual clock and event-loop tests."""

import pytest

from repro.engine.clock import VirtualClock
from repro.engine.events import EventLoop
from repro.errors import SimulationError


# ----------------------------------------------------------------------
# VirtualClock
# ----------------------------------------------------------------------
def test_clock_advances():
    clock = VirtualClock()
    assert clock.now == 0.0
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now == 2.0


def test_clock_advance_to():
    clock = VirtualClock(1.0)
    clock.advance_to(3.0)
    assert clock.now == 3.0
    with pytest.raises(SimulationError):
        clock.advance_to(2.0)


def test_clock_rejects_negative_and_nan():
    clock = VirtualClock()
    with pytest.raises(SimulationError):
        clock.advance(-1.0)
    with pytest.raises(SimulationError):
        clock.advance(float("nan"))
    with pytest.raises(SimulationError):
        VirtualClock(-1.0)


def test_clock_reset():
    clock = VirtualClock()
    clock.advance(5.0)
    clock.reset()
    assert clock.now == 0.0


# ----------------------------------------------------------------------
# EventLoop
# ----------------------------------------------------------------------
def test_events_run_in_time_order():
    loop = EventLoop()
    order = []
    loop.schedule(3.0, lambda _l: order.append("c"))
    loop.schedule(1.0, lambda _l: order.append("a"))
    loop.schedule(2.0, lambda _l: order.append("b"))
    end = loop.run()
    assert order == ["a", "b", "c"]
    assert end == 3.0
    assert loop.processed == 3


def test_ties_break_by_schedule_order():
    loop = EventLoop()
    order = []
    loop.schedule(1.0, lambda _l: order.append("first"))
    loop.schedule(1.0, lambda _l: order.append("second"))
    loop.run()
    assert order == ["first", "second"]


def test_callbacks_can_schedule_more_events():
    loop = EventLoop()
    hits = []

    def chain(l: EventLoop) -> None:
        hits.append(l.now)
        if len(hits) < 4:
            l.schedule(1.0, chain)

    loop.schedule(0.5, chain)
    loop.run()
    assert hits == [0.5, 1.5, 2.5, 3.5]


def test_cancel_event():
    loop = EventLoop()
    hits = []
    event = loop.schedule(1.0, lambda _l: hits.append(1))
    loop.cancel(event)
    loop.run()
    assert hits == []


def test_run_until_leaves_future_events_queued():
    loop = EventLoop()
    hits = []
    loop.schedule(1.0, lambda _l: hits.append(1))
    loop.schedule(5.0, lambda _l: hits.append(5))
    loop.run(until=2.0)
    assert hits == [1]
    assert loop.now == 2.0
    loop.run()
    assert hits == [1, 5]


def test_schedule_validation():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.schedule(-1.0, lambda _l: None)
    loop.schedule(1.0, lambda _l: None)
    loop.run()
    with pytest.raises(SimulationError):
        loop.schedule_at(0.5, lambda _l: None)


def test_event_budget_guard():
    loop = EventLoop()

    def forever(l: EventLoop) -> None:
        l.schedule(0.1, forever)

    loop.schedule(0.0, forever)
    with pytest.raises(SimulationError, match="budget"):
        loop.run(max_events=100)
