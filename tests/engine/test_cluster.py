"""Multi-node cluster extension tests."""

import numpy as np
import pytest

from repro.engine.cluster import (
    ClusterSpec,
    Interconnect,
    simulate_cluster_run,
)
from repro.errors import SchedulingError
from repro.experiments.trace import analytic_trace
from repro.hardware.node import hertz, jupiter


def _trace():
    return analytic_trace("M1", n_spots=64, n_receptor_atoms=3264, n_ligand_atoms=45)


def _cluster(n_jupiters=1, n_hertzes=1):
    nodes = tuple([jupiter()] * n_jupiters + [hertz()] * n_hertzes)
    return ClusterSpec(name="testcluster", nodes=nodes)


def test_interconnect_costs():
    net = Interconnect(latency_s=1e-6, bandwidth_gbs=10.0)
    assert net.transfer_s(0) == pytest.approx(1e-6)
    assert net.transfer_s(1e9) == pytest.approx(1e-6 + 0.1)
    assert net.broadcast_s(1e6, 8) == pytest.approx(3 * net.transfer_s(1e6))
    with pytest.raises(SchedulingError):
        net.transfer_s(-1)
    with pytest.raises(SchedulingError):
        net.broadcast_s(1, 0)


def test_cluster_validation():
    with pytest.raises(SchedulingError):
        ClusterSpec(name="empty", nodes=())


def test_single_node_cluster_matches_node_time_plus_network():
    cluster = ClusterSpec(name="solo", nodes=(hertz(),))
    timing = simulate_cluster_run(cluster, _trace(), 64, structure_bytes=1e6)
    from repro.engine.executor import MultiGpuExecutor

    solo, _ = MultiGpuExecutor(hertz(), seed=0).replay(_trace(), "gpu-heterogeneous")
    assert timing.compute_s == pytest.approx(solo.total_s, rel=1e-6)
    assert timing.total_s > timing.compute_s  # collectives cost something
    assert timing.total_s - timing.compute_s < 0.01  # but not much


def test_two_nodes_faster_than_one():
    trace = _trace()
    one = simulate_cluster_run(_cluster(1, 0), trace, 64, 1e6)
    two = simulate_cluster_run(_cluster(1, 1), trace, 64, 1e6)
    assert two.total_s < one.total_s


def test_shares_proportional_to_node_throughput():
    cluster = _cluster(1, 1)
    timing = simulate_cluster_run(cluster, _trace(), 64, 1e6)
    throughputs = cluster.node_gpu_throughputs()
    assert timing.spot_shares.sum() == 64
    # Jupiter (6 GPUs) takes more spots than Hertz (2 GPUs).
    assert timing.spot_shares[0] > timing.spot_shares[1]
    ratio = timing.spot_shares[0] / timing.spot_shares[1]
    assert ratio == pytest.approx(throughputs[0] / throughputs[1], rel=0.15)


def test_cluster_balance_is_reasonable():
    timing = simulate_cluster_run(_cluster(1, 1), _trace(), 64, 1e6)
    assert timing.balance > 0.7


def test_scaling_efficiency_decays_gracefully():
    """4 identical nodes ≈ 4× one node on compute, modulo collectives."""
    trace = _trace()
    one = simulate_cluster_run(ClusterSpec(name="1", nodes=(hertz(),)), trace, 64, 1e6)
    four = simulate_cluster_run(
        ClusterSpec(name="4", nodes=(hertz(),) * 4), trace, 64, 1e6
    )
    speedup = one.total_s / four.total_s
    assert 2.5 < speedup <= 4.05


def test_openmp_mode_weights_by_cpu():
    cluster = _cluster(1, 1)
    timing = simulate_cluster_run(cluster, _trace(), 64, 1e6, mode="openmp")
    # Jupiter: 12 cores @ 2 GHz beats Hertz: 4 @ 3.1.
    assert timing.spot_shares[0] > timing.spot_shares[1]


def test_cluster_run_validation():
    cluster = _cluster()
    with pytest.raises(SchedulingError):
        simulate_cluster_run(cluster, [], 8, 1e6)
    with pytest.raises(SchedulingError):
        simulate_cluster_run(cluster, _trace(), 0, 1e6)
