"""Event-driven job-queue simulation tests, including failure injection."""

import numpy as np
import pytest

from repro.engine.device_worker import Job, SimulatedDevice, run_job_queue
from repro.engine.scheduler import DynamicSpotQueueScheduler
from repro.errors import SchedulingError
from repro.hardware.node import hertz
from repro.metaheuristics.evaluation import LaunchRecord
from repro.scoring.base import OPS_PER_LJ_PAIR

FLOPS = 3264 * 45 * OPS_PER_LJ_PAIR


def _jobs(n_spots=12, per_spot=500):
    return [Job(spot=i, count=per_spot, flops_per_pose=FLOPS) for i in range(n_spots)]


def _devices(fail_at=None):
    node = hertz()
    return [
        SimulatedDevice(index=i, gpu=g, fail_at=(fail_at or {}).get(i))
        for i, g in enumerate(node.gpus)
    ]


def test_queue_drains_all_jobs():
    jobs = _jobs()
    result = run_job_queue(jobs, _devices())
    assert len(result.assignments) == len(jobs)
    assert result.makespan_s > 0
    assert result.requeues == []


def test_fast_device_takes_more_jobs():
    result = run_job_queue(_jobs(n_spots=24), _devices())
    counts = np.bincount(list(result.assignments.values()), minlength=2)
    assert counts[0] > counts[1]  # K40c pulls more


def test_utilization_is_high_with_many_jobs():
    result = run_job_queue(_jobs(n_spots=48, per_spot=200), _devices())
    assert result.utilization.min() > 0.8


def test_queue_matches_closed_form_lpt_plan():
    """The event-driven pull queue and the closed-form LPT scheduler must
    agree on per-device totals (same job times, same tie-breaking)."""
    node = hertz()
    jobs = _jobs(n_spots=16, per_spot=300)
    queue_result = run_job_queue(jobs, _devices())
    record = LaunchRecord(
        n_conformations=sum(j.count for j in jobs),
        flops_per_pose=FLOPS,
        spot_counts={j.spot: j.count for j in jobs},
        n_receptor_atoms=3264,
    )
    plan = DynamicSpotQueueScheduler().plan(
        record, node.gpus, np.ones(2, dtype=bool)
    )
    queue_shares = np.zeros(2, dtype=int)
    for job in jobs:
        queue_shares[queue_result.assignments[job.spot]] += job.count
    np.testing.assert_array_equal(queue_shares, plan)


def test_device_failure_requeues_job():
    jobs = _jobs(n_spots=10, per_spot=500)
    healthy = run_job_queue(jobs, _devices())
    devices = _devices(fail_at={0: healthy.makespan_s * 0.3})
    result = run_job_queue(jobs, devices)
    assert len(result.requeues) >= 1
    assert len(result.assignments) == len(jobs)  # all work still done
    # Everything after the failure lands on the survivor.
    assert devices[0].failed
    assert result.makespan_s > healthy.makespan_s


def test_failure_at_zero_means_device_never_works():
    devices = _devices(fail_at={0: 0.0})
    result = run_job_queue(_jobs(n_spots=6), devices)
    assert all(d == 1 for d in result.assignments.values())


def test_all_devices_failing_raises():
    devices = _devices(fail_at={0: 0.0, 1: 0.0})
    with pytest.raises(SchedulingError, match="undrained"):
        run_job_queue(_jobs(n_spots=4), devices)


def test_empty_inputs_rejected():
    with pytest.raises(SchedulingError):
        run_job_queue([], _devices())
    with pytest.raises(SchedulingError):
        run_job_queue(_jobs(), [])


def test_job_validation():
    with pytest.raises(SchedulingError):
        Job(spot=0, count=0, flops_per_pose=FLOPS)
    with pytest.raises(SchedulingError):
        Job(spot=0, count=5, flops_per_pose=0.0)


def test_busy_time_bookkeeping():
    result = run_job_queue(_jobs(n_spots=20), _devices())
    assert result.busy_s.sum() > 0
    assert np.all(result.busy_s <= result.makespan_s + 1e-12)
