"""Executor tests: trace replay, mode semantics, equivalence, failures."""

import numpy as np
import pytest

from repro.engine.executor import (
    EXECUTION_MODES,
    MultiGpuExecutor,
    host_overhead_s,
    simulate_cpu_trace,
    simulate_gpu_trace,
)
from repro.engine.scheduler import StaticEqualScheduler
from repro.errors import SchedulingError
from repro.hardware.node import hertz, jupiter
from repro.hardware.perf_model import DEFAULT_PARAMS
from repro.metaheuristics.evaluation import LaunchRecord
from repro.metaheuristics.presets import make_preset
from repro.scoring.base import OPS_PER_LJ_PAIR

FLOPS = 3264 * 45 * OPS_PER_LJ_PAIR


def _trace(n_launches=5, poses=4096, spots=16):
    per = poses // spots
    return [
        LaunchRecord(
            n_conformations=poses,
            flops_per_pose=FLOPS,
            spot_counts={i: per for i in range(spots)},
            kind="population" if i % 2 == 0 else "improve",
            n_receptor_atoms=3264,
        )
        for i in range(n_launches)
    ]


def test_host_overhead_by_kind():
    pop = _trace(1)[0]
    imp = LaunchRecord(4096, FLOPS, {}, kind="improve", n_receptor_atoms=3264)
    assert host_overhead_s(pop, DEFAULT_PARAMS) > host_overhead_s(imp, DEFAULT_PARAMS)


def test_cpu_trace_time_and_bookkeeping():
    node = hertz()
    timing = simulate_cpu_trace(_trace(), node)
    assert timing.scoring_s > 0
    assert timing.n_launches == 5
    assert timing.n_conformations == 5 * 4096
    assert timing.total_s == pytest.approx(timing.scoring_s + timing.host_s)


def test_cpu_trace_requires_receptor_atoms():
    node = hertz()
    bad = [LaunchRecord(10, FLOPS, {})]
    with pytest.raises(SchedulingError, match="n_receptor_atoms"):
        simulate_cpu_trace(bad, node)


def test_gpu_trace_barrier_semantics():
    """Per-launch time is the slowest device's share (Algorithm 2 syncs)."""
    node = hertz()
    timing = simulate_gpu_trace(_trace(1), node, StaticEqualScheduler())
    assert timing.scoring_s == pytest.approx(timing.device_busy_s.max())
    # Equal split on unequal devices: the GTX 580 is the straggler.
    assert timing.device_busy_s[1] > timing.device_busy_s[0]


def test_gpu_trace_requires_gpus():
    node = hertz().with_gpus([])
    with pytest.raises(SchedulingError, match="no GPUs"):
        simulate_gpu_trace(_trace(1), node, StaticEqualScheduler())


def test_gpu_trace_with_failures_excludes_device():
    node = jupiter()
    healthy = simulate_gpu_trace(_trace(10), node, StaticEqualScheduler())
    failing = simulate_gpu_trace(
        _trace(10), node, StaticEqualScheduler(), failures={0: healthy.total_s * 0.3}
    )
    assert failing.total_s > healthy.total_s
    assert failing.device_busy_s[0] < healthy.device_busy_s[0]


def test_gpu_trace_all_failed_raises():
    node = hertz()
    with pytest.raises(SchedulingError, match="failed"):
        simulate_gpu_trace(
            _trace(3), node, StaticEqualScheduler(), failures={0: 0.0, 1: 0.0}
        )


def test_replay_modes(spots, fast_scorer):
    executor = MultiGpuExecutor(hertz(), seed=5)
    trace = _trace()
    times = {}
    for mode in EXECUTION_MODES:
        timing, name = executor.replay(trace, mode)
        times[mode] = timing.total_s
        assert timing.total_s > 0
    # GPU beats CPU at this workload size.
    assert times["openmp"] > times["gpu-homogeneous"]
    # Heterogeneous balancing beats the equal split on Hertz.
    assert times["gpu-heterogeneous"] < times["gpu-homogeneous"]
    # Dynamic scheduling also beats the equal split.
    assert times["gpu-dynamic"] < times["gpu-homogeneous"]


def test_replay_heterogeneous_includes_warmup_cost():
    executor = MultiGpuExecutor(hertz(), seed=5)
    timing, _ = executor.replay(_trace(), "gpu-heterogeneous")
    assert timing.warmup_s > 0
    timing_hom, _ = executor.replay(_trace(), "gpu-homogeneous")
    assert timing_hom.warmup_s == 0.0


def test_replay_validation():
    executor = MultiGpuExecutor(hertz())
    with pytest.raises(SchedulingError):
        executor.replay(_trace(), "gpu-quantum")
    with pytest.raises(SchedulingError):
        executor.replay([], "openmp")


def test_run_results_are_mode_invariant(spots, fast_scorer):
    """The core experimental-design property: the search outcome does not
    depend on which machine/mode timing is modelled."""
    executor = MultiGpuExecutor(hertz(), seed=1)
    spec = make_preset("M1", workload_scale=0.1)
    reports = {
        mode: executor.run(spec, spots, fast_scorer, mode, search_seed=9)
        for mode in EXECUTION_MODES
    }
    scores = {r.result.best.score for r in reports.values()}
    assert len(scores) == 1
    # But the timings differ.
    assert len({round(r.simulated_seconds, 9) for r in reports.values()}) > 1


def test_run_across_nodes_same_results(spots, fast_scorer):
    spec = make_preset("M1", workload_scale=0.1)
    a = MultiGpuExecutor(hertz(), seed=1).run(spec, spots, fast_scorer, "openmp", search_seed=4)
    b = MultiGpuExecutor(jupiter(), seed=1).run(spec, spots, fast_scorer, "openmp", search_seed=4)
    assert a.result.best.score == b.result.best.score
    # Jupiter's 12 cores beat Hertz's 4 on the CPU path.
    assert b.simulated_seconds < a.simulated_seconds


def test_balance_metric():
    executor = MultiGpuExecutor(hertz(), seed=3)
    het, _ = executor.replay(_trace(poses=16384), "gpu-heterogeneous")
    hom, _ = executor.replay(_trace(poses=16384), "gpu-homogeneous")
    assert het.balance > hom.balance  # proportional split balances better
