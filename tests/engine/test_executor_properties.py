"""Property-based invariants of the simulated executor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import simulate_gpu_trace
from repro.engine.scheduler import (
    DynamicSpotQueueScheduler,
    StaticEqualScheduler,
    StaticProportionalScheduler,
)
from repro.hardware.node import hertz, jupiter
from repro.hardware.perf_model import gpu_launch_time
from repro.metaheuristics.evaluation import LaunchRecord
from repro.scoring.base import OPS_PER_LJ_PAIR

FLOPS = 3264 * 45 * OPS_PER_LJ_PAIR


def _trace(n_launches, poses, spots):
    per = max(1, poses // spots)
    counts = {i: per for i in range(spots)}
    counts[0] += poses - per * spots
    return [
        LaunchRecord(
            n_conformations=poses,
            flops_per_pose=FLOPS,
            spot_counts=counts,
            kind="population",
            n_receptor_atoms=3264,
        )
        for _ in range(n_launches)
    ]


@settings(max_examples=25, deadline=None)
@given(
    n_launches=st.integers(1, 6),
    poses=st.integers(64, 50_000),
    spots=st.integers(1, 32),
)
def test_scoring_time_bounded_by_single_device_and_ideal(n_launches, poses, spots):
    """Any schedule is at least as fast as the slowest device alone and at
    least as slow as the zero-overhead ideal (total work / total rate)."""
    node = hertz()
    trace = _trace(n_launches, poses, spots)
    for scheduler in (StaticEqualScheduler(), DynamicSpotQueueScheduler()):
        timing = simulate_gpu_trace(trace, node, scheduler)
        slowest_alone = sum(
            gpu_launch_time(node.gpus[1], r.n_conformations, r.flops_per_pose).total_s
            for r in trace
        )
        ideal = sum(
            r.n_conformations * r.flops_per_pose for r in trace
        ) / (sum(g.pairs_per_sec for g in node.gpus) * OPS_PER_LJ_PAIR)
        assert timing.scoring_s <= slowest_alone + 1e-9
        assert timing.scoring_s >= ideal - 1e-9


@settings(max_examples=25, deadline=None)
@given(poses=st.integers(1_000, 200_000))
def test_proportional_never_slower_than_equal_at_scale(poses):
    """With exact throughput weights and big launches, the proportional
    split's makespan is <= the equal split's (up to wave quantisation)."""
    node = hertz()
    trace = _trace(3, poses, 16)
    weights = np.array([g.pairs_per_sec for g in node.gpus], dtype=float)
    weights /= weights.sum()
    equal = simulate_gpu_trace(trace, node, StaticEqualScheduler())
    prop = simulate_gpu_trace(trace, node, StaticProportionalScheduler(weights))
    # One wave of slack allowed for quantisation at small launch sizes.
    wave_slack = gpu_launch_time(node.gpus[0], 960, FLOPS).total_s
    assert prop.scoring_s <= equal.scoring_s + wave_slack


@settings(max_examples=20, deadline=None)
@given(
    poses=st.integers(64, 20_000),
    spots=st.integers(2, 24),
)
def test_busy_time_conservation(poses, spots):
    """Per-device busy sums are consistent: every launch contributes each
    device's share time, and the barrier time is their maximum."""
    node = jupiter()
    trace = _trace(2, poses, spots)
    timing = simulate_gpu_trace(trace, node, StaticEqualScheduler())
    assert timing.device_busy_s.shape == (node.n_gpus,)
    assert np.all(timing.device_busy_s >= 0)
    assert timing.scoring_s >= timing.device_busy_s.max() / 2  # 2 launches
    assert timing.scoring_s <= timing.device_busy_s.sum() + 1e-9


@settings(max_examples=20, deadline=None)
@given(poses=st.integers(64, 20_000))
def test_more_devices_never_hurt(poses):
    """Growing Jupiter's GPU set can only reduce (or keep) scoring time
    under the equal split at fixed per-launch work."""
    base = jupiter()
    trace = _trace(2, poses, 8)
    times = []
    for k in (1, 2, 4, 6):
        node = base.with_gpus(list(base.gpus[:k]))
        timing = simulate_gpu_trace(trace, node, StaticEqualScheduler())
        times.append(timing.scoring_s)
    for a, b in zip(times, times[1:]):
        assert b <= a + 1e-9
