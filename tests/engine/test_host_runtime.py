"""Tests for the real process-parallel host runtime.

The headline contract: :class:`ParallelSpotEvaluator` returns *bitwise*
identical energies to :class:`SerialEvaluator` for any worker count or
balancing mode, and never leaks shared-memory segments — not on close, not
when a worker dies mid-flight.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro import observability as obs
from repro.engine.host_runtime import (
    ParallelSpotEvaluator,
    PersistentHostRuntime,
    SharedArrayStage,
    rebuild_scorer,
    stage_scorer,
)
from repro.errors import ScoringError
from repro.metaheuristics.evaluation import SerialEvaluator
from repro.scoring.cutoff import CutoffLennardJonesScoring
from repro.scoring.lennard_jones import LennardJonesScoring
from repro.scoring.pruned import prune_bound


@pytest.fixture()
def launch(spots, rng):
    """One launch: 18 poses spread over the four test spots."""
    from repro.molecules.transforms import random_quaternion

    spot_ids, translations = [], []
    for s in spots:
        t = s.center + rng.uniform(-s.radius, s.radius, size=(5, 3))
        translations.append(t)
        spot_ids.extend([s.index] * 5)
    # A couple of repeat visits so spot groups are non-contiguous.
    translations.append(spots[0].center[None, :] + rng.uniform(-1, 1, (2, 3)))
    spot_ids.extend([spots[0].index] * 2)
    translations = np.concatenate(translations)
    return (
        np.asarray(spot_ids, dtype=np.int64),
        translations,
        random_quaternion(rng, translations.shape[0]),
    )


def _assert_no_segments(names):
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


@pytest.mark.parametrize("n_workers", [1, 2, 4])
@pytest.mark.parametrize("mode", ["static", "dynamic"])
def test_parallel_matches_serial_bitwise(fast_scorer, launch, n_workers, mode):
    spot_ids, t, q = launch
    serial = SerialEvaluator(fast_scorer).evaluate(spot_ids, t, q)
    with ParallelSpotEvaluator(fast_scorer, n_workers=n_workers, mode=mode) as ev:
        parallel = ev.evaluate(spot_ids, t, q)
    assert np.array_equal(parallel, serial)


@pytest.mark.parametrize("mode", ["static", "dynamic"])
def test_parallel_pruned_matches_serial_bitwise(
    receptor, ligand, spots, launch, mode
):
    scorer = prune_bound(
        CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand), spots
    )
    spot_ids, t, q = launch
    serial = SerialEvaluator(scorer).evaluate(spot_ids, t, q)
    with ParallelSpotEvaluator(scorer, n_workers=2, mode=mode) as ev:
        parallel = ev.evaluate(spot_ids, t, q)
    assert np.array_equal(parallel, serial)


def test_launch_trace_matches_serial(fast_scorer, launch):
    spot_ids, t, q = launch
    serial_eval = SerialEvaluator(fast_scorer)
    serial_eval.evaluate(spot_ids, t, q, kind="improvement")
    with ParallelSpotEvaluator(fast_scorer, n_workers=2) as ev:
        ev.evaluate(spot_ids, t, q, kind="improvement")
        assert ev.stats.launches == serial_eval.stats.launches
        assert ev.stats.n_conformations == serial_eval.stats.n_conformations


def test_empty_launch(fast_scorer):
    with ParallelSpotEvaluator(fast_scorer, n_workers=2) as ev:
        out = ev.evaluate(
            np.empty(0, dtype=np.int64), np.zeros((0, 3)), np.zeros((0, 4))
        )
    assert out.shape == (0,)
    assert ev.stats.n_launches == 1  # empty launches are still recorded


def test_warmup_produces_eq1_weights(fast_scorer):
    with ParallelSpotEvaluator(fast_scorer, n_workers=2) as ev:
        res = ev.warmup_result
    assert res.measured_s.shape == (2,)
    assert res.percent.max() == 1.0
    assert np.all(res.weights > 0)
    assert res.weights.sum() == pytest.approx(1.0)
    assert res.elapsed_s > 0


def test_warmup_can_be_skipped(fast_scorer, launch):
    spot_ids, t, q = launch
    serial = SerialEvaluator(fast_scorer).evaluate(spot_ids, t, q)
    with ParallelSpotEvaluator(fast_scorer, n_workers=2, warmup=False) as ev:
        np.testing.assert_array_equal(ev.weights, [0.5, 0.5])
        assert np.array_equal(ev.evaluate(spot_ids, t, q), serial)


def test_close_unlinks_segments_and_is_idempotent(fast_scorer):
    ev = ParallelSpotEvaluator(fast_scorer, n_workers=2)
    names = ev.segment_names
    assert names  # the staged receptor tables exist while open
    shared_memory.SharedMemory(name=names[0]).close()  # attachable now
    ev.close()
    ev.close()  # second close is a no-op
    _assert_no_segments(names)
    with pytest.raises(ScoringError, match="closed"):
        ev.evaluate(np.zeros(1, dtype=np.int64), np.zeros((1, 3)), np.zeros((1, 4)))


def test_worker_crash_releases_segments(fast_scorer, launch):
    spot_ids, t, q = launch
    ev = ParallelSpotEvaluator(fast_scorer, n_workers=2)
    names = ev.segment_names
    # Kill the pool out from under the evaluator (simulates a worker dying).
    ev._pool.submit(os._exit, 1)
    with pytest.raises(ScoringError, match="crashed"):
        for _ in range(50):  # the pool breaks within a launch or two
            ev.evaluate(spot_ids, t, q)
    _assert_no_segments(names)
    assert ev._pool is None  # evaluator closed itself


def test_constructor_validation(fast_scorer):
    with pytest.raises(ScoringError, match="n_workers"):
        ParallelSpotEvaluator(fast_scorer, n_workers=0)
    with pytest.raises(ScoringError, match="mode"):
        ParallelSpotEvaluator(fast_scorer, n_workers=1, mode="nope")


@pytest.mark.parametrize("kind", ["cutoff", "dense", "pruned"])
def test_stage_rebuild_round_trip_bitwise(receptor, ligand, spots, pose_batch, kind):
    """stage_scorer -> rebuild_scorer reproduces the scorer bitwise in-process."""
    if kind == "cutoff":
        scorer = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)
    elif kind == "dense":
        scorer = LennardJonesScoring().bind(receptor, ligand)
    else:
        scorer = prune_bound(
            CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand), spots
        )
    t, q = pose_batch
    stage = SharedArrayStage()
    try:
        spec = stage_scorer(scorer, stage)
        rebuilt = rebuild_scorer(spec)
        assert np.array_equal(rebuilt.score(t, q), scorer.score(t, q))
        if kind == "pruned":
            sid = np.asarray([s.index for s in spots] * 3, dtype=np.int64)
            assert np.array_equal(
                rebuilt.score_spots(sid, t, q), scorer.score_spots(sid, t, q)
            )
    finally:
        stage.close()
    _assert_no_segments(stage.segment_names)


# ----------------------------------------------------------------------
# persistent campaign runtime: rebind protocol, recycle, warm-up reuse
# ----------------------------------------------------------------------


def _cutoff(receptor, ligand):
    return CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)


def _ligands(sizes, base_seed=50):
    from repro.molecules.synthetic import generate_ligand

    return [generate_ligand(n, seed=base_seed + n) for n in sizes]


def test_persistent_rebind_matches_serial_across_ligands(receptor, launch):
    # 40 atoms after 14 forces the ligand slot bank to outgrow and retire
    # its original segments mid-campaign.
    ligands = _ligands((14, 18, 40))
    spot_ids, t, q = launch
    warmups = obs.counter("host.warmups").value
    reuses = obs.counter("host.pool.reuses").value
    ev = ParallelSpotEvaluator(
        _cutoff(receptor, ligands[0]), n_workers=2, persistent=True
    )
    names = ()
    try:
        receptor_segments = ev._stage.segment_names
        for i, lig in enumerate(ligands):
            scorer = _cutoff(receptor, lig)
            if i:
                ev.rebind(scorer)
            serial = SerialEvaluator(scorer).evaluate(spot_ids, t, q)
            assert np.array_equal(ev.evaluate(spot_ids, t, q), serial)
            # The receptor tables are staged once and never move.
            assert ev._stage.segment_names == receptor_segments
        assert obs.counter("host.warmups").value == warmups + 1
        assert obs.counter("host.pool.reuses").value == reuses + 2
        names = ev.segment_names
    finally:
        ev.close()
    _assert_no_segments(names)


def test_worker_crash_recycles_pool_and_keeps_receptor(receptor, ligand, launch):
    spot_ids, t, q = launch
    scorer = _cutoff(receptor, ligand)
    serial = SerialEvaluator(scorer).evaluate(spot_ids, t, q)
    recycles = obs.counter("host.pool.recycles").value
    warmups = obs.counter("host.warmups").value
    ev = ParallelSpotEvaluator(scorer, n_workers=2, persistent=True)
    try:
        names = ev.segment_names
        ev._pool.submit(os._exit, 1)
        with pytest.raises(ScoringError, match="recycled"):
            for _ in range(50):
                ev.evaluate(spot_ids, t, q)
        # The pool was replaced in place: every staged segment survives...
        for name in names:
            shared_memory.SharedMemory(name=name).close()
        assert obs.counter("host.pool.recycles").value == recycles + 1
        # ...and the fresh workers rebuild lazily from the rebind message —
        # no restage, no new warm-up, bitwise-identical energies.
        ev.reset_stats()
        assert np.array_equal(ev.evaluate(spot_ids, t, q), serial)
        assert obs.counter("host.warmups").value == warmups + 1
    finally:
        ev.close()
    _assert_no_segments(names)


def test_persistent_runtime_reuses_then_remeasures_warmup(receptor, spots, launch):
    spot_ids, t, q = launch
    ligands = _ligands((10, 11, 12, 13), base_seed=80)
    reuses = obs.counter("host.warmup.reuses").value
    remeasures = obs.counter("host.warmup.remeasures").value
    with PersistentHostRuntime(
        receptor,
        spots,
        n_workers=2,
        remeasure_interval=3,
        drift_threshold=2.0,  # unreachable: only the interval can trigger
        prefetch=False,
    ) as rt:
        for lig in ligands:
            ev = rt.acquire(lig)
            serial = SerialEvaluator(rt._bind(lig)).evaluate(spot_ids, t, q)
            assert np.array_equal(ev.evaluate(spot_ids, t, q), serial)
        assert rt.ligands_bound == len(ligands)
    # Ligand 0 pays the initial warm-up; rebinds 1 and 2 reuse it; rebind 3
    # hits the interval and re-measures.
    assert obs.counter("host.warmup.reuses").value == reuses + 2
    assert obs.counter("host.warmup.remeasures").value == remeasures + 1


def test_persistent_runtime_prefetch_stages_next_ligand(receptor, spots, launch):
    spot_ids, t, q = launch
    ligands = _ligands((9, 12, 15), base_seed=70)
    hits = obs.counter("host.prefetch.hits").value
    with PersistentHostRuntime(receptor, spots, n_workers=2) as rt:
        for i, lig in enumerate(ligands):
            if i + 1 < len(ligands):
                rt.hint_next(ligands[i + 1])
            ev = rt.acquire(lig)
            serial = SerialEvaluator(rt._bind(lig)).evaluate(spot_ids, t, q)
            assert np.array_equal(ev.evaluate(spot_ids, t, q), serial)
    # Ligands 1 and 2 were bound + staged by the stager thread while their
    # predecessors were active.
    assert obs.counter("host.prefetch.hits").value == hits + 2


def test_persistent_runtime_same_ligand_reacquire_restages_nothing(
    receptor, spots, ligand, launch
):
    spot_ids, t, q = launch
    with PersistentHostRuntime(receptor, spots, n_workers=1, prefetch=False) as rt:
        first = rt.acquire(ligand)
        first.evaluate(spot_ids, t, q)
        assert first.stats.n_launches == 1
        again = rt.acquire(ligand)  # a campaign retry of the active ligand
        assert again is first
        assert again.stats.n_launches == 0  # fresh trace for the retry
        assert rt.ligands_bound == 1
    with pytest.raises(ScoringError, match="closed"):
        rt.acquire(ligand)


def test_evaluator_factory_validates_receptor_and_spots(receptor, spots, ligand):
    from repro.molecules.synthetic import generate_receptor

    other = generate_receptor(120, seed=99)
    rt = PersistentHostRuntime(receptor, spots, n_workers=1, prefetch=False)
    try:
        with pytest.raises(ScoringError, match="different receptor"):
            rt.evaluator_factory(other, ligand, spots)
        with pytest.raises(ScoringError, match="spots"):
            rt.evaluator_factory(receptor, ligand, spots[:2])
    finally:
        rt.close()


def test_dock_with_persistent_runtime_matches_serial(receptor, spots):
    from repro.vs.docking import dock

    ligands = _ligands((10, 12), base_seed=90)
    with PersistentHostRuntime(receptor, spots, n_workers=2) as rt:
        for i, lig in enumerate(ligands):
            persistent = dock(
                receptor, lig, spots=spots, metaheuristic="M1", seed=7 + i,
                workload_scale=0.05, evaluator_factory=rt.evaluator_factory,
            )
            serial = dock(
                receptor, lig, spots=spots, metaheuristic="M1", seed=7 + i,
                workload_scale=0.05,
            )
            assert persistent.best_score == serial.best_score
            assert [p.score for p in persistent.per_spot] == [
                p.score for p in serial.per_spot
            ]
            assert persistent.evaluations == serial.evaluations
        # dock() must not have closed the campaign-owned evaluator.
        assert rt.evaluator is not None
        assert rt.evaluator._pool is not None


def test_dock_parity_with_host_workers(receptor, ligand):
    from repro.vs.docking import dock

    serial = dock(
        receptor, ligand, n_spots=4, metaheuristic="M1", seed=7, workload_scale=0.05
    )
    parallel = dock(
        receptor,
        ligand,
        n_spots=4,
        metaheuristic="M1",
        seed=7,
        workload_scale=0.05,
        host_workers=2,
        prune_spots=True,
    )
    assert parallel.best_score == serial.best_score
    assert parallel.best.spot_index == serial.best.spot_index
    assert [p.score for p in parallel.per_spot] == [p.score for p in serial.per_spot]
    assert parallel.evaluations == serial.evaluations


# ----------------------------------------------------------------------
# docking pipeline: submit/poll/harvest tickets, multi-ligand residency
# ----------------------------------------------------------------------
def test_submit_poll_harvest_matches_evaluate(fast_scorer, launch):
    import time

    spot_ids, t, q = launch
    serial = SerialEvaluator(fast_scorer).evaluate(spot_ids, t, q)
    with ParallelSpotEvaluator(fast_scorer, n_workers=2) as ev:
        ticket = ev.submit(spot_ids, t, q)
        deadline = time.monotonic() + 30.0
        while not ev.poll(ticket):
            assert time.monotonic() < deadline, "launch never settled"
            time.sleep(0.001)
        out = ev.harvest(ticket)
    assert np.array_equal(out, serial)


def test_harvest_is_idempotent(fast_scorer, launch):
    spot_ids, t, q = launch
    with ParallelSpotEvaluator(fast_scorer, n_workers=2) as ev:
        ticket = ev.submit(spot_ids, t, q)
        first = ev.harvest(ticket)
        again = ev.harvest(ticket)
    assert again is first


def test_persistent_evaluator_rejects_single_slot_bank(receptor, ligand):
    with pytest.raises(ScoringError, match="slot_banks"):
        ParallelSpotEvaluator(
            _cutoff(receptor, ligand), n_workers=1, persistent=True, slot_banks=1
        )


def test_runtime_rejects_bad_pipeline_depth(receptor, spots):
    with pytest.raises(ScoringError, match="pipeline_depth"):
        PersistentHostRuntime(receptor, spots, n_workers=1, pipeline_depth=0)


def test_interleaved_leases_are_bitwise_identical(receptor, spots, launch):
    # Two ligands resident at once; their launches interleave through one
    # pool (submit A, submit B, harvest B, harvest A) and each must still be
    # bitwise identical to a serial evaluator that had the ligand to itself.
    lig_a, lig_b = _ligands((16, 20), base_seed=120)
    spot_ids, t, q = launch
    serial_a = SerialEvaluator(_cutoff(receptor, lig_a)).evaluate(spot_ids, t, q)
    serial_b = SerialEvaluator(_cutoff(receptor, lig_b)).evaluate(spot_ids, t, q)
    fill = obs.counter("host.pipeline.fill.poses").value
    with PersistentHostRuntime(
        receptor, spots, n_workers=2, warmup=False, pipeline_depth=2
    ) as rt:
        lease_a = rt.lease(lig_a)
        lease_b = rt.lease(lig_b)
        ev_a = lease_a.evaluator_factory(receptor, lig_a, spots)
        ev_b = lease_b.evaluator_factory(receptor, lig_b, spots)
        pool = rt.evaluator
        ticket_a = pool.submit(
            spot_ids, t, q, binding=lease_a.binding, stats=ev_a.stats
        )
        ticket_b = pool.submit(
            spot_ids, t, q, binding=lease_b.binding, stats=ev_b.stats
        )
        out_b = pool.harvest(ticket_b)
        out_a = pool.harvest(ticket_a)
        # B was submitted while A was still in flight: the overlap counter
        # saw B's poses fill A's barrier gap.
        assert (
            obs.counter("host.pipeline.fill.poses").value
            == fill + t.shape[0]
        )
        lease_a.release()
        lease_b.release()
    assert np.array_equal(out_a, serial_a)
    assert np.array_equal(out_b, serial_b)


def test_lease_evaluator_keeps_per_ligand_launch_trace(receptor, spots, launch):
    lig_a, lig_b = _ligands((14, 15), base_seed=140)
    spot_ids, t, q = launch
    reference = SerialEvaluator(_cutoff(receptor, lig_a))
    reference.evaluate(spot_ids, t, q, kind="improvement")
    with PersistentHostRuntime(
        receptor, spots, n_workers=2, warmup=False, pipeline_depth=2
    ) as rt:
        lease_a = rt.lease(lig_a)
        lease_b = rt.lease(lig_b)
        ev_a = lease_a.evaluator_factory(receptor, lig_a, spots)
        ev_b = lease_b.evaluator_factory(receptor, lig_b, spots)
        ev_a.evaluate(spot_ids, t, q, kind="improvement")
        ev_b.evaluate(spot_ids, t, q)
        ev_b.evaluate(spot_ids, t, q)
        # A's trace is exactly what a solo serial run records — B's two
        # launches never leak into it.
        assert ev_a.stats.launches == reference.stats.launches
        assert ev_b.stats.n_launches == 2
        lease_a.release()
        lease_b.release()


def test_submit_against_released_lease_rejected(receptor, spots, launch):
    (lig,) = _ligands((13,), base_seed=160)
    spot_ids, t, q = launch
    with PersistentHostRuntime(
        receptor, spots, n_workers=1, warmup=False, pipeline_depth=2
    ) as rt:
        lease = rt.lease(lig)
        binding = lease.binding
        lease.release()
        with pytest.raises(ScoringError, match="released"):
            rt.evaluator.submit(spot_ids, t, q, binding=binding)
        with pytest.raises(ScoringError, match="released"):
            lease.evaluator_factory(receptor, lig, spots)


def test_released_bank_is_reused_by_next_lease(receptor, spots, launch):
    # depth 2 -> 3 banks. Three sequential lease/release cycles must recycle
    # banks rather than exhaust them, and leave no shared-memory segments.
    ligands = _ligands((12, 13, 14, 15), base_seed=180)
    spot_ids, t, q = launch
    rt = PersistentHostRuntime(
        receptor, spots, n_workers=1, warmup=False, prefetch=False,
        pipeline_depth=2,
    )
    try:
        for lig in ligands:
            serial = SerialEvaluator(_cutoff(receptor, lig)).evaluate(
                spot_ids, t, q
            )
            lease = rt.lease(lig)
            ev = lease.evaluator_factory(receptor, lig, spots)
            assert np.array_equal(ev.evaluate(spot_ids, t, q), serial)
            lease.release()
        names = rt.evaluator.segment_names
    finally:
        rt.close()
    _assert_no_segments(names)
