"""Tests for the real process-parallel host runtime.

The headline contract: :class:`ParallelSpotEvaluator` returns *bitwise*
identical energies to :class:`SerialEvaluator` for any worker count or
balancing mode, and never leaks shared-memory segments — not on close, not
when a worker dies mid-flight.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.engine.host_runtime import (
    ParallelSpotEvaluator,
    SharedArrayStage,
    rebuild_scorer,
    stage_scorer,
)
from repro.errors import ScoringError
from repro.metaheuristics.evaluation import SerialEvaluator
from repro.scoring.cutoff import CutoffLennardJonesScoring
from repro.scoring.lennard_jones import LennardJonesScoring
from repro.scoring.pruned import prune_bound


@pytest.fixture()
def launch(spots, rng):
    """One launch: 18 poses spread over the four test spots."""
    from repro.molecules.transforms import random_quaternion

    spot_ids, translations = [], []
    for s in spots:
        t = s.center + rng.uniform(-s.radius, s.radius, size=(5, 3))
        translations.append(t)
        spot_ids.extend([s.index] * 5)
    # A couple of repeat visits so spot groups are non-contiguous.
    translations.append(spots[0].center[None, :] + rng.uniform(-1, 1, (2, 3)))
    spot_ids.extend([spots[0].index] * 2)
    translations = np.concatenate(translations)
    return (
        np.asarray(spot_ids, dtype=np.int64),
        translations,
        random_quaternion(rng, translations.shape[0]),
    )


def _assert_no_segments(names):
    for name in names:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


@pytest.mark.parametrize("n_workers", [1, 2, 4])
@pytest.mark.parametrize("mode", ["static", "dynamic"])
def test_parallel_matches_serial_bitwise(fast_scorer, launch, n_workers, mode):
    spot_ids, t, q = launch
    serial = SerialEvaluator(fast_scorer).evaluate(spot_ids, t, q)
    with ParallelSpotEvaluator(fast_scorer, n_workers=n_workers, mode=mode) as ev:
        parallel = ev.evaluate(spot_ids, t, q)
    assert np.array_equal(parallel, serial)


@pytest.mark.parametrize("mode", ["static", "dynamic"])
def test_parallel_pruned_matches_serial_bitwise(
    receptor, ligand, spots, launch, mode
):
    scorer = prune_bound(
        CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand), spots
    )
    spot_ids, t, q = launch
    serial = SerialEvaluator(scorer).evaluate(spot_ids, t, q)
    with ParallelSpotEvaluator(scorer, n_workers=2, mode=mode) as ev:
        parallel = ev.evaluate(spot_ids, t, q)
    assert np.array_equal(parallel, serial)


def test_launch_trace_matches_serial(fast_scorer, launch):
    spot_ids, t, q = launch
    serial_eval = SerialEvaluator(fast_scorer)
    serial_eval.evaluate(spot_ids, t, q, kind="improvement")
    with ParallelSpotEvaluator(fast_scorer, n_workers=2) as ev:
        ev.evaluate(spot_ids, t, q, kind="improvement")
        assert ev.stats.launches == serial_eval.stats.launches
        assert ev.stats.n_conformations == serial_eval.stats.n_conformations


def test_empty_launch(fast_scorer):
    with ParallelSpotEvaluator(fast_scorer, n_workers=2) as ev:
        out = ev.evaluate(
            np.empty(0, dtype=np.int64), np.zeros((0, 3)), np.zeros((0, 4))
        )
    assert out.shape == (0,)
    assert ev.stats.n_launches == 1  # empty launches are still recorded


def test_warmup_produces_eq1_weights(fast_scorer):
    with ParallelSpotEvaluator(fast_scorer, n_workers=2) as ev:
        res = ev.warmup_result
    assert res.measured_s.shape == (2,)
    assert res.percent.max() == 1.0
    assert np.all(res.weights > 0)
    assert res.weights.sum() == pytest.approx(1.0)
    assert res.elapsed_s > 0


def test_warmup_can_be_skipped(fast_scorer, launch):
    spot_ids, t, q = launch
    serial = SerialEvaluator(fast_scorer).evaluate(spot_ids, t, q)
    with ParallelSpotEvaluator(fast_scorer, n_workers=2, warmup=False) as ev:
        np.testing.assert_array_equal(ev.weights, [0.5, 0.5])
        assert np.array_equal(ev.evaluate(spot_ids, t, q), serial)


def test_close_unlinks_segments_and_is_idempotent(fast_scorer):
    ev = ParallelSpotEvaluator(fast_scorer, n_workers=2)
    names = ev.segment_names
    assert names  # the staged receptor tables exist while open
    shared_memory.SharedMemory(name=names[0]).close()  # attachable now
    ev.close()
    ev.close()  # second close is a no-op
    _assert_no_segments(names)
    with pytest.raises(ScoringError, match="closed"):
        ev.evaluate(np.zeros(1, dtype=np.int64), np.zeros((1, 3)), np.zeros((1, 4)))


def test_worker_crash_releases_segments(fast_scorer, launch):
    spot_ids, t, q = launch
    ev = ParallelSpotEvaluator(fast_scorer, n_workers=2)
    names = ev.segment_names
    # Kill the pool out from under the evaluator (simulates a worker dying).
    ev._pool.submit(os._exit, 1)
    with pytest.raises(ScoringError, match="crashed"):
        for _ in range(50):  # the pool breaks within a launch or two
            ev.evaluate(spot_ids, t, q)
    _assert_no_segments(names)
    assert ev._pool is None  # evaluator closed itself


def test_constructor_validation(fast_scorer):
    with pytest.raises(ScoringError, match="n_workers"):
        ParallelSpotEvaluator(fast_scorer, n_workers=0)
    with pytest.raises(ScoringError, match="mode"):
        ParallelSpotEvaluator(fast_scorer, n_workers=1, mode="nope")


@pytest.mark.parametrize("kind", ["cutoff", "dense", "pruned"])
def test_stage_rebuild_round_trip_bitwise(receptor, ligand, spots, pose_batch, kind):
    """stage_scorer -> rebuild_scorer reproduces the scorer bitwise in-process."""
    if kind == "cutoff":
        scorer = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)
    elif kind == "dense":
        scorer = LennardJonesScoring().bind(receptor, ligand)
    else:
        scorer = prune_bound(
            CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand), spots
        )
    t, q = pose_batch
    stage = SharedArrayStage()
    try:
        spec = stage_scorer(scorer, stage)
        rebuilt = rebuild_scorer(spec)
        assert np.array_equal(rebuilt.score(t, q), scorer.score(t, q))
        if kind == "pruned":
            sid = np.asarray([s.index for s in spots] * 3, dtype=np.int64)
            assert np.array_equal(
                rebuilt.score_spots(sid, t, q), scorer.score_spots(sid, t, q)
            )
    finally:
        stage.close()
    _assert_no_segments(stage.segment_names)


def test_dock_parity_with_host_workers(receptor, ligand):
    from repro.vs.docking import dock

    serial = dock(
        receptor, ligand, n_spots=4, metaheuristic="M1", seed=7, workload_scale=0.05
    )
    parallel = dock(
        receptor,
        ligand,
        n_spots=4,
        metaheuristic="M1",
        seed=7,
        workload_scale=0.05,
        host_workers=2,
        prune_spots=True,
    )
    assert parallel.best_score == serial.best_score
    assert parallel.best.spot_index == serial.best.spot_index
    assert [p.score for p in parallel.per_spot] == [p.score for p in serial.per_spot]
    assert parallel.evaluations == serial.evaluations
