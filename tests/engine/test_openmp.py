"""Threaded CPU evaluator tests (the real parallel execution path)."""

import numpy as np
import pytest

from repro.engine.openmp import ThreadedCpuEvaluator
from repro.errors import SchedulingError
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.evaluation import SerialEvaluator
from repro.metaheuristics.presets import make_preset
from repro.metaheuristics.rng import SpotRngPool
from repro.metaheuristics.template import run_metaheuristic
from repro.molecules.transforms import random_quaternion


def test_threaded_matches_serial(fast_scorer, pose_batch):
    translations, quaternions = pose_batch
    spot_ids = np.zeros(len(translations), dtype=int)
    serial = SerialEvaluator(fast_scorer).evaluate(spot_ids, translations, quaternions)
    with ThreadedCpuEvaluator(fast_scorer, n_workers=3) as threaded:
        parallel = threaded.evaluate(spot_ids, translations, quaternions)
    np.testing.assert_allclose(parallel, serial, rtol=1e-5)


def test_threaded_records_launches(fast_scorer, pose_batch):
    translations, quaternions = pose_batch
    spot_ids = np.zeros(len(translations), dtype=int)
    with ThreadedCpuEvaluator(fast_scorer, n_workers=2) as ev:
        ev.evaluate(spot_ids, translations, quaternions, kind="improve")
    assert ev.stats.n_launches == 1
    assert ev.stats.launches[0].kind == "improve"
    assert ev.stats.launches[0].n_receptor_atoms == fast_scorer.receptor.n_atoms


def test_threaded_small_batch_serial_path(fast_scorer, rng):
    """Batches smaller than 2×workers skip the pool."""
    t = rng.normal(size=(3, 3))
    q = random_quaternion(rng, 3)
    with ThreadedCpuEvaluator(fast_scorer, n_workers=4) as ev:
        out = ev.evaluate(np.zeros(3, dtype=int), t, q)
    assert out.shape == (3,)


def test_threaded_without_context_manager(fast_scorer, pose_batch):
    translations, quaternions = pose_batch
    ev = ThreadedCpuEvaluator(fast_scorer, n_workers=2)
    # Pool not started: falls back to direct scoring.
    out = ev.evaluate(np.zeros(len(translations), dtype=int), translations, quaternions)
    assert out.shape == (len(translations),)
    ev.close()  # idempotent


def test_threaded_drives_full_metaheuristic(spots, fast_scorer):
    """The template runs unchanged on the threaded evaluator and matches
    the serial result (same seed, same math)."""
    spec = make_preset("M1", workload_scale=0.05)
    serial_ctx = SearchContext(
        spots=spots,
        evaluator=SerialEvaluator(fast_scorer),
        rng=SpotRngPool(2, [s.index for s in spots]),
    )
    serial = run_metaheuristic(spec, serial_ctx)
    with ThreadedCpuEvaluator(fast_scorer, n_workers=2) as ev:
        threaded_ctx = SearchContext(
            spots=spots,
            evaluator=ev,
            rng=SpotRngPool(2, [s.index for s in spots]),
        )
        threaded = run_metaheuristic(spec, threaded_ctx)
    assert threaded.best.score == pytest.approx(serial.best.score, rel=1e-4)


def test_worker_validation(fast_scorer):
    with pytest.raises(SchedulingError):
        ThreadedCpuEvaluator(fast_scorer, n_workers=0)
