"""Partitioner tests: conservation and proportionality (with hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.partition import equal_partition, proportional_partition
from repro.errors import SchedulingError


def test_equal_partition_basic():
    np.testing.assert_array_equal(equal_partition(10, 3), [4, 3, 3])
    np.testing.assert_array_equal(equal_partition(9, 3), [3, 3, 3])
    np.testing.assert_array_equal(equal_partition(2, 4), [1, 1, 0, 0])
    np.testing.assert_array_equal(equal_partition(0, 2), [0, 0])


def test_equal_partition_validation():
    with pytest.raises(SchedulingError):
        equal_partition(-1, 2)
    with pytest.raises(SchedulingError):
        equal_partition(4, 0)


def test_proportional_partition_exact_ratio():
    shares = proportional_partition(100, np.array([3.0, 1.0]))
    np.testing.assert_array_equal(shares, [75, 25])


def test_proportional_partition_rounding_goes_to_largest_remainder():
    shares = proportional_partition(10, np.array([1.0, 1.0, 1.0]))
    assert shares.sum() == 10
    assert sorted(shares.tolist()) == [3, 3, 4]


def test_proportional_partition_zero_weight_gets_nothing():
    shares = proportional_partition(10, np.array([1.0, 0.0]))
    np.testing.assert_array_equal(shares, [10, 0])


def test_proportional_partition_granularity():
    shares = proportional_partition(100, np.array([2.0, 1.0]), granularity=32)
    assert shares.sum() == 100
    # The granular body is in 32-multiples; only the tail breaks it.
    body = shares - shares % 32
    assert body.sum() >= 64


def test_proportional_partition_validation():
    with pytest.raises(SchedulingError):
        proportional_partition(10, np.array([]))
    with pytest.raises(SchedulingError):
        proportional_partition(10, np.array([0.0, 0.0]))
    with pytest.raises(SchedulingError):
        proportional_partition(10, np.array([-1.0, 2.0]))
    with pytest.raises(SchedulingError):
        proportional_partition(-1, np.array([1.0]))
    with pytest.raises(SchedulingError):
        proportional_partition(10, np.array([1.0]), granularity=0)


@settings(max_examples=200, deadline=None)
@given(
    total=st.integers(0, 10**6),
    n=st.integers(1, 16),
)
def test_equal_partition_conserves_and_balances(total, n):
    shares = equal_partition(total, n)
    assert shares.sum() == total
    assert shares.max() - shares.min() <= 1
    assert np.all(shares >= 0)


@settings(max_examples=200, deadline=None)
@given(
    total=st.integers(0, 10**6),
    weights=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=8).filter(
        lambda w: sum(w) > 1e-9
    ),
    granularity=st.sampled_from([1, 4, 32]),
)
def test_proportional_partition_conserves(total, weights, granularity):
    shares = proportional_partition(total, np.array(weights), granularity)
    assert shares.sum() == total
    assert np.all(shares >= 0)


@settings(max_examples=100, deadline=None)
@given(
    total=st.integers(1000, 10**6),
    w=st.lists(st.floats(0.1, 10.0), min_size=2, max_size=6),
)
def test_proportional_partition_is_proportional(total, w):
    """Large totals: each share within one item-per-part of exact."""
    weights = np.array(w)
    shares = proportional_partition(total, weights)
    exact = total * weights / weights.sum()
    assert np.all(np.abs(shares - exact) <= len(w) + 1)
