"""Property-based invariants of the partitioners and the Eq. 1 warm-up.

Uses hypothesis when the container provides it; otherwise the same
properties run over a seeded-random case battery (deterministic across
runs), so the suite degrades without losing the invariants.
"""

import numpy as np
import pytest

from repro.engine.partition import equal_partition, proportional_partition
from repro.engine.warmup import run_warmup
from repro.hardware.node import hertz, jupiter
from repro.scoring.base import OPS_PER_LJ_PAIR

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - container ships hypothesis
    HAVE_HYPOTHESIS = False

FLOPS = 3264 * 45 * OPS_PER_LJ_PAIR

#: Device pool the warm-up properties sample from (both paper machines).
GPU_POOL = tuple(hertz().gpus) + tuple(jupiter().gpus)


def _seeded_cases(draw, n=60, seed=20260805):
    rng = np.random.default_rng(seed)
    return [draw(rng) for _ in range(n)]


# ----------------------------------------------------------------------
# equal_partition
# ----------------------------------------------------------------------
def check_equal_partition(total, n_parts):
    shares = equal_partition(total, n_parts)
    assert shares.shape == (n_parts,)
    assert shares.sum() == total, "shares must conserve the population"
    assert np.all(shares >= 0)
    assert shares.max() - shares.min() <= 1, "equal split is near-equal"
    assert np.all(np.diff(shares) <= 0), "extra items go to the first parts"


if HAVE_HYPOTHESIS:

    @settings(max_examples=80, deadline=None)
    @given(total=st.integers(0, 100_000), n_parts=st.integers(1, 64))
    def test_equal_partition_properties(total, n_parts):
        check_equal_partition(total, n_parts)

else:

    @pytest.mark.parametrize(
        "total,n_parts",
        _seeded_cases(
            lambda rng: (int(rng.integers(0, 100_000)), int(rng.integers(1, 65)))
        ),
    )
    def test_equal_partition_properties(total, n_parts):
        check_equal_partition(total, n_parts)


# ----------------------------------------------------------------------
# proportional_partition
# ----------------------------------------------------------------------
def check_proportional_partition(total, weights, granularity):
    weights = np.asarray(weights, dtype=float)
    shares = proportional_partition(total, weights, granularity=granularity)
    assert shares.sum() == total, "shares must conserve the population"
    assert np.all(shares >= 0)
    # Monotone in weight: a strictly heavier part never gets fewer items.
    for i in range(len(weights)):
        for j in range(len(weights)):
            if weights[i] > weights[j]:
                assert shares[i] >= shares[j], (
                    f"w[{i}]={weights[i]} > w[{j}]={weights[j]} "
                    f"but shares {shares[i]} < {shares[j]}"
                )
    # Proportionality bound (granularity=1): each share is within one unit
    # of its exact Hamilton quota.
    if granularity == 1:
        exact = total * weights / weights.sum()
        assert np.all(np.abs(shares - exact) < 1.0 + 1e-9)


def _draw_proportional(rng):
    n = int(rng.integers(1, 9))
    weights = rng.uniform(0.0, 10.0, n)
    if weights.sum() == 0:
        weights[0] = 1.0
    return (
        int(rng.integers(0, 50_000)),
        tuple(float(w) for w in weights),
        int(rng.choice([1, 1, 1, 32, 256])),
    )


if HAVE_HYPOTHESIS:

    @settings(max_examples=80, deadline=None)
    @given(
        total=st.integers(0, 50_000),
        weights=st.lists(
            st.floats(0.0, 10.0, allow_nan=False), min_size=1, max_size=8
        ).filter(lambda w: sum(w) > 0),
        granularity=st.sampled_from([1, 1, 1, 32, 256]),
    )
    def test_proportional_partition_properties(total, weights, granularity):
        check_proportional_partition(total, weights, granularity)

else:

    @pytest.mark.parametrize(
        "total,weights,granularity", _seeded_cases(_draw_proportional)
    )
    def test_proportional_partition_properties(total, weights, granularity):
        check_proportional_partition(total, weights, granularity)


def test_proportional_matches_equal_on_uniform_weights():
    for total in (0, 1, 97, 1000):
        got = proportional_partition(total, np.ones(5))
        want = equal_partition(total, 5)
        assert got.sum() == want.sum() == total
        assert got.max() - got.min() <= 1


# ----------------------------------------------------------------------
# Eq. 1 warm-up shares
# ----------------------------------------------------------------------
def check_warmup_properties(gpus, iterations, poses):
    # noise=0: measurements equal the perf model exactly, so Eq. 1's
    # structure is checkable without stochastic slack.
    result = run_warmup(
        gpus, FLOPS, iterations=iterations, poses_per_device=poses, noise=0.0
    )
    measured, percent, weights = (
        result.measured_times,
        result.percent,
        result.weights,
    )
    assert percent.max() == pytest.approx(1.0), "slowest device anchors Eq. 1"
    assert np.all(percent > 0) and np.all(percent <= 1.0 + 1e-12)
    assert weights.sum() == pytest.approx(1.0), "shares are a distribution"
    assert np.all(weights > 0), "every device gets work"
    # Monotone in measured device time: strictly slower -> strictly smaller
    # share; equal times -> equal shares.
    for i in range(len(gpus)):
        for j in range(len(gpus)):
            if measured[i] < measured[j]:
                assert weights[i] > weights[j]
            elif measured[i] == measured[j]:
                assert weights[i] == pytest.approx(weights[j])
    # Shares are exactly inverse-proportional to measured times.
    inv = 1.0 / measured
    np.testing.assert_allclose(weights, inv / inv.sum(), rtol=1e-12)
    # The warm-up itself waits for the slowest device each iteration.
    assert result.elapsed_s == pytest.approx(iterations * measured.max())


def _draw_warmup(rng):
    n = int(rng.integers(1, 7))
    picks = rng.integers(0, len(GPU_POOL), n)
    return (
        tuple(GPU_POOL[int(p)] for p in picks),
        int(rng.integers(1, 21)),
        int(rng.choice([32, 256, 1024])),
    )


if HAVE_HYPOTHESIS:

    @settings(max_examples=40, deadline=None)
    @given(
        gpus=st.lists(st.sampled_from(GPU_POOL), min_size=1, max_size=6),
        iterations=st.integers(1, 20),
        poses=st.sampled_from([32, 256, 1024]),
    )
    def test_eq1_warmup_share_properties(gpus, iterations, poses):
        check_warmup_properties(tuple(gpus), iterations, poses)

else:

    @pytest.mark.parametrize(
        "gpus,iterations,poses", _seeded_cases(_draw_warmup, n=40)
    )
    def test_eq1_warmup_share_properties(gpus, iterations, poses):
        check_warmup_properties(gpus, iterations, poses)


def test_eq1_shares_shift_away_from_a_slowed_device():
    """Scaling one device's measured time down (a faster GPU) must raise its
    share and lower everyone else's — the heterogeneous algorithm's whole
    point, stated as a monotonicity property across runs."""
    gpus = hertz().gpus
    base = run_warmup(gpus, FLOPS, noise=0.0).weights
    # Same devices, heavier per-pose work: relative speeds change, but the
    # faster device keeps at least its relative advantage.
    heavier = run_warmup(gpus, FLOPS * 4, noise=0.0).weights
    assert base.argmax() == heavier.argmax()
    # And with identical devices the split collapses to equal shares.
    twin = run_warmup((gpus[0], gpus[0]), FLOPS, noise=0.0).weights
    np.testing.assert_allclose(twin, [0.5, 0.5], rtol=1e-12)
