"""Scheduler tests: conservation, proportionality, dynamic LPT behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.scheduler import (
    DynamicSpotQueueScheduler,
    StaticEqualScheduler,
    StaticProportionalScheduler,
)
from repro.engine.warmup import run_warmup
from repro.errors import SchedulingError
from repro.hardware.node import hertz, jupiter
from repro.metaheuristics.evaluation import LaunchRecord
from repro.scoring.base import OPS_PER_LJ_PAIR

FLOPS = 3264 * 45 * OPS_PER_LJ_PAIR


def _record(n, spots=8):
    per = n // spots
    counts = {i: per for i in range(spots)}
    counts[0] += n - per * spots
    return LaunchRecord(
        n_conformations=n,
        flops_per_pose=FLOPS,
        spot_counts=counts,
        n_receptor_atoms=3264,
    )


def _alive(n, dead=()):
    alive = np.ones(n, dtype=bool)
    for d in dead:
        alive[d] = False
    return alive


def test_static_equal_splits_evenly():
    node = hertz()
    shares = StaticEqualScheduler().plan(_record(1000), node.gpus, _alive(2))
    np.testing.assert_array_equal(shares, [500, 500])


def test_static_equal_skips_dead_devices():
    node = jupiter()
    shares = StaticEqualScheduler().plan(
        _record(1200), node.gpus, _alive(6, dead=(0, 3))
    )
    assert shares[0] == 0 and shares[3] == 0
    assert shares.sum() == 1200
    assert set(shares[[1, 2, 4, 5]]) == {300}


def test_static_equal_all_dead_raises():
    node = hertz()
    with pytest.raises(SchedulingError):
        StaticEqualScheduler().plan(_record(10), node.gpus, _alive(2, dead=(0, 1)))


def test_static_proportional_follows_weights():
    node = hertz()
    warmup = run_warmup(node.gpus, FLOPS, noise=0.0)
    shares = StaticProportionalScheduler(warmup.weights).plan(
        _record(10_000), node.gpus, _alive(2)
    )
    assert shares.sum() == 10_000
    assert shares[0] > shares[1]  # K40c gets more
    ratio = shares[0] / shares[1]
    assert ratio == pytest.approx(warmup.weights[0] / warmup.weights[1], rel=0.01)


def test_static_proportional_wrong_length():
    node = hertz()
    with pytest.raises(SchedulingError):
        StaticProportionalScheduler(np.array([1.0])).plan(
            _record(10), node.gpus, _alive(2)
        )


def test_dynamic_scheduler_balances_heterogeneous():
    node = hertz()
    scheduler = DynamicSpotQueueScheduler()
    shares = scheduler.plan(_record(10_000, spots=40), node.gpus, _alive(2))
    assert shares.sum() == 10_000
    # K40c is ~2.15× faster and must take roughly that share ratio.
    assert 1.4 < shares[0] / shares[1] < 3.2


def test_dynamic_scheduler_survives_dead_device():
    node = hertz()
    scheduler = DynamicSpotQueueScheduler()
    shares = scheduler.plan(_record(1000, spots=10), node.gpus, _alive(2, dead=(0,)))
    np.testing.assert_array_equal(shares, [0, 1000])


def test_dynamic_scheduler_single_spot_cannot_split():
    """With one giant job, dynamic scheduling degenerates (job granularity
    bounds balance) — it all lands on the fastest device."""
    node = hertz()
    record = LaunchRecord(
        n_conformations=5000,
        flops_per_pose=FLOPS,
        spot_counts={0: 5000},
        n_receptor_atoms=3264,
    )
    shares = DynamicSpotQueueScheduler().plan(record, node.gpus, _alive(2))
    assert shares[0] == 5000 and shares[1] == 0


@settings(max_examples=50, deadline=None)
@given(
    n_spots=st.integers(1, 30),
    per_spot=st.integers(1, 200),
    dead=st.sets(st.integers(0, 5), max_size=5),
)
def test_schedulers_never_lose_work(n_spots, per_spot, dead):
    node = jupiter()
    counts = {i: per_spot for i in range(n_spots)}
    record = LaunchRecord(
        n_conformations=n_spots * per_spot,
        flops_per_pose=FLOPS,
        spot_counts=counts,
        n_receptor_atoms=3264,
    )
    alive = _alive(6, dead=tuple(dead))
    if not alive.any():
        return
    for scheduler in (
        StaticEqualScheduler(),
        StaticProportionalScheduler(np.ones(6) / 6),
        DynamicSpotQueueScheduler(),
    ):
        shares = scheduler.plan(record, node.gpus, alive)
        assert shares.sum() == record.n_conformations
        assert np.all(shares >= 0)
        assert np.all(shares[~alive] == 0)
