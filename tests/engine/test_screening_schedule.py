"""Screening-level scheduling tests."""

import numpy as np
import pytest

from repro.engine.screening_schedule import (
    LigandWorkload,
    dynamic_screening_makespan,
    static_screening_makespan,
)
from repro.errors import SchedulingError
from repro.experiments.trace import analytic_trace
from repro.hardware.node import hertz


def _workloads(sizes, n_spots=8):
    return [
        LigandWorkload(
            ligand_id=i,
            trace=analytic_trace("M3", n_spots, 3264, n_lig, workload_scale=0.5),
        )
        for i, n_lig in enumerate(sizes)
    ]


def test_static_round_robin_assignment():
    node = hertz()
    schedule = static_screening_makespan(_workloads([30] * 4), node)
    devices = [schedule.assignments[i] for i in range(4)]
    assert devices == [0, 1, 0, 1]
    assert schedule.makespan_s > 0


def test_dynamic_beats_static_on_heterogeneous_devices():
    """Identical ligands, unequal devices: round-robin overloads the
    GTX 580; the pull queue feeds the K40c more."""
    node = hertz()
    work = _workloads([30] * 12)
    static = static_screening_makespan(work, node)
    dynamic = dynamic_screening_makespan(work, node)
    assert dynamic.makespan_s < static.makespan_s
    assert dynamic.balance > static.balance
    counts = np.bincount(list(dynamic.assignments.values()), minlength=2)
    assert counts[0] > counts[1]  # K40c pulls more ligands


def test_dynamic_absorbs_ligand_size_heterogeneity():
    """Mixed ligand sizes amplify the static scheduler's imbalance."""
    node = hertz()
    mixed = _workloads([10, 64, 12, 60, 14, 56, 16, 52])
    static = static_screening_makespan(mixed, node)
    dynamic = dynamic_screening_makespan(mixed, node)
    assert dynamic.makespan_s < static.makespan_s
    # 8 coarse jobs over 2 unequal devices: decent but not perfect balance.
    assert dynamic.balance > 0.75


def test_all_ligands_assigned():
    node = hertz()
    work = _workloads([20, 30, 40])
    for schedule in (
        static_screening_makespan(work, node),
        dynamic_screening_makespan(work, node),
    ):
        assert set(schedule.assignments) == {0, 1, 2}


def test_dynamic_survives_device_failure():
    node = hertz()
    work = _workloads([30] * 6)
    healthy = dynamic_screening_makespan(work, node)
    failing = dynamic_screening_makespan(
        work, node, failures={0: healthy.makespan_s * 0.2}
    )
    assert set(failing.assignments) == {w.ligand_id for w in work}
    assert failing.makespan_s > healthy.makespan_s


def test_job_cost_matches_standalone_run():
    """A ligand job's queue cost must equal the per-launch cost of running
    its trace alone on the same device (launch floors included)."""
    from repro.hardware.perf_model import DEFAULT_PARAMS

    node = hertz()
    work = _workloads([30])[0]
    exact = work.device_seconds(0, node, DEFAULT_PARAMS, None)
    schedule = dynamic_screening_makespan([work], node)
    # One job: the (faster) K40c takes it; makespan == its exact time.
    assert schedule.assignments[0] == 0
    assert schedule.makespan_s == pytest.approx(exact, rel=1e-9)


def test_validation():
    node = hertz()
    with pytest.raises(SchedulingError):
        static_screening_makespan([], node)
    with pytest.raises(SchedulingError):
        dynamic_screening_makespan([], node)
    no_gpus = node.with_gpus([])
    with pytest.raises(SchedulingError):
        static_screening_makespan(_workloads([20]), no_gpus)
