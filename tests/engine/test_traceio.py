"""Trace-serialization tests."""

import io

import pytest

from repro.engine.traceio import (
    TRACE_FORMAT_VERSION,
    dump_trace,
    dumps_trace,
    load_trace,
    loads_trace,
)
from repro.errors import SimulationError
from repro.experiments.trace import analytic_trace


@pytest.fixture()
def trace():
    return analytic_trace("M2", 6, 3264, 45, workload_scale=0.2)


def test_roundtrip_string(trace):
    text = dumps_trace(trace, metadata={"preset": "M2"})
    back, metadata = loads_trace(text)
    assert metadata == {"preset": "M2"}
    assert len(back) == len(trace)
    for a, b in zip(trace, back):
        assert a == b  # LaunchRecord is a frozen dataclass: full equality


def test_roundtrip_file(trace, tmp_path):
    path = tmp_path / "trace.json"
    dump_trace(trace, path)
    back, metadata = load_trace(path)
    assert metadata == {}
    assert back == trace


def test_roundtrip_handle(trace):
    buffer = io.StringIO()
    dump_trace(trace, buffer, metadata={"note": "handle"})
    back, metadata = loads_trace(buffer.getvalue())
    assert back == trace
    assert metadata["note"] == "handle"


def test_replay_of_loaded_trace_matches(trace):
    from repro.engine.executor import MultiGpuExecutor
    from repro.hardware.node import hertz

    executor = MultiGpuExecutor(hertz(), seed=4)
    original, _ = executor.replay(trace, "gpu-heterogeneous")
    back, _meta = loads_trace(dumps_trace(trace))
    replayed, _ = executor.replay(back, "gpu-heterogeneous")
    assert replayed.total_s == pytest.approx(original.total_s, rel=1e-12)


def test_invalid_json_rejected():
    with pytest.raises(SimulationError, match="invalid trace JSON"):
        loads_trace("{not json")


def test_wrong_version_rejected(trace):
    text = dumps_trace(trace).replace(
        f'"format_version": {TRACE_FORMAT_VERSION}', '"format_version": 999'
    )
    with pytest.raises(SimulationError, match="version"):
        loads_trace(text)


def test_malformed_record_rejected():
    doc = (
        '{"format_version": 1, "metadata": {}, '
        '"launches": [{"n_conformations": "many"}]}'
    )
    with pytest.raises(SimulationError, match="malformed launch record #0"):
        loads_trace(doc)
