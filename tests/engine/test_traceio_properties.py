"""Property-based trace-serialization tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.traceio import dumps_trace, loads_trace
from repro.metaheuristics.evaluation import LaunchRecord

spot_counts_strategy = st.dictionaries(
    st.integers(0, 500), st.integers(1, 10_000), min_size=1, max_size=12
)

record_strategy = st.builds(
    lambda counts, flops, kind, rec: LaunchRecord(
        n_conformations=sum(counts.values()),
        flops_per_pose=flops,
        spot_counts=counts,
        kind=kind,
        n_receptor_atoms=rec,
    ),
    counts=spot_counts_strategy,
    flops=st.floats(1.0, 1e9, allow_nan=False, allow_infinity=False),
    kind=st.sampled_from(["population", "improve"]),
    rec=st.integers(1, 100_000),
)


@settings(max_examples=100, deadline=None)
@given(trace=st.lists(record_strategy, min_size=1, max_size=10))
def test_roundtrip_is_lossless(trace):
    """serialise → parse returns records equal to the originals."""
    back, metadata = loads_trace(dumps_trace(trace))
    assert metadata == {}
    assert back == trace


@settings(max_examples=50, deadline=None)
@given(
    trace=st.lists(record_strategy, min_size=1, max_size=5),
    metadata=st.dictionaries(
        st.text(min_size=1, max_size=12), st.integers(-100, 100), max_size=4
    ),
)
def test_metadata_roundtrips(trace, metadata):
    back_trace, back_meta = loads_trace(dumps_trace(trace, metadata))
    assert back_meta == metadata
    assert back_trace == trace
