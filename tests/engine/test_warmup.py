"""Warm-up phase (Eq. 1) tests."""

import numpy as np
import pytest

from repro.engine.warmup import run_warmup
from repro.errors import SchedulingError
from repro.hardware.node import hertz, jupiter
from repro.scoring.base import OPS_PER_LJ_PAIR

FLOPS = 3264 * 45 * OPS_PER_LJ_PAIR


def test_percent_definition_noiseless():
    """Eq. 1: slowest device gets Percent = 1; faster devices < 1."""
    node = hertz()
    result = run_warmup(node.gpus, FLOPS, noise=0.0)
    assert result.percent.max() == pytest.approx(1.0)
    # GTX 580 (index 1) is the slower device.
    assert result.percent[1] == pytest.approx(1.0)
    assert result.percent[0] < 1.0


def test_weights_inverse_to_percent_and_normalised():
    node = hertz()
    result = run_warmup(node.gpus, FLOPS, noise=0.0)
    assert result.weights.sum() == pytest.approx(1.0)
    ratio = result.weights[0] / result.weights[1]
    assert ratio == pytest.approx(result.percent[1] / result.percent[0])
    assert result.weights[0] > result.weights[1]  # K40c gets more work


def test_warmup_smallbatch_bias_underestimates_big_gpu():
    """The warm-up measures small launches, where the K40c is underfilled —
    the measured ratio is below the true sustained ratio. This bias is the
    mechanism behind the paper's sub-optimal balancing gains (1.31–1.41 on
    most Hertz rows vs the ideal 1.57)."""
    node = hertz()
    result = run_warmup(node.gpus, FLOPS, noise=0.0, poses_per_device=256)
    measured_ratio = result.measured_times[1] / result.measured_times[0]
    true_ratio = node.gpus[0].pairs_per_sec / node.gpus[1].pairs_per_sec
    assert measured_ratio < true_ratio


def test_jupiter_warmup_nearly_uniform():
    node = jupiter()
    result = run_warmup(node.gpus, FLOPS, noise=0.0)
    assert result.weights.max() / result.weights.min() < 1.2


def test_noise_requires_rng_and_perturbs():
    node = hertz()
    with pytest.raises(SchedulingError):
        run_warmup(node.gpus, FLOPS, noise=0.05, rng=None)
    rng = np.random.default_rng(0)
    noisy = run_warmup(node.gpus, FLOPS, noise=0.05, rng=rng)
    clean = run_warmup(node.gpus, FLOPS, noise=0.0)
    assert not np.allclose(noisy.weights, clean.weights)
    # Determinism given the seed.
    again = run_warmup(node.gpus, FLOPS, noise=0.05, rng=np.random.default_rng(0))
    np.testing.assert_allclose(noisy.weights, again.weights)


def test_warmup_elapsed_scales_with_iterations():
    node = hertz()
    short = run_warmup(node.gpus, FLOPS, iterations=5, noise=0.0)
    long = run_warmup(node.gpus, FLOPS, iterations=10, noise=0.0)
    assert long.elapsed_s == pytest.approx(2 * short.elapsed_s, rel=1e-6)
    assert short.elapsed_s > 0


def test_warmup_validation():
    node = hertz()
    with pytest.raises(SchedulingError):
        run_warmup([], FLOPS)
    with pytest.raises(SchedulingError):
        run_warmup(node.gpus, FLOPS, iterations=0)
    with pytest.raises(SchedulingError):
        run_warmup(node.gpus, FLOPS, poses_per_device=0)
    with pytest.raises(SchedulingError):
        run_warmup(node.gpus, FLOPS, noise=-0.1)


def test_single_device_degenerates_cleanly():
    node = hertz()
    result = run_warmup(node.gpus[:1], FLOPS, noise=0.0)
    assert result.percent[0] == pytest.approx(1.0)
    assert result.weights[0] == pytest.approx(1.0)
