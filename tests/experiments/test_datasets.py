"""Dataset-spec tests (Table 5 fidelity)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.datasets import (
    dataset_names,
    get_dataset,
    materialize_dataset,
    paper_spot_count,
)


def test_table5_atom_counts():
    bsm = get_dataset("2BSM")
    assert bsm.receptor_atoms == 3264
    assert bsm.ligand_atoms == 45
    bxg = get_dataset("2BXG")
    assert bxg.receptor_atoms == 8609
    assert bxg.ligand_atoms == 32


def test_dataset_names():
    assert dataset_names() == ("2BSM", "2BXG")


def test_unknown_dataset():
    with pytest.raises(ExperimentError):
        get_dataset("1ABC")


def test_pairs_per_pose():
    assert get_dataset("2BSM").pairs_per_pose == 3264 * 45
    assert get_dataset("2BXG").pairs_per_pose == 8609 * 32


def test_spot_counts_scale_with_surface_area():
    """2BXG's surface is (8609/3264)^(2/3) ≈ 1.91× larger: so is its spot
    count (the workload-model premise)."""
    s_bsm = get_dataset("2BSM").n_spots
    s_bxg = get_dataset("2BXG").n_spots
    assert s_bxg / s_bsm == pytest.approx((8609 / 3264) ** (2 / 3), rel=0.01)
    assert 850 < s_bsm < 1000
    assert 1650 < s_bxg < 1900


def test_paper_spot_count_validation():
    with pytest.raises(ExperimentError):
        paper_spot_count(0)


def test_materialize_builds_exact_structures():
    bound = materialize_dataset("2BSM", n_spots=6)
    assert bound.receptor.n_atoms == 3264
    assert bound.ligand.n_atoms == 45
    assert len(bound.spots) == 6
    assert "2BSM" in bound.receptor.title


def test_materialize_is_cached():
    a = materialize_dataset("2BSM", n_spots=6)
    b = materialize_dataset("2BSM", n_spots=6)
    assert a is b
