"""Whole-harness determinism: two runs produce identical tables."""

import numpy as np

from repro.experiments.runner import hertz_table, jupiter_table


def _cells(table):
    return {
        (row.preset, key): cell.seconds
        for row in table.rows
        for key, cell in row.cells.items()
    }


def test_tables_regenerate_identically():
    """The EXPERIMENTS.md reproducibility claim, asserted: consecutive
    harness runs are bit-identical (all stochastic elements are seeded)."""
    for maker, dataset in (
        (jupiter_table, "2BSM"),
        (hertz_table, "2BXG"),
    ):
        first = _cells(maker(dataset, workload_scale=0.1))
        second = _cells(maker(dataset, workload_scale=0.1))
        assert first.keys() == second.keys()
        for key in first:
            assert first[key] == second[key], key


def test_measured_mode_deterministic():
    from repro.experiments.datasets import get_dataset
    from repro.experiments.runner import run_cell
    from repro.hardware.node import hertz

    kwargs = dict(
        node=hertz(),
        dataset=get_dataset("2BSM"),
        preset_name="M1",
        mode="gpu-heterogeneous",
        workload_scale=0.05,
        measured=True,
        measured_spots=3,
    )
    a = run_cell(**kwargs)
    b = run_cell(**kwargs)
    assert a.seconds == b.seconds


def test_full_scale_seconds_are_finite_and_positive():
    table = jupiter_table("2BSM")
    for row in table.rows:
        for cell in row.cells.values():
            assert np.isfinite(cell.seconds)
            assert cell.seconds > 0
