"""Table-runner tests: the headline reproduction claims, asserted.

These tests regenerate Tables 6–9 (analytic mode, milliseconds per cell)
and pin the paper's qualitative findings:

1. multiGPU speed-ups of tens of × over OpenMP, growing with receptor size;
2. heterogeneous-vs-homogeneous computation gains ≈1.3–1.6× on Hertz but
   only ≈1.0–1.1× on Jupiter (GTX 590 ≈ C2075);
3. more local-search intensification ⇒ higher speed-up (M4 max, M2 > M1);
4. absolute simulated seconds within a modest factor of the paper's values.
"""

import pytest

from repro.experiments.runner import cell_seed, hertz_table, jupiter_table, run_cell
from repro.experiments.tables import paper_reference
from repro.experiments.datasets import get_dataset
from repro.hardware.node import hertz


@pytest.fixture(scope="module")
def t_jup_bsm():
    return jupiter_table("2BSM")


@pytest.fixture(scope="module")
def t_jup_bxg():
    return jupiter_table("2BXG")


@pytest.fixture(scope="module")
def t_her_bsm():
    return hertz_table("2BSM")


@pytest.fixture(scope="module")
def t_her_bxg():
    return hertz_table("2BXG")


def _speedup(row, base="openmp", target="het_system_het_comp"):
    return row.seconds(base) / row.seconds(target)


def _gain(row):
    return row.seconds("het_system_hom_comp") / row.seconds("het_system_het_comp")


# ----------------------------------------------------------------------
# Claim 1: GPU >> CPU, growing with receptor size
# ----------------------------------------------------------------------
def test_gpu_speedups_in_paper_band_jupiter(t_jup_bsm, t_jup_bxg):
    for row in t_jup_bsm.rows:
        assert 40 < _speedup(row) < 75  # paper: 50.4–64.2
    for row in t_jup_bxg.rows:
        assert 70 < _speedup(row) < 105  # paper: 81.5–93.1


def test_gpu_speedups_in_paper_band_hertz(t_her_bsm, t_her_bxg):
    for row in t_her_bsm.rows:
        assert 60 < _speedup(row) < 100  # paper: 71.8–87.2
    for row in t_her_bxg.rows:
        assert 95 < _speedup(row) < 140  # paper: 94.0–120.4


def test_speedup_grows_with_receptor_size(t_jup_bsm, t_jup_bxg, t_her_bsm, t_her_bxg):
    """§5: 'the speed-up increases with the problem size'."""
    for small, large in ((t_jup_bsm, t_jup_bxg), (t_her_bsm, t_her_bxg)):
        for preset in ("M1", "M2", "M3", "M4"):
            assert _speedup(large.row(preset)) > _speedup(small.row(preset))


# ----------------------------------------------------------------------
# Claim 2: heterogeneity gains by machine
# ----------------------------------------------------------------------
def test_hertz_heterogeneous_gains(t_her_bsm, t_her_bxg):
    """Paper Table 8/9: gains 1.31–1.57 on K40c + GTX 580."""
    for table in (t_her_bsm, t_her_bxg):
        for row in table.rows:
            assert 1.25 < _gain(row) < 1.65


def test_jupiter_heterogeneous_gains_marginal(t_jup_bsm, t_jup_bxg):
    """Paper Table 6/7: ≤6 % gains — GTX 590 and C2075 are near-equal."""
    for table in (t_jup_bsm, t_jup_bxg):
        for row in table.rows:
            assert 0.97 < _gain(row) < 1.10


def test_hertz_gains_exceed_jupiter_gains(t_jup_bsm, t_her_bsm):
    for preset in ("M1", "M2", "M3", "M4"):
        assert _gain(t_her_bsm.row(preset)) > _gain(t_jup_bsm.row(preset)) + 0.2


# ----------------------------------------------------------------------
# Claim 3: intensification raises speed-ups
# ----------------------------------------------------------------------
def test_m4_has_highest_speedup(t_jup_bsm, t_jup_bxg, t_her_bsm, t_her_bxg):
    """§5: M4 achieves 'the best speed-up ratios'."""
    for table in (t_jup_bsm, t_jup_bxg, t_her_bsm, t_her_bxg):
        speedups = {row.preset: _speedup(row) for row in table.rows}
        assert speedups["M4"] == max(speedups.values())


def test_m2_beats_m1_speedup(t_jup_bsm, t_jup_bxg):
    """§5: 'more intensive searches provide higher speed-up ratios'."""
    for table in (t_jup_bsm, t_jup_bxg):
        assert _speedup(table.row("M2")) > _speedup(table.row("M1"))


# ----------------------------------------------------------------------
# Claim 4: absolute magnitudes
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "maker,node,dataset",
    [
        (jupiter_table, "jupiter", "2BSM"),
        (jupiter_table, "jupiter", "2BXG"),
        (hertz_table, "hertz", "2BSM"),
    ],
)
def test_absolute_seconds_close_to_paper(maker, node, dataset, request):
    cache = {
        ("jupiter", "2BSM"): "t_jup_bsm",
        ("jupiter", "2BXG"): "t_jup_bxg",
        ("hertz", "2BSM"): "t_her_bsm",
    }
    table = request.getfixturevalue(cache[(node, dataset)])
    ref = paper_reference(node, dataset)
    for row in table.rows:
        for column, paper_value in ref[row.preset].items():
            ours = row.seconds(column)
            assert ours == pytest.approx(paper_value, rel=0.25), (
                f"{node}/{dataset}/{row.preset}/{column}: "
                f"{ours:.2f} vs paper {paper_value:.2f}"
            )


def test_hertz_2bxg_known_deviation(t_her_bxg):
    """Hertz/2BXG OpenMP rows for M1–M3 deviate (the paper's own numbers
    are internally inconsistent there — see EXPERIMENTS.md); the GPU
    columns and the M4 row still match."""
    ref = paper_reference("hertz", "2BXG")
    for row in t_her_bxg.rows:
        for column in ("het_system_hom_comp", "het_system_het_comp"):
            assert row.seconds(column) == pytest.approx(
                ref[row.preset][column], rel=0.25
            )
    assert t_her_bxg.row("M4").seconds("openmp") == pytest.approx(
        ref["M4"]["openmp"], rel=0.25
    )


# ----------------------------------------------------------------------
# runner mechanics
# ----------------------------------------------------------------------
def test_cell_seed_is_deterministic_and_distinct():
    a = cell_seed("hertz", "2BSM", "M1")
    assert a == cell_seed("hertz", "2BSM", "M1")
    assert a != cell_seed("hertz", "2BSM", "M2")
    assert a != cell_seed("jupiter", "2BSM", "M1")


def test_run_cell_measured_mode():
    cell = run_cell(
        hertz(),
        get_dataset("2BSM"),
        "M1",
        "gpu-heterogeneous",
        workload_scale=0.05,
        measured=True,
        measured_spots=3,
    )
    assert cell.seconds > 0
    assert cell.timing.n_conformations > 0


def test_workload_scale_shrinks_times():
    full = run_cell(hertz(), get_dataset("2BSM"), "M1", "openmp")
    tenth = run_cell(
        hertz(), get_dataset("2BSM"), "M1", "openmp", workload_scale=0.1
    )
    assert tenth.seconds < full.seconds / 5
