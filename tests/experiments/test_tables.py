"""Table-formatting tests."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.runner import hertz_table, jupiter_table
from repro.experiments.tables import (
    PAPER_TABLES,
    format_hertz_table,
    format_jupiter_table,
    paper_reference,
)


def test_paper_tables_complete():
    assert set(PAPER_TABLES) == {
        ("jupiter", "2BSM"),
        ("jupiter", "2BXG"),
        ("hertz", "2BSM"),
        ("hertz", "2BXG"),
    }
    for table in PAPER_TABLES.values():
        assert set(table) == {"M1", "M2", "M3", "M4"}


def test_paper_values_sanity():
    """Spot-check the transcription against the paper."""
    assert PAPER_TABLES[("jupiter", "2BSM")]["M1"]["openmp"] == 269.45
    assert PAPER_TABLES[("jupiter", "2BXG")]["M4"]["het_system_het_comp"] == 757.32
    assert PAPER_TABLES[("hertz", "2BSM")]["M4"]["openmp"] == 29144.06
    assert PAPER_TABLES[("hertz", "2BXG")]["M2"]["het_system_hom_comp"] == 55.56


def test_paper_reference_unknown():
    with pytest.raises(ExperimentError):
        paper_reference("saturn", "2BSM")


def test_format_jupiter_table_layout():
    table = jupiter_table("2BSM", workload_scale=0.02)
    text = format_jupiter_table(table)
    assert "PDB:2BSM on Jupiter" in text
    assert "Hom.System" in text
    for preset in ("M1", "M2", "M3", "M4"):
        assert preset in text
    assert "paper" in text  # reference rows interleaved
    plain = format_jupiter_table(table, compare_paper=False)
    assert "paper" not in plain


def test_format_hertz_table_layout():
    table = hertz_table("2BXG", workload_scale=0.02)
    text = format_hertz_table(table)
    assert "PDB:2BXG on Hertz" in text
    assert "SU omp/het" in text
    assert text.count("\n") >= 9
