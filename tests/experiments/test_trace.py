"""Analytic-trace tests: the harness contract.

The key property: for any workload scale, the analytic trace equals —
launch by launch — what a real metaheuristic run records. This is what
makes the full-scale table regeneration trustworthy without running days
of host math.
"""

import pytest

from repro.errors import ExperimentError
from repro.experiments.trace import analytic_trace, trace_totals
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.evaluation import SerialEvaluator
from repro.metaheuristics.presets import expected_evaluations_per_spot, make_preset
from repro.metaheuristics.rng import SpotRngPool
from repro.metaheuristics.template import run_metaheuristic


@pytest.mark.parametrize("name", ["M1", "M2", "M3", "M4"])
@pytest.mark.parametrize("scale", [0.05, 0.1])
def test_analytic_trace_matches_recorded_trace(name, scale, spots, fast_scorer):
    ctx = SearchContext(
        spots=spots,
        evaluator=SerialEvaluator(fast_scorer),
        rng=SpotRngPool(0, [s.index for s in spots]),
    )
    run_metaheuristic(make_preset(name, scale), ctx)
    recorded = ctx.evaluator.stats.launches

    predicted = analytic_trace(
        name,
        n_spots=len(spots),
        n_receptor_atoms=fast_scorer.receptor.n_atoms,
        n_ligand_atoms=fast_scorer.ligand.n_atoms,
        workload_scale=scale,
    )
    assert len(predicted) == len(recorded)
    for p, r in zip(predicted, recorded):
        assert p.n_conformations == r.n_conformations
        assert p.kind == r.kind
        assert p.flops_per_pose == pytest.approx(r.flops_per_pose)
        assert p.n_receptor_atoms == r.n_receptor_atoms
        assert sum(p.spot_counts.values()) == sum(r.spot_counts.values())


@pytest.mark.parametrize("name", ["M1", "M2", "M3", "M4"])
def test_full_scale_trace_totals(name):
    trace = analytic_trace(name, n_spots=10, n_receptor_atoms=3264, n_ligand_atoms=45)
    totals = trace_totals(trace)
    assert totals["n_conformations"] == 10 * expected_evaluations_per_spot(name)
    assert totals["total_flops"] == pytest.approx(
        totals["n_conformations"] * 3264 * 45 * 18
    )


def test_trace_kind_structure_m1():
    """M1 (no local search): init + one offspring launch per iteration."""
    trace = analytic_trace("M1", 4, 3264, 45)
    assert all(r.kind == "population" for r in trace)
    assert len(trace) == 1 + 40


def test_trace_kind_structure_m4():
    """M4: one init launch + 128 improve launches, nothing else."""
    trace = analytic_trace("M4", 4, 3264, 45)
    assert trace[0].kind == "population"
    assert all(r.kind == "improve" for r in trace[1:])
    assert len(trace) == 1 + 128
    assert trace[0].n_conformations == 4 * 1024


def test_trace_validation():
    with pytest.raises(ExperimentError):
        analytic_trace("M9", 4, 100, 10)
    with pytest.raises(ExperimentError):
        analytic_trace("M1", 0, 100, 10)
