"""Reproduction-robustness tests: the shape claims are not knife-edge."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.validation import (
    PERTURBABLE_PARAMS,
    ShapeClaims,
    check_shape_claims,
    _tables_for,
    seed_stability,
    sensitivity_sweep,
)
from repro.hardware.perf_model import DEFAULT_PARAMS


def test_baseline_claims_all_hold():
    claims = check_shape_claims(*_tables_for(DEFAULT_PARAMS, 1.0))
    assert claims.all_hold(), claims.failed()


def test_claims_object_reports_failures():
    claims = ShapeClaims()
    assert claims.all_hold()
    claims.m2_beats_m1 = False
    assert not claims.all_hold()
    assert claims.failed() == ["m2_beats_m1"]


@pytest.mark.parametrize("parameter", PERTURBABLE_PARAMS)
def test_claims_survive_25pct_perturbations(parameter):
    """Every headline claim must survive ±25 % on every calibration
    constant — the conclusions come from the structure, not the tuning."""
    rows = sensitivity_sweep(
        factors=(0.75, 1.25), parameters=(parameter,), workload_scale=1.0
    )
    for row in rows:
        assert row.claims.all_hold(), (
            f"{row.parameter} × {row.factor} broke {row.claims.failed()}"
        )


def test_warmup_seed_spread_within_paper_band():
    """Across warm-up seeds the Hertz M2 gain stays inside the paper's
    observed 1.31–1.57 band."""
    lo, hi = seed_stability(n_seeds=8)["hertz_m2_gain"]
    assert 1.25 < lo <= hi < 1.65


def test_validation_input_checks():
    with pytest.raises(ExperimentError):
        sensitivity_sweep(factors=())
    with pytest.raises(ExperimentError):
        sensitivity_sweep(parameters=("warp_drive",))
    with pytest.raises(ExperimentError):
        sensitivity_sweep(factors=(-1.0,), parameters=("cpu_cache_n0",))
    with pytest.raises(ExperimentError):
        seed_stability(n_seeds=1)
