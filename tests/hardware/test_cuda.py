"""CUDA execution-model arithmetic tests."""

import pytest

from repro.errors import HardwareModelError
from repro.hardware.cuda import (
    KernelConfig,
    launch_geometry,
    occupancy_blocks_per_sm,
)
from repro.hardware.registry import get_gpu


def test_default_config_reaches_full_occupancy_fermi_and_kepler():
    config = KernelConfig()
    for name in ("GeForce GTX 580", "GeForce GTX 590", "Tesla C2075"):
        gpu = get_gpu(name)
        per_sm = occupancy_blocks_per_sm(gpu, config)
        assert per_sm * config.threads_per_block == gpu.max_threads_per_sm
    k40 = get_gpu("Tesla K40c")
    per_sm = occupancy_blocks_per_sm(k40, config)
    assert per_sm * config.threads_per_block == k40.max_threads_per_sm


def test_register_pressure_limits_occupancy():
    gpu = get_gpu("GeForce GTX 580")  # 32768 regs/SM on CCC 2.0
    heavy = KernelConfig(registers_per_thread=64)
    light = KernelConfig(registers_per_thread=20)
    assert occupancy_blocks_per_sm(gpu, heavy) < occupancy_blocks_per_sm(gpu, light)


def test_shared_memory_limits_occupancy():
    gpu = get_gpu("Tesla K40c")
    hungry = KernelConfig(shared_bytes_per_block=24 * 1024)
    assert occupancy_blocks_per_sm(gpu, hungry) == 2  # 48 KB / 24 KB


def test_block_too_large_raises():
    gpu = get_gpu("GeForce GTX 580")
    with pytest.raises(HardwareModelError, match="exceeds"):
        occupancy_blocks_per_sm(gpu, KernelConfig(warps_per_block=64))


def test_config_validation():
    with pytest.raises(HardwareModelError):
        KernelConfig(warps_per_block=0)
    with pytest.raises(HardwareModelError):
        KernelConfig(registers_per_thread=0)
    with pytest.raises(HardwareModelError):
        KernelConfig(shared_bytes_per_block=-1)


def test_geometry_small_launch_single_wave():
    gpu = get_gpu("GeForce GTX 580")
    geom = launch_geometry(gpu, 8)
    assert geom.blocks == 1
    assert geom.waves == 1
    assert geom.n_conformations == 8


def test_geometry_blocks_round_up():
    gpu = get_gpu("GeForce GTX 580")
    config = KernelConfig(warps_per_block=8)
    geom = launch_geometry(gpu, 17, config)
    assert geom.blocks == 3  # ceil(17/8)


def test_geometry_wave_count():
    gpu = get_gpu("GeForce GTX 580")  # 16 SMs × 6 blocks = 96 concurrent
    config = KernelConfig()
    per_sm = occupancy_blocks_per_sm(gpu, config)
    concurrent = per_sm * gpu.multiprocessors
    n = concurrent * config.warps_per_block * 3  # exactly 3 waves of warps
    geom = launch_geometry(gpu, n, config)
    assert geom.waves == 3
    geom_plus = launch_geometry(gpu, n + 1, config)
    assert geom_plus.waves == 4


def test_geometry_occupancy_value():
    gpu = get_gpu("Tesla K40c")
    geom = launch_geometry(gpu, 1024)
    assert geom.occupancy == pytest.approx(1.0)
    low = launch_geometry(gpu, 1024, KernelConfig(registers_per_thread=64))
    assert low.occupancy < 1.0


def test_geometry_validation():
    gpu = get_gpu("Tesla K40c")
    with pytest.raises(HardwareModelError):
        launch_geometry(gpu, 0)
