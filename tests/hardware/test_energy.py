"""Energy-model tests."""

import numpy as np
import pytest

from repro.engine.executor import MultiGpuExecutor
from repro.engine.reporting import TimingBreakdown
from repro.errors import HardwareModelError
from repro.experiments.trace import analytic_trace
from repro.hardware.energy import (
    CPU_TDP_W,
    DEVICE_TDP_W,
    energy_report,
)
from repro.hardware.node import custom_node, hertz, jupiter
from repro.hardware.registry import GPUS


def _run(node, mode):
    trace = analytic_trace("M2", 919, 3264, 45)
    timing, _ = MultiGpuExecutor(node, seed=5).replay(trace, mode)
    return timing


def test_all_registry_devices_have_tdp():
    for name in GPUS:
        assert name in DEVICE_TDP_W
    assert "Xeon E5-2620" in CPU_TDP_W
    assert "Xeon E3-1220" in CPU_TDP_W


def test_energy_components_positive():
    node = hertz()
    report = energy_report(node, _run(node, "gpu-heterogeneous"))
    assert report.gpu_active_j > 0
    assert report.gpu_idle_j >= 0
    assert report.cpu_j > 0
    assert report.total_j == pytest.approx(
        report.gpu_active_j + report.gpu_idle_j + report.cpu_j
    )


def test_balanced_run_wastes_less_energy():
    """The §6 claim: heterogeneity wastes energy unless balanced — the
    equal split leaves the K40c idle, burning idle watts."""
    node = hertz()
    hom = energy_report(node, _run(node, "gpu-homogeneous"))
    het = energy_report(node, _run(node, "gpu-heterogeneous"))
    assert het.total_j < hom.total_j
    assert het.waste_fraction < hom.waste_fraction


def test_gpu_run_uses_less_energy_than_openmp():
    """GPUs burn more watts but finish ~60× sooner: energy to solution is
    far lower — the era's GPU-computing selling point."""
    node = jupiter()
    gpu = energy_report(node, _run(node, "gpu-heterogeneous"))
    cpu = energy_report(node, _run(node, "openmp"), gpus_used=False)
    assert gpu.total_j < cpu.total_j / 5


def test_openmp_energy_includes_idle_gpus():
    node = hertz()
    report = energy_report(node, _run(node, "openmp"), gpus_used=False)
    assert report.gpu_active_j == 0.0
    assert report.gpu_idle_j > 0.0  # boards idle but powered


def test_unknown_device_raises():
    from dataclasses import replace

    from repro.hardware.registry import get_gpu

    node = custom_node("x", "Xeon E3-1220", 1, ["Tesla K20"])
    unknown = replace(get_gpu("Tesla K20"), name="Unknown GPU")
    node = node.with_gpus([unknown])
    timing = TimingBreakdown(
        scoring_s=1.0, device_busy_s=np.array([1.0])
    )
    with pytest.raises(HardwareModelError):
        energy_report(node, timing)
