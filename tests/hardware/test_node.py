"""Node-spec tests (Jupiter and Hertz)."""

import pytest

from repro.errors import HardwareModelError
from repro.hardware.node import NodeSpec, custom_node, hertz, jupiter
from repro.hardware.registry import get_cpu


def test_jupiter_matches_table2():
    node = jupiter()
    assert node.total_cpu_cores == 12
    assert node.n_gpus == 6
    names = [g.name for g in node.gpus]
    assert names.count("GeForce GTX 590") == 4
    assert names.count("Tesla C2075") == 2
    assert not node.is_gpu_homogeneous


def test_hertz_matches_table3():
    node = hertz()
    assert node.total_cpu_cores == 4
    assert node.n_gpus == 2
    assert node.gpus[0].name == "Tesla K40c"
    assert node.gpus[1].name == "GeForce GTX 580"
    assert not node.is_gpu_homogeneous


def test_with_gpus_carves_homogeneous_subsystem():
    node = jupiter()
    hom = node.with_gpus([g for g in node.gpus if g.name == "GeForce GTX 590"])
    assert hom.n_gpus == 4
    assert hom.is_gpu_homogeneous
    assert hom.total_cpu_cores == 12  # CPUs unchanged
    assert node.n_gpus == 6  # original untouched


def test_custom_node():
    node = custom_node("lab", "Xeon E3-1220", 2, ["Tesla K20", "Tesla K20"])
    assert node.total_cpu_cores == 8
    assert node.is_gpu_homogeneous
    assert "lab" in node.describe()


def test_custom_node_unknown_device():
    with pytest.raises(HardwareModelError):
        custom_node("bad", "Xeon E3-1220", 1, ["GTX 9999"])


def test_node_validation():
    with pytest.raises(HardwareModelError):
        NodeSpec(name="x", cpu=get_cpu("Xeon E3-1220"), cpu_sockets=0)


def test_describe_mentions_devices():
    text = hertz().describe()
    assert "K40c" in text
    assert "E3-1220" in text
