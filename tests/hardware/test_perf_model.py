"""Performance-model tests: monotonicity, roofline, calibration anchors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareModelError
from repro.hardware.node import hertz, jupiter
from repro.hardware.perf_model import (
    DEFAULT_PARAMS,
    PerfModelParams,
    cpu_batch_time,
    cpu_pair_rate,
    gpu_launch_time,
    transfer_time,
)
from repro.hardware.registry import get_cpu, get_gpu
from repro.scoring.base import OPS_PER_LJ_PAIR

FLOPS_2BSM = 3264 * 45 * OPS_PER_LJ_PAIR


def test_gpu_time_monotone_in_poses():
    gpu = get_gpu("GeForce GTX 580")
    times = [
        gpu_launch_time(gpu, n, FLOPS_2BSM).total_s
        for n in (128, 1024, 8192, 65536)
    ]
    assert all(a < b for a, b in zip(times, times[1:]))


def test_gpu_time_scales_linearly_at_scale():
    gpu = get_gpu("Tesla K40c")
    t1 = gpu_launch_time(gpu, 100_000, FLOPS_2BSM).total_s
    t2 = gpu_launch_time(gpu, 200_000, FLOPS_2BSM).total_s
    assert t2 / t1 == pytest.approx(2.0, rel=0.05)


def test_faster_gpu_is_faster():
    n = 50_000
    slow = gpu_launch_time(get_gpu("Tesla C2075"), n, FLOPS_2BSM).total_s
    fast = gpu_launch_time(get_gpu("Tesla K40c"), n, FLOPS_2BSM).total_s
    assert fast < slow
    assert slow / fast == pytest.approx(39.5 / 13.6, rel=0.1)


def test_large_launch_efficiency_approaches_sustained():
    """At scale, modelled throughput converges to the calibrated rate."""
    gpu = get_gpu("GeForce GTX 590")
    n = 1_000_000
    t = gpu_launch_time(gpu, n, FLOPS_2BSM)
    pairs = n * FLOPS_2BSM / OPS_PER_LJ_PAIR
    rate = pairs / t.total_s
    assert rate == pytest.approx(gpu.pairs_per_sec, rel=0.05)


def test_small_launch_pays_partial_wave_floor():
    gpu = get_gpu("Tesla K40c")
    t1 = gpu_launch_time(gpu, 1, FLOPS_2BSM)
    t64 = gpu_launch_time(gpu, 64, FLOPS_2BSM)
    # 1 pose and 64 poses both fit one partial wave under the floor: equal.
    assert t1.compute_s == pytest.approx(t64.compute_s)


def test_compute_bound_for_tiled_lj():
    gpu = get_gpu("GeForce GTX 580")
    t = gpu_launch_time(gpu, 10_000, FLOPS_2BSM)
    assert t.compute_s > 10 * t.memory_s


def test_memory_bound_kernel_respects_roofline():
    gpu = get_gpu("GeForce GTX 580")
    # A kernel with tiny arithmetic but huge traffic is bandwidth-bound.
    t = gpu_launch_time(gpu, 10_000, flops_per_pose=100.0, bytes_per_pose=1e6)
    assert t.memory_s > t.compute_s
    assert t.total_s >= t.memory_s


def test_transfer_time_components():
    params = DEFAULT_PARAMS
    t = transfer_time(1000, params)
    assert t > 2 * params.pcie_latency_s
    assert t == pytest.approx(
        2 * params.pcie_latency_s + 1000 * 32 / (params.pcie_bandwidth_gbs * 1e9)
    )


def test_gpu_launch_validation():
    gpu = get_gpu("Tesla K40c")
    with pytest.raises(HardwareModelError):
        gpu_launch_time(gpu, 0, FLOPS_2BSM)
    with pytest.raises(HardwareModelError):
        gpu_launch_time(gpu, 10, 0.0)


# ----------------------------------------------------------------------
# CPU model
# ----------------------------------------------------------------------
def test_cpu_rate_scales_with_cores_and_clock():
    cpu = get_cpu("Xeon E5-2620")
    r6 = cpu_pair_rate(cpu, 6, 3264)
    r12 = cpu_pair_rate(cpu, 12, 3264)
    assert r12 == pytest.approx(2 * r6)


def test_cpu_rate_degrades_with_receptor_size():
    """The cache model: 8609-atom receptor ≈ 1.45× slower per pair than
    3264 (the ratio implied by the paper's Jupiter M4 rows)."""
    cpu = get_cpu("Xeon E5-2620")
    ratio = cpu_pair_rate(cpu, 12, 3264) / cpu_pair_rate(cpu, 12, 8609)
    assert ratio == pytest.approx(1.448, rel=0.02)


def test_cpu_batch_time_is_work_over_rate():
    cpu = get_cpu("Xeon E3-1220")
    t = cpu_batch_time(cpu, 4, 1000, FLOPS_2BSM, 3264)
    pairs = 1000 * 3264 * 45
    assert t == pytest.approx(pairs / cpu_pair_rate(cpu, 4, 3264))


def test_cpu_validation():
    cpu = get_cpu("Xeon E3-1220")
    with pytest.raises(HardwareModelError):
        cpu_pair_rate(cpu, 0, 100)
    with pytest.raises(HardwareModelError):
        cpu_pair_rate(cpu, 4, 0)
    with pytest.raises(HardwareModelError):
        cpu_batch_time(cpu, 4, 0, FLOPS_2BSM, 3264)


# ----------------------------------------------------------------------
# Calibration anchors (the paper's headline ratios)
# ----------------------------------------------------------------------
def test_hertz_device_speed_ratio_supports_paper_gains():
    """Perfect balancing on Hertz would gain (1+r)/2 ≈ 1.57 over the equal
    split — the paper's best observed gain (M1, Table 8)."""
    node = hertz()
    r = node.gpus[0].pairs_per_sec / node.gpus[1].pairs_per_sec
    assert (1 + r) / 2 == pytest.approx(1.57, abs=0.05)


def test_jupiter_device_speeds_nearly_equal():
    """GTX 590 vs C2075 within ~7 % — why Jupiter's heterogeneous gains
    are marginal (≤6 %, §5)."""
    node = jupiter()
    speeds = sorted({g.pairs_per_sec for g in node.gpus})
    assert speeds[-1] / speeds[0] < 1.10


def test_gpu_vs_cpu_speedup_band():
    """Aggregate GPU/CPU throughput ratio must land in the paper's
    speed-up bands (50–95× for 2BSM at M4-like workloads)."""
    node = jupiter()
    gpu_rate = sum(g.pairs_per_sec for g in node.gpus)
    cpu_rate = cpu_pair_rate(node.cpu, node.total_cpu_cores, 3264)
    assert 40 < gpu_rate / cpu_rate < 90


def test_params_with_overrides():
    params = DEFAULT_PARAMS.with_overrides(pcie_bandwidth_gbs=12.0)
    assert params.pcie_bandwidth_gbs == 12.0
    assert DEFAULT_PARAMS.pcie_bandwidth_gbs == 6.0
    assert params.host_op_cost_s == DEFAULT_PARAMS.host_op_cost_s


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 10**6),
    flops=st.floats(1e3, 1e8),
)
def test_gpu_time_always_positive_and_finite(n, flops):
    t = gpu_launch_time(get_gpu("Tesla K40c"), n, flops)
    assert np.isfinite(t.total_s)
    assert t.total_s > 0


@settings(max_examples=30, deadline=None)
@given(n1=st.integers(1, 10**5), n2=st.integers(1, 10**5))
def test_gpu_time_monotone_property(n1, n2):
    gpu = get_gpu("GeForce GTX 590")
    t1 = gpu_launch_time(gpu, n1, FLOPS_2BSM).total_s
    t2 = gpu_launch_time(gpu, n2, FLOPS_2BSM).total_s
    if n1 <= n2:
        assert t1 <= t2 + 1e-12
