"""Device-spec and Table 1 data tests."""

import pytest

from repro.errors import HardwareModelError
from repro.hardware.registry import CPUS, GPUS, get_cpu, get_gpu
from repro.hardware.specs import (
    CUDA_GENERATIONS,
    CpuSpec,
    GpuArchitecture,
    GpuSpec,
)


def test_table1_contents_match_paper():
    by_name = {g.name: g for g in CUDA_GENERATIONS}
    assert by_name["Tesla"].year == 2007
    assert by_name["Tesla"].max_cores == 240
    assert by_name["Fermi"].cores_per_sm == 32
    assert by_name["Kepler"].max_cores == 2880
    assert by_name["Kepler"].peak_sp_gflops == 4290
    assert by_name["Maxwell"].shared_kb == 64
    assert by_name["Maxwell"].perf_per_watt == 12


def test_perf_per_watt_doubles_per_generation():
    """Paper: 'power consumption has been reduced by a factor of 2 at each
    new generation' — perf/W strictly increases, 1→2→6→12."""
    values = [g.perf_per_watt for g in CUDA_GENERATIONS]
    assert values == sorted(values)
    assert values[0] == 1 and values[-1] == 12


def test_table2_jupiter_devices():
    gtx590 = get_gpu("GeForce GTX 590")
    assert gtx590.total_cores == 512
    assert gtx590.multiprocessors == 16
    assert gtx590.clock_mhz == 1215
    assert gtx590.ccc == "2.0"
    c2075 = get_gpu("Tesla C2075")
    assert c2075.total_cores == 448
    assert c2075.multiprocessors == 14
    assert c2075.memory_mb == 5375


def test_table3_hertz_devices():
    k40 = get_gpu("Tesla K40c")
    assert k40.total_cores == 2880
    assert k40.cores_per_sm == 192
    assert k40.bandwidth_gbs == pytest.approx(288.38)
    gtx580 = get_gpu("GeForce GTX 580")
    assert gtx580.clock_mhz == 1544


def test_ccc_limits():
    k40 = get_gpu("Tesla K40c")
    assert k40.max_threads_per_sm == 2048
    assert k40.max_blocks_per_sm == 16
    fermi = get_gpu("GeForce GTX 580")
    assert fermi.max_threads_per_sm == 1536
    assert fermi.max_blocks_per_sm == 8
    assert fermi.max_threads_per_block == 1024


def test_calibrated_throughput_ratios():
    """The calibration must encode the paper's observed device ordering."""
    k40 = get_gpu("Tesla K40c").pairs_per_sec
    gtx580 = get_gpu("GeForce GTX 580").pairs_per_sec
    gtx590 = get_gpu("GeForce GTX 590").pairs_per_sec
    c2075 = get_gpu("Tesla C2075").pairs_per_sec
    assert k40 / gtx580 == pytest.approx(2.15, rel=0.05)
    assert gtx590 / c2075 == pytest.approx(1.066, rel=0.05)
    assert k40 > gtx580 > gtx590 > c2075


def test_uncalibrated_gpu_uses_architecture_constant():
    k20 = get_gpu("Tesla K20")
    assert k20.sustained_pairs_per_sec == 0.0
    expected = k20.total_cores * k20.clock_mhz * 1e6 * 0.0184
    assert k20.pairs_per_sec == pytest.approx(expected)


def test_cpu_specs():
    e5 = get_cpu("Xeon E5-2620")
    assert e5.cores == 6
    assert e5.clock_mhz == 2000
    e3 = get_cpu("Xeon E3-1220")
    assert e3.cores == 4
    assert e3.clock_mhz == 3100


def test_registry_lookups_raise_on_unknown():
    with pytest.raises(HardwareModelError):
        get_gpu("GeForce RTX 4090")
    with pytest.raises(HardwareModelError):
        get_cpu("Ryzen 9")


def test_spec_validation():
    with pytest.raises(HardwareModelError):
        GpuSpec(
            name="bad",
            architecture=GpuArchitecture.FERMI,
            multiprocessors=0,
            cores_per_sm=32,
            clock_mhz=1000,
            memory_mb=1024,
            bandwidth_gbs=100,
            ccc="2.0",
        )
    with pytest.raises(HardwareModelError):
        CpuSpec(name="bad", cores=0, clock_mhz=2000)


def test_registries_are_consistent():
    for name, gpu in GPUS.items():
        assert gpu.name == name
        assert gpu.pairs_per_sec > 0
    for name, cpu in CPUS.items():
        assert cpu.name == name
