"""Evaluator accounting tests."""

import numpy as np
import pytest

from repro.errors import MetaheuristicError
from repro.metaheuristics.evaluation import (
    EvaluationStats,
    Evaluator,
    LaunchRecord,
    SerialEvaluator,
)
from repro.molecules.transforms import random_quaternion


def test_serial_evaluator_scores_match_scorer(fast_scorer, pose_batch):
    translations, quaternions = pose_batch
    ev = SerialEvaluator(fast_scorer)
    spot_ids = np.zeros(len(translations), dtype=int)
    scores = ev.evaluate(spot_ids, translations, quaternions)
    np.testing.assert_allclose(scores, fast_scorer.score(translations, quaternions))


def test_launch_records_accumulate(fast_scorer, rng):
    ev = SerialEvaluator(fast_scorer)
    t = rng.normal(size=(6, 3))
    q = random_quaternion(rng, 6)
    ev.evaluate(np.array([0, 0, 1, 1, 2, 2]), t, q, kind="population")
    ev.evaluate(np.array([0, 1, 2, 0, 1, 2]), t, q, kind="improve")
    stats = ev.stats
    assert stats.n_launches == 2
    assert stats.n_conformations == 12
    assert stats.total_flops == pytest.approx(12 * fast_scorer.flops_per_pose)
    assert stats.launches[0].kind == "population"
    assert stats.launches[0].spot_counts == {0: 2, 1: 2, 2: 2}
    assert stats.launches[1].kind == "improve"
    assert stats.launches[0].n_receptor_atoms == fast_scorer.receptor.n_atoms


def test_mismatched_spot_ids_raise(fast_scorer, rng):
    ev = SerialEvaluator(fast_scorer)
    t = rng.normal(size=(4, 3))
    q = random_quaternion(rng, 4)
    with pytest.raises(MetaheuristicError):
        ev.evaluate(np.zeros(3, dtype=int), t, q)


def test_serial_evaluator_satisfies_protocol(fast_scorer):
    assert isinstance(SerialEvaluator(fast_scorer), Evaluator)


def test_stats_record_manual():
    stats = EvaluationStats()
    stats.record(LaunchRecord(10, 100.0, {0: 10}))
    stats.record(LaunchRecord(5, 100.0, {1: 5}, kind="improve"))
    assert stats.n_launches == 2
    assert stats.n_conformations == 15
    assert stats.total_flops == 1500.0
