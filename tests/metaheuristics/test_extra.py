"""Extension metaheuristics: each template instantiation must optimise."""

import numpy as np
import pytest

from repro.errors import MetaheuristicError
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.evaluation import SerialEvaluator
from repro.metaheuristics.extra import (
    AnnealingImprovement,
    AntColonySampling,
    DifferentialMove,
    GreedyRandomizedConstruction,
    PsoMove,
    TabuImprovement,
    VnsImprovement,
    make_ant_colony,
    make_differential_evolution,
    make_grasp,
    make_pso,
    make_simulated_annealing,
    make_tabu_search,
    make_vns,
)
from repro.metaheuristics.rng import SpotRngPool
from repro.metaheuristics.template import run_metaheuristic


def _ctx(spots, scorer, seed=17):
    return SearchContext(
        spots=spots,
        evaluator=SerialEvaluator(scorer),
        rng=SpotRngPool(seed, [s.index for s in spots]),
    )


FACTORIES = {
    "PSO": lambda: make_pso(swarm_size=12, iterations=8),
    "SA": lambda: make_simulated_annealing(walkers=8, iterations=6),
    "TABU": lambda: make_tabu_search(walkers=4, iterations=5),
    "GRASP": lambda: make_grasp(restarts=3, per_restart=8, local_search_steps=4),
    "VNS": lambda: make_vns(walkers=8, iterations=6),
    "DE": lambda: make_differential_evolution(population=12, iterations=10),
    "ACO": lambda: make_ant_colony(archive_size=10, ants=10, iterations=10),
}


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_extension_optimises(name, spots, fast_scorer):
    spec = FACTORIES[name]()
    result = run_metaheuristic(spec, _ctx(spots, fast_scorer))
    assert result.spec_name == name
    assert result.best_history[-1] <= result.best_history[0]
    assert result.best_history[-1] < -5.0  # found real binding wells


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_extension_is_deterministic(name, spots, fast_scorer):
    a = run_metaheuristic(FACTORIES[name](), _ctx(spots, fast_scorer, 3))
    b = run_metaheuristic(FACTORIES[name](), _ctx(spots, fast_scorer, 3))
    assert a.best.score == pytest.approx(b.best.score, rel=1e-9)


def test_pso_validation():
    with pytest.raises(MetaheuristicError):
        PsoMove(inertia=1.5)
    with pytest.raises(MetaheuristicError):
        PsoMove(cognitive=-1.0)


def test_sa_validation():
    with pytest.raises(MetaheuristicError):
        AnnealingImprovement(steps=0)
    with pytest.raises(MetaheuristicError):
        AnnealingImprovement(t_start=1.0, t_end=2.0)


def test_sa_temperature_schedule_decays():
    imp = AnnealingImprovement(steps=2, t_start=10.0, t_end=0.1, iterations_hint=5)
    t0 = imp.temperature()
    imp._step_count = 9
    t_end = imp.temperature()
    assert t0 == pytest.approx(10.0)
    assert t_end == pytest.approx(0.1, rel=1e-6)


def test_tabu_validation():
    with pytest.raises(MetaheuristicError):
        TabuImprovement(candidates=0)
    with pytest.raises(MetaheuristicError):
        TabuImprovement(tenure=0)
    with pytest.raises(MetaheuristicError):
        TabuImprovement(cell_size=-1.0)


def test_grasp_validation():
    with pytest.raises(MetaheuristicError):
        GreedyRandomizedConstruction(alpha=0.0)
    with pytest.raises(MetaheuristicError):
        GreedyRandomizedConstruction(oversample=0)


def test_vns_validation():
    with pytest.raises(MetaheuristicError):
        VnsImprovement(steps=0)
    with pytest.raises(MetaheuristicError):
        VnsImprovement(k_max=0)


def test_grasp_construction_beats_uniform(spots, fast_scorer):
    """The RCL construction must produce better-than-random candidates."""
    ctx = _ctx(spots, fast_scorer)
    from repro.metaheuristics.initialization import UniformSpotInitializer

    uniform = UniformSpotInitializer().initialize(ctx, 16)
    ctx.evaluate_population(uniform)
    constructed = GreedyRandomizedConstruction(alpha=0.25).combine(ctx, uniform, 16)
    assert constructed.is_evaluated()
    assert constructed.scores.mean() < uniform.scores.mean()


def test_pso_moves_toward_best(spots, fast_scorer):
    """After several iterations the swarm concentrates: mean distance to the
    per-spot best position shrinks."""
    ctx = _ctx(spots, fast_scorer)
    spec = make_pso(swarm_size=16, iterations=1)
    r1 = run_metaheuristic(spec, ctx)
    spread_1 = np.mean(
        np.linalg.norm(
            r1.population.translations
            - r1.population.translations.mean(axis=1, keepdims=True),
            axis=2,
        )
    )
    ctx2 = _ctx(spots, fast_scorer)
    r10 = run_metaheuristic(make_pso(swarm_size=16, iterations=12), ctx2)
    spread_10 = np.mean(
        np.linalg.norm(
            r10.population.translations
            - r10.population.translations.mean(axis=1, keepdims=True),
            axis=2,
        )
    )
    assert spread_10 < spread_1


def test_de_validation():
    with pytest.raises(MetaheuristicError):
        DifferentialMove(weight=0.0)
    with pytest.raises(MetaheuristicError):
        DifferentialMove(crossover=1.5)


def test_de_needs_minimum_population(spots, fast_scorer):
    spec = make_differential_evolution(population=3, iterations=2)
    with pytest.raises(MetaheuristicError, match="at least 4"):
        run_metaheuristic(spec, _ctx(spots, fast_scorer))


def test_aco_validation():
    with pytest.raises(MetaheuristicError):
        AntColonySampling(locality=0.0)
    with pytest.raises(MetaheuristicError):
        AntColonySampling(evaporation=3.0)


def test_de_monotone_best(spots, fast_scorer):
    """Greedy pair selection makes DE's per-individual scores monotone."""
    spec = make_differential_evolution(population=8, iterations=6)
    result = run_metaheuristic(spec, _ctx(spots, fast_scorer, 21))
    assert all(
        b <= a + 1e-12
        for a, b in zip(result.best_history, result.best_history[1:])
    )
