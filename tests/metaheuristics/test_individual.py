"""Conformation and pose-encoding tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import MetaheuristicError
from repro.metaheuristics.individual import (
    POSE_DIM,
    Conformation,
    decode_pose,
    encode_pose,
)


def test_conformation_normalises_quaternion():
    c = Conformation(
        spot_index=0,
        translation=np.zeros(3),
        quaternion=np.array([2.0, 0.0, 0.0, 0.0]),
    )
    np.testing.assert_allclose(c.quaternion, [1.0, 0.0, 0.0, 0.0])


def test_conformation_validates_shapes():
    with pytest.raises(MetaheuristicError):
        Conformation(0, np.zeros(2), np.array([1.0, 0, 0, 0]))
    with pytest.raises(MetaheuristicError):
        Conformation(0, np.zeros(3), np.zeros(3))


def test_evaluated_copy():
    c = Conformation(1, np.ones(3), np.array([1.0, 0, 0, 0]))
    assert np.isnan(c.score)
    e = c.evaluated(-4.5)
    assert e.score == -4.5
    assert e.spot_index == 1
    assert np.isnan(c.score)  # original untouched


def test_encode_decode_roundtrip_single():
    t = np.array([1.0, -2.0, 3.0])
    q = np.array([0.5, 0.5, 0.5, 0.5])
    encoded = encode_pose(t, q)
    assert encoded.shape == (POSE_DIM,)
    t2, q2 = decode_pose(encoded)
    np.testing.assert_allclose(t2, t)
    np.testing.assert_allclose(q2, q)


def test_encode_validates_shapes():
    with pytest.raises(MetaheuristicError):
        encode_pose(np.zeros(2), np.zeros(4))
    with pytest.raises(MetaheuristicError):
        encode_pose(np.zeros((2, 3)), np.zeros((3, 4)))


def test_decode_validates_last_dim():
    with pytest.raises(MetaheuristicError):
        decode_pose(np.zeros(6))


@settings(max_examples=50, deadline=None)
@given(
    t=arrays(np.float64, (4, 3), elements=st.floats(-50, 50)),
    q=arrays(np.float64, (4, 4), elements=st.floats(-1, 1)).filter(
        lambda q: np.all(np.linalg.norm(q, axis=1) > 1e-3)
    ),
)
def test_encode_decode_roundtrip_batched(t, q):
    """decode(encode(t, q)) returns t exactly and q up to normalisation."""
    encoded = encode_pose(t, q)
    t2, q2 = decode_pose(encoded)
    np.testing.assert_allclose(t2, t)
    norm_q = q / np.linalg.norm(q, axis=1, keepdims=True)
    np.testing.assert_allclose(q2, norm_q, atol=1e-12)
