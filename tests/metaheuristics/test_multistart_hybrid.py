"""Multi-start execution and hybrid-composition tests."""

import pytest

from repro.errors import MetaheuristicError
from repro.metaheuristics.extra.hybrid import (
    hybridize,
    make_memetic_ga,
    make_pso_annealing,
)
from repro.metaheuristics.extra.pso import make_pso
from repro.metaheuristics.improvement import HillClimb
from repro.metaheuristics.multistart import run_multistart
from repro.metaheuristics.presets import make_preset


# ----------------------------------------------------------------------
# multi-start
# ----------------------------------------------------------------------
def test_multistart_best_is_min_over_runs(spots, fast_scorer):
    spec = make_preset("M1", workload_scale=0.05)
    result = run_multistart(spec, spots, fast_scorer, n_runs=3, base_seed=1)
    assert len(result.runs) == 3
    assert result.best_score == min(r.best.score for r in result.runs)
    assert result.total_evaluations > 0
    assert result.score_spread >= 0


def test_multistart_runs_are_independent(spots, fast_scorer):
    spec = make_preset("M1", workload_scale=0.05)
    result = run_multistart(spec, spots, fast_scorer, n_runs=3, base_seed=1)
    finals = [r.best.score for r in result.runs]
    assert len(set(finals)) > 1  # different seeds, different outcomes


def test_multistart_never_worse_than_single(spots, fast_scorer):
    """The first run of a multistart equals a standalone run with the same
    derived seed, so more runs can only improve the best."""
    spec = make_preset("M1", workload_scale=0.05)
    one = run_multistart(spec, spots, fast_scorer, n_runs=1, base_seed=5)
    three = run_multistart(spec, spots, fast_scorer, n_runs=3, base_seed=5)
    assert three.best_score <= one.best_score
    assert three.runs[0].best.score == one.runs[0].best.score


def test_multistart_stateful_spec_needs_factory(spots, fast_scorer):
    """PSO holds state in its operators; the factory gives each run a fresh
    instance, and the first run must match a factory-free single run."""
    result = run_multistart(
        make_pso(swarm_size=8, iterations=4),
        spots,
        fast_scorer,
        n_runs=2,
        base_seed=2,
        spec_factory=lambda: make_pso(swarm_size=8, iterations=4),
    )
    assert len(result.runs) == 2
    assert result.best_score < 0


def test_multistart_validation(spots, fast_scorer):
    with pytest.raises(MetaheuristicError):
        run_multistart(make_preset("M1", 0.05), spots, fast_scorer, n_runs=0)


# ----------------------------------------------------------------------
# hybrids
# ----------------------------------------------------------------------
def test_hybridize_replaces_fields():
    base = make_preset("M1", workload_scale=0.1)
    improved = hybridize("M1+LS", base, improve=HillClimb(steps=3, fraction=0.5))
    assert improved.name == "M1+LS"
    assert isinstance(improved.improve, HillClimb)
    assert improved.combine is base.combine  # untouched fields shared


def test_hybridize_rejects_unknown_fields():
    with pytest.raises(MetaheuristicError, match="unknown spec fields"):
        hybridize("x", make_preset("M1", 0.1), flux_capacitor=1)


@pytest.mark.parametrize(
    "factory",
    [
        lambda: make_memetic_ga(population=8, iterations=4, local_search_steps=3),
        lambda: make_pso_annealing(swarm_size=8, iterations=5, sa_steps=2),
    ],
)
def test_hybrids_optimise(factory, spots, fast_scorer):
    from repro.metaheuristics.context import SearchContext
    from repro.metaheuristics.evaluation import SerialEvaluator
    from repro.metaheuristics.rng import SpotRngPool
    from repro.metaheuristics.template import run_metaheuristic

    ctx = SearchContext(
        spots=spots,
        evaluator=SerialEvaluator(fast_scorer),
        rng=SpotRngPool(7, [s.index for s in spots]),
    )
    result = run_metaheuristic(factory(), ctx)
    assert result.best_history[-1] <= result.best_history[0]
    assert result.best_history[-1] < -5.0
