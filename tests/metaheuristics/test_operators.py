"""Tests for the six template-function families: Initialize, End, Select,
Combine, Improve, Include."""

import numpy as np
import pytest

from repro.errors import MetaheuristicError
from repro.metaheuristics.combination import (
    BlendCrossover,
    NoCombination,
    UniformCrossover,
)
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.evaluation import SerialEvaluator
from repro.metaheuristics.improvement import HillClimb, NoImprovement
from repro.metaheuristics.inclusion import (
    ElitistInclusion,
    GenerationalInclusion,
    SteadyStateInclusion,
)
from repro.metaheuristics.initialization import ShellInitializer, UniformSpotInitializer
from repro.metaheuristics.population import Population
from repro.metaheuristics.rng import SpotRngPool
from repro.metaheuristics.selection import (
    BestFraction,
    IdentitySelection,
    RouletteWheel,
    Tournament,
)
from repro.metaheuristics.termination import (
    AllOf,
    AnyOf,
    MaxIterations,
    Stagnation,
    TargetScore,
    TerminationState,
)


@pytest.fixture()
def ctx(spots, fast_scorer):
    return SearchContext(
        spots=spots,
        evaluator=SerialEvaluator(fast_scorer),
        rng=SpotRngPool(99, [s.index for s in spots]),
    )


# ----------------------------------------------------------------------
# Initialize
# ----------------------------------------------------------------------
def test_uniform_initializer_within_bounds(ctx):
    pop = UniformSpotInitializer().initialize(ctx, 32)
    assert pop.n_spots == ctx.n_spots
    assert pop.size_per_spot == 32
    assert not pop.is_evaluated()
    lo = ctx.centers[:, None, :] - ctx.radii[:, None, None]
    hi = ctx.centers[:, None, :] + ctx.radii[:, None, None]
    assert np.all(pop.translations >= lo - 1e-9)
    assert np.all(pop.translations <= hi + 1e-9)


def test_shell_initializer_outward_bias(ctx):
    pop = ShellInitializer(bias=0.5).initialize(ctx, 64)
    normals = np.stack([s.normal for s in ctx.spots])
    offsets = pop.translations - ctx.centers[:, None, :]
    along = np.einsum("skj,sj->sk", offsets, normals)
    # outward component must be non-negative for (nearly) all individuals
    assert (along > -1e-6).mean() > 0.99


def test_initializer_validates_size(ctx):
    with pytest.raises(MetaheuristicError):
        UniformSpotInitializer().initialize(ctx, 0)
    with pytest.raises(MetaheuristicError):
        ShellInitializer(bias=1.5)


def test_initializer_is_deterministic(ctx, spots, fast_scorer):
    pop1 = UniformSpotInitializer().initialize(ctx, 8)
    ctx2 = SearchContext(
        spots=spots,
        evaluator=SerialEvaluator(fast_scorer),
        rng=SpotRngPool(99, [s.index for s in spots]),
    )
    pop2 = UniformSpotInitializer().initialize(ctx2, 8)
    np.testing.assert_array_equal(pop1.translations, pop2.translations)


# ----------------------------------------------------------------------
# End
# ----------------------------------------------------------------------
def _state(iteration, best=0.0, history=()):
    return TerminationState(iteration=iteration, best_score=best, best_history=history)


def test_max_iterations():
    end = MaxIterations(3)
    assert not end.should_stop(_state(2))
    assert end.should_stop(_state(3))
    with pytest.raises(MetaheuristicError):
        MaxIterations(0)


def test_target_score():
    end = TargetScore(-10.0)
    assert not end.should_stop(_state(0, best=-5.0))
    assert end.should_stop(_state(0, best=-10.0))
    assert end.should_stop(_state(0, best=-12.0))


def test_stagnation():
    end = Stagnation(patience=2)
    h = (-1.0, -2.0, -2.0, -2.0)
    assert end.should_stop(_state(4, best=-2.0, history=h))
    improving = (-1.0, -2.0, -3.0, -4.0)
    assert not end.should_stop(_state(4, best=-4.0, history=improving))
    assert not end.should_stop(_state(1, best=-1.0, history=(-1.0,)))


def test_any_all_combinators():
    fires = MaxIterations(1)
    never = TargetScore(-1e18)
    assert AnyOf(fires, never).should_stop(_state(5))
    assert not AllOf(fires, never).should_stop(_state(5))
    with pytest.raises(MetaheuristicError):
        AnyOf()


# ----------------------------------------------------------------------
# Select
# ----------------------------------------------------------------------
def _scored_population(ctx, k=16):
    pop = UniformSpotInitializer().initialize(ctx, k)
    ctx.evaluate_population(pop)
    return pop


def test_identity_selection_preserves_order(ctx):
    pop = _scored_population(ctx)
    sel = IdentitySelection().select(ctx, pop)
    np.testing.assert_array_equal(sel.translations, pop.translations)
    np.testing.assert_array_equal(sel.scores, pop.scores)


def test_best_fraction_truncates_sorted(ctx):
    pop = _scored_population(ctx)
    sel = BestFraction(0.25).select(ctx, pop)
    assert sel.size_per_spot == 4
    np.testing.assert_allclose(sel.scores[:, 0], pop.scores.min(axis=1))
    assert np.all(np.diff(sel.scores, axis=1) >= 0)
    with pytest.raises(MetaheuristicError):
        BestFraction(0.0)


def test_tournament_biases_toward_better(ctx):
    pop = _scored_population(ctx)
    sel = Tournament(arity=4, count=64).select(ctx, pop)
    assert sel.size_per_spot == 64
    # Selected mean must beat the population mean (selection pressure).
    assert sel.scores.mean() < pop.scores.mean()
    with pytest.raises(MetaheuristicError):
        Tournament(arity=1)


def test_roulette_selection(ctx):
    pop = _scored_population(ctx)
    sel = RouletteWheel(count=64).select(ctx, pop)
    assert sel.size_per_spot == 64
    assert sel.scores.mean() < pop.scores.mean()


# ----------------------------------------------------------------------
# Combine
# ----------------------------------------------------------------------
def test_blend_crossover_properties(ctx):
    pop = _scored_population(ctx)
    children = BlendCrossover().combine(ctx, pop, 24)
    assert children.size_per_spot == 24
    assert not children.is_evaluated()
    # children stay inside the spot search boxes (clipped)
    lo = ctx.centers[:, None, :] - ctx.radii[:, None, None]
    hi = ctx.centers[:, None, :] + ctx.radii[:, None, None]
    assert np.all(children.translations >= lo - 1e-9)
    assert np.all(children.translations <= hi + 1e-9)
    np.testing.assert_allclose(
        np.linalg.norm(children.quaternions, axis=2), 1.0, atol=1e-9
    )


def test_uniform_crossover_inherits_parent_axes(ctx):
    pop = _scored_population(ctx, k=8)
    children = UniformCrossover(mutation_rate=0.0).combine(ctx, pop, 16)
    # With no mutation, each child coordinate equals some parent coordinate.
    for s in range(children.n_spots):
        parents = pop.translations[s]
        for child in children.translations[s]:
            for axis in range(3):
                assert np.any(np.isclose(parents[:, axis], child[axis]))


def test_combination_validation(ctx):
    pop = _scored_population(ctx, k=4)
    with pytest.raises(MetaheuristicError):
        BlendCrossover().combine(ctx, pop, 0)
    with pytest.raises(MetaheuristicError):
        BlendCrossover(alpha=-1.0)
    with pytest.raises(MetaheuristicError):
        UniformCrossover(mutation_rate=2.0)


def test_no_combination_passthrough(ctx):
    pop = _scored_population(ctx, k=4)
    out = NoCombination().combine(ctx, pop, 4)
    assert out.is_evaluated()
    np.testing.assert_array_equal(out.scores, pop.scores)
    with pytest.raises(MetaheuristicError):
        NoCombination().combine(ctx, pop, 8)


# ----------------------------------------------------------------------
# Improve
# ----------------------------------------------------------------------
def test_no_improvement_evaluates(ctx):
    pop = UniformSpotInitializer().initialize(ctx, 8)
    out = NoImprovement().improve(ctx, pop)
    assert out.is_evaluated()


def test_hill_climb_never_worsens(ctx):
    pop = _scored_population(ctx, k=8)
    before = pop.scores.copy()
    out = HillClimb(steps=5, fraction=1.0).improve(ctx, pop)
    assert np.all(out.scores <= before + 1e-9)


def test_hill_climb_usually_improves(ctx):
    pop = _scored_population(ctx, k=16)
    out = HillClimb(steps=10, fraction=1.0).improve(ctx, pop)
    assert out.scores.min() < pop.scores.min()


def test_hill_climb_fraction_limits_work(ctx):
    pop = _scored_population(ctx, k=10)
    evaluator = ctx.evaluator
    launches_before = evaluator.stats.n_launches
    HillClimb(steps=3, fraction=0.2).improve(ctx, pop)
    new_launches = evaluator.stats.launches[launches_before:]
    # 3 improve launches of 2 individuals per spot (20% of 10).
    assert len(new_launches) == 3
    assert all(
        rec.n_conformations == 2 * ctx.n_spots and rec.kind == "improve"
        for rec in new_launches
    )


def test_hill_climb_validation():
    with pytest.raises(MetaheuristicError):
        HillClimb(steps=0)
    with pytest.raises(MetaheuristicError):
        HillClimb(fraction=0.0)


# ----------------------------------------------------------------------
# Include
# ----------------------------------------------------------------------
def test_elitist_inclusion_keeps_best_of_union(ctx):
    current = _scored_population(ctx, k=8)
    offspring = _scored_population(ctx, k=8)
    nxt = ElitistInclusion().include(ctx, offspring, current)
    assert nxt.size_per_spot == 8
    union_best = np.minimum(current.scores.min(axis=1), offspring.scores.min(axis=1))
    np.testing.assert_allclose(nxt.scores.min(axis=1), union_best)
    # monotone: the new best can never be worse than the old best
    assert np.all(nxt.scores.min(axis=1) <= current.scores.min(axis=1))


def test_generational_inclusion_preserves_elites(ctx):
    current = _scored_population(ctx, k=8)
    offspring = _scored_population(ctx, k=8)
    nxt = GenerationalInclusion(elites=2).include(ctx, offspring, current)
    assert nxt.size_per_spot == 8
    # The old top-2 of each spot must survive.
    for s in range(ctx.n_spots):
        old_top2 = np.sort(current.scores[s])[:2]
        for v in old_top2:
            assert np.any(np.isclose(nxt.scores[s], v))


def test_steady_state_inclusion(ctx):
    current = _scored_population(ctx, k=8)
    offspring = _scored_population(ctx, k=4)
    nxt = SteadyStateInclusion().include(ctx, offspring, current)
    assert nxt.size_per_spot == 8
    # mean can only improve (each replacement strictly improves the worst)
    assert nxt.scores.mean() <= current.scores.mean() + 1e-9


def test_inclusion_requires_evaluated(ctx):
    current = _scored_population(ctx, k=4)
    unevaluated = UniformSpotInitializer().initialize(ctx, 4)
    with pytest.raises(MetaheuristicError):
        ElitistInclusion().include(ctx, unevaluated, current)
