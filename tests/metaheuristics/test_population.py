"""Population container tests."""

import numpy as np
import pytest

from repro.errors import MetaheuristicError
from repro.metaheuristics.population import Population


def _population(s=3, k=4, seed=0, scored=True):
    rng = np.random.default_rng(seed)
    scores = rng.normal(size=(s, k)) if scored else None
    q = rng.normal(size=(s, k, 4))
    return Population(rng.normal(size=(s, k, 3)), q, scores)


def test_shapes_and_properties():
    p = _population()
    assert p.n_spots == 3
    assert p.size_per_spot == 4
    assert p.total == 12
    assert "spots=3" in repr(p)


def test_quaternions_normalised_on_construction():
    p = _population()
    np.testing.assert_allclose(
        np.linalg.norm(p.quaternions, axis=2), 1.0, atol=1e-12
    )


def test_validation():
    rng = np.random.default_rng(1)
    with pytest.raises(MetaheuristicError):
        Population(rng.normal(size=(2, 3)), rng.normal(size=(2, 3, 4)))
    with pytest.raises(MetaheuristicError):
        Population(rng.normal(size=(2, 3, 3)), rng.normal(size=(2, 4, 4)))
    with pytest.raises(MetaheuristicError):
        Population(
            rng.normal(size=(2, 3, 3)),
            rng.normal(size=(2, 3, 4)),
            rng.normal(size=(2, 2)),
        )


def test_unevaluated_by_default():
    p = _population(scored=False)
    assert not p.is_evaluated()
    with pytest.raises(MetaheuristicError):
        p.best_conformation()


def test_flat_and_set_scores_roundtrip():
    p = _population(scored=False)
    spot_ids, t, q = p.flat()
    assert t.shape == (12, 3)
    np.testing.assert_array_equal(spot_ids, np.repeat([0, 1, 2], 4))
    # spot-major: first 4 rows belong to spot 0
    np.testing.assert_allclose(t[:4], p.translations[0])
    p.set_scores_flat(np.arange(12, dtype=float))
    assert p.is_evaluated()
    np.testing.assert_allclose(p.scores[0], [0, 1, 2, 3])
    with pytest.raises(MetaheuristicError):
        p.set_scores_flat(np.zeros(5))


def test_take_gathers_per_spot():
    p = _population()
    idx = np.array([[3, 0], [1, 1], [2, 3]])
    sub = p.take(idx)
    assert sub.size_per_spot == 2
    np.testing.assert_allclose(sub.translations[0, 0], p.translations[0, 3])
    np.testing.assert_allclose(sub.scores[2, 1], p.scores[2, 3])
    with pytest.raises(MetaheuristicError):
        p.take(np.zeros((2, 2), dtype=int))


def test_concat():
    a = _population(seed=0)
    b = _population(seed=1)
    c = a.concat(b)
    assert c.size_per_spot == 8
    np.testing.assert_allclose(c.scores[:, :4], a.scores)
    np.testing.assert_allclose(c.scores[:, 4:], b.scores)
    with pytest.raises(MetaheuristicError):
        a.concat(_population(s=2))


def test_sorted_by_score():
    p = _population()
    s = p.sorted_by_score()
    assert np.all(np.diff(s.scores, axis=1) >= 0)


def test_best_accessors():
    p = _population()
    idx = p.best_index_per_spot()
    np.testing.assert_array_equal(idx, np.argmin(p.scores, axis=1))
    np.testing.assert_allclose(p.best_score_per_spot(), p.scores.min(axis=1))
    best = p.best_conformation()
    assert best.score == pytest.approx(p.scores.min())
    per_spot = p.best_conformation_per_spot()
    assert len(per_spot) == 3
    assert per_spot[1].spot_index == 1
    assert per_spot[1].score == pytest.approx(p.scores[1].min())


def test_copy_is_deep():
    p = _population()
    c = p.copy()
    c.scores[0, 0] = 999.0
    assert p.scores[0, 0] != 999.0


def test_spot_subset():
    p = _population()
    sub = p.spot_subset(np.array([2, 0]))
    assert sub.n_spots == 2
    np.testing.assert_allclose(sub.translations[0], p.translations[2])
