"""Per-spot RNG stream tests — the partition-invariance foundation."""

import numpy as np
import pytest

from repro.errors import MetaheuristicError
from repro.metaheuristics.rng import SpotRngPool


def test_shapes():
    pool = SpotRngPool(1, [0, 1, 2])
    assert pool.random((5,)).shape == (3, 5)
    assert pool.normal((4, 3)).shape == (3, 4, 3)
    assert pool.integers(0, 10, (6,)).shape == (3, 6)
    assert pool.quaternions(7).shape == (3, 7, 4)
    assert pool.small_rotations(2, 0.3).shape == (3, 2, 4)
    assert pool.permutations(5).shape == (3, 5)


def test_validation():
    with pytest.raises(MetaheuristicError):
        SpotRngPool(1, [])


def test_streams_keyed_by_global_spot_index():
    """Spot 7's stream is identical whether it runs with spots [7] or
    [3, 7, 9] — the core partition-invariance property."""
    alone = SpotRngPool(42, [7])
    together = SpotRngPool(42, [3, 7, 9])
    a = alone.random((10,))
    b = together.random((10,))
    np.testing.assert_array_equal(a[0], b[1])


def test_streams_differ_between_spots():
    pool = SpotRngPool(42, [0, 1])
    draws = pool.random((20,))
    assert not np.allclose(draws[0], draws[1])


def test_streams_differ_between_seeds():
    a = SpotRngPool(1, [0]).random((10,))
    b = SpotRngPool(2, [0]).random((10,))
    assert not np.allclose(a, b)


def test_deterministic_given_seed():
    a = SpotRngPool(5, [0, 1]).normal((8,))
    b = SpotRngPool(5, [0, 1]).normal((8,))
    np.testing.assert_array_equal(a, b)


def test_sequences_advance():
    pool = SpotRngPool(5, [0])
    first = pool.random((4,))
    second = pool.random((4,))
    assert not np.allclose(first, second)


def test_quaternions_are_unit():
    pool = SpotRngPool(9, [0, 1, 2])
    q = pool.quaternions(50)
    np.testing.assert_allclose(np.linalg.norm(q, axis=2), 1.0, atol=1e-12)


def test_permutations_are_valid():
    pool = SpotRngPool(3, [0, 1])
    perms = pool.permutations(10)
    for row in perms:
        assert sorted(row.tolist()) == list(range(10))


def test_generator_accessor():
    pool = SpotRngPool(3, [5, 6])
    assert isinstance(pool.generator(0), np.random.Generator)
