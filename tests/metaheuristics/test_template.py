"""Template-loop tests: Algorithm 1 semantics, presets, determinism."""

import numpy as np
import pytest

from repro.errors import MetaheuristicError
from repro.metaheuristics.context import SearchContext
from repro.metaheuristics.evaluation import SerialEvaluator
from repro.metaheuristics.presets import (
    PRESET_TABLE,
    expected_evaluations_per_spot,
    make_preset,
    preset_names,
)
from repro.metaheuristics.rng import SpotRngPool
from repro.metaheuristics.template import run_metaheuristic


def _ctx(spots, scorer, seed=7):
    return SearchContext(
        spots=spots,
        evaluator=SerialEvaluator(scorer),
        rng=SpotRngPool(seed, [s.index for s in spots]),
    )


def test_preset_names():
    assert preset_names() == ("M1", "M2", "M3", "M4")


def test_preset_table_matches_paper_table4():
    assert PRESET_TABLE["M1"].population == 64
    assert PRESET_TABLE["M1"].improve_fraction == 0.0
    assert PRESET_TABLE["M2"].improve_fraction == 1.0
    assert PRESET_TABLE["M3"].improve_fraction == 0.2
    assert PRESET_TABLE["M4"].population == 1024
    assert PRESET_TABLE["M4"].improve_fraction == 1.0
    assert all(p.select_fraction == 1.0 for p in PRESET_TABLE.values())


def test_preset_workload_ratios_match_paper():
    """Evaluations per spot must reproduce the Table 6 OpenMP time ratios:
    M2/M1 ≈ 1.62, M3/M1 ≈ 0.51, M4/M1 ≈ 50.3."""
    e = {m: expected_evaluations_per_spot(m) for m in preset_names()}
    assert e["M2"] / e["M1"] == pytest.approx(1.62, rel=0.05)
    assert e["M3"] / e["M1"] == pytest.approx(0.51, rel=0.10)
    assert e["M4"] / e["M1"] == pytest.approx(50.3, rel=0.05)


def test_unknown_preset():
    with pytest.raises(MetaheuristicError):
        make_preset("M9")
    with pytest.raises(MetaheuristicError):
        make_preset("M1", workload_scale=0.0)


@pytest.mark.parametrize("name", ["M1", "M2", "M3", "M4"])
def test_recorded_evaluations_match_prediction(name, spots, fast_scorer):
    ctx = _ctx(spots, fast_scorer)
    spec = make_preset(name, workload_scale=0.05)
    run_metaheuristic(spec, ctx)
    per_spot = ctx.evaluator.stats.n_conformations / len(spots)
    assert per_spot == expected_evaluations_per_spot(name, 0.05)


@pytest.mark.parametrize("name", ["M1", "M2", "M4"])
def test_runs_improve_over_initialization(name, spots, fast_scorer):
    ctx = _ctx(spots, fast_scorer)
    result = run_metaheuristic(make_preset(name, workload_scale=0.1), ctx)
    assert result.best_history[-1] <= result.best_history[0]
    assert result.best_history[-1] < 0  # found some attraction


def test_best_history_is_monotone(spots, fast_scorer):
    ctx = _ctx(spots, fast_scorer)
    result = run_metaheuristic(make_preset("M2", workload_scale=0.2), ctx)
    assert all(b <= a + 1e-12 for a, b in zip(result.best_history, result.best_history[1:]))


def test_result_structure(spots, fast_scorer):
    ctx = _ctx(spots, fast_scorer)
    result = run_metaheuristic(make_preset("M1", workload_scale=0.1), ctx)
    assert result.spec_name == "M1"
    assert result.iterations == 4  # 40 × 0.1
    assert len(result.best_per_spot) == len(spots)
    assert result.best.score == pytest.approx(result.best_score)
    assert result.best.score == pytest.approx(min(c.score for c in result.best_per_spot))
    assert result.population.is_evaluated()


def test_determinism_same_seed(spots, fast_scorer):
    a = run_metaheuristic(make_preset("M2", workload_scale=0.1), _ctx(spots, fast_scorer, 5))
    b = run_metaheuristic(make_preset("M2", workload_scale=0.1), _ctx(spots, fast_scorer, 5))
    assert a.best.score == b.best.score
    np.testing.assert_array_equal(a.population.scores, b.population.scores)


def test_different_seeds_differ(spots, fast_scorer):
    a = run_metaheuristic(make_preset("M1", workload_scale=0.1), _ctx(spots, fast_scorer, 1))
    b = run_metaheuristic(make_preset("M1", workload_scale=0.1), _ctx(spots, fast_scorer, 2))
    assert a.best.score != b.best.score


def test_spot_partition_invariance(spots, fast_scorer):
    """Running spots {0,1,2,3} together equals running {0,1} and {2,3}
    separately — the property the heterogeneous runtime relies on."""
    spec = make_preset("M3", workload_scale=0.1)
    full = run_metaheuristic(spec, _ctx(spots, fast_scorer, 31))
    left = run_metaheuristic(spec, _ctx(spots[:2], fast_scorer, 31))
    right = run_metaheuristic(spec, _ctx(spots[2:], fast_scorer, 31))
    np.testing.assert_allclose(
        [c.score for c in full.best_per_spot],
        [c.score for c in left.best_per_spot] + [c.score for c in right.best_per_spot],
        rtol=1e-6,
    )
