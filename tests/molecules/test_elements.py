"""Unit tests for the periodic-table subset."""

import pytest

from repro.errors import MoleculeError
from repro.molecules.elements import (
    LIGAND_ELEMENTS,
    PROTEIN_ELEMENTS,
    get_element,
    is_known,
    known_elements,
)


def test_lookup_common_elements():
    carbon = get_element("C")
    assert carbon.atomic_number == 6
    assert carbon.symbol == "C"
    assert 1.5 < carbon.vdw_radius < 2.0


def test_lookup_is_case_insensitive():
    assert get_element("cl").symbol == "Cl"
    assert get_element("CL").symbol == "Cl"
    assert get_element(" c ").symbol == "C"


def test_unknown_element_raises():
    with pytest.raises(MoleculeError, match="unknown element"):
        get_element("Xx")


def test_is_known():
    assert is_known("S")
    assert is_known("br")
    assert not is_known("Qq")


def test_known_elements_cover_protein_and_ligand_sets():
    known = set(known_elements())
    assert set(PROTEIN_ELEMENTS) <= known
    assert set(LIGAND_ELEMENTS) <= known


def test_vdw_radii_ordering_is_physical():
    # H is the smallest; iodine among the largest of the tabulated set.
    assert get_element("H").vdw_radius < get_element("C").vdw_radius
    assert get_element("C").vdw_radius < get_element("I").vdw_radius


def test_masses_increase_with_atomic_number_within_period():
    assert get_element("C").mass < get_element("N").mass < get_element("O").mass


def test_element_dataclass_is_frozen():
    with pytest.raises(AttributeError):
        get_element("C").mass = 1.0  # type: ignore[misc]
