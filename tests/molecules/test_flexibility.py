"""Torsional-flexibility tests."""

import numpy as np
import pytest

from repro.errors import MoleculeError
from repro.molecules.flexibility import FlexibleLigand
from repro.molecules.structures import Ligand
from repro.molecules.synthetic import generate_ligand
from repro.molecules.topology import infer_bonds


def _butane_like():
    """A 4-carbon chain: exactly one rotatable bond (the middle one)."""
    coords = np.array(
        [[0.0, 0, 0], [1.5, 0, 0], [2.2, 1.3, 0], [3.7, 1.3, 0]]
    )
    return Ligand(coords=coords, elements=["C"] * 4)


def test_butane_has_one_torsion():
    flex = FlexibleLigand(_butane_like())
    assert flex.n_torsions == 1
    assert len(flex.moving_atoms(0)) == 1  # one terminal carbon rotates


def test_zero_angles_reproduce_base_geometry():
    flex = FlexibleLigand(_butane_like())
    conf = flex.conformer(np.zeros(flex.n_torsions))
    np.testing.assert_allclose(conf, flex.base_coords, atol=1e-12)


def test_torsion_preserves_bond_lengths():
    flex = FlexibleLigand(_butane_like())
    conf = flex.conformer(np.array([1.1]))
    assert flex.bond_lengths_preserved(conf)
    assert not np.allclose(conf, flex.base_coords)


def test_full_turn_is_identity():
    flex = FlexibleLigand(_butane_like())
    conf = flex.conformer(np.array([2 * np.pi]))
    np.testing.assert_allclose(conf, flex.base_coords, atol=1e-9)


def test_torsion_moves_only_downstream_atoms():
    flex = FlexibleLigand(_butane_like())
    conf = flex.conformer(np.array([0.8]))
    moving = set(flex.moving_atoms(0).tolist())
    fixed = set(range(4)) - moving - set(flex.torsion_bonds[0])
    # The centring shifts everything; compare shapes via pairwise distances
    # of the fixed backbone instead.
    base = flex.base_coords
    for i in fixed | set(flex.torsion_bonds[0]):
        for j in fixed | set(flex.torsion_bonds[0]):
            d0 = np.linalg.norm(base[i] - base[j])
            d1 = np.linalg.norm(conf[i] - conf[j])
            assert d0 == pytest.approx(d1, abs=1e-9)


def test_angle_vector_validation():
    flex = FlexibleLigand(_butane_like())
    with pytest.raises(MoleculeError):
        flex.conformer(np.zeros(flex.n_torsions + 1))
    with pytest.raises(MoleculeError):
        flex.conformers(np.zeros((3, flex.n_torsions + 2)))


def test_max_torsions_keeps_largest_movers():
    lig = generate_ligand(40, seed=3)
    full = FlexibleLigand(lig)
    capped = FlexibleLigand(lig, max_torsions=2)
    assert capped.n_torsions <= 2
    if full.n_torsions >= 2:
        # The kept torsions move at least as many atoms as any dropped one.
        kept_sizes = [len(capped.moving_atoms(i)) for i in range(capped.n_torsions)]
        all_sizes = sorted(
            (len(full.moving_atoms(i)) for i in range(full.n_torsions)),
            reverse=True,
        )
        assert sorted(kept_sizes, reverse=True) == all_sizes[: len(kept_sizes)]
    with pytest.raises(MoleculeError):
        FlexibleLigand(lig, max_torsions=-1)


def test_synthetic_ligand_torsions_preserve_bonds():
    lig = generate_ligand(30, seed=5)
    flex = FlexibleLigand(lig, max_torsions=4)
    rng = np.random.default_rng(0)
    for _ in range(3):
        conf = flex.conformer(rng.uniform(-np.pi, np.pi, flex.n_torsions))
        assert flex.bond_lengths_preserved(conf, atol=1e-6)
        assert np.all(np.isfinite(conf))


def test_conformers_batch():
    flex = FlexibleLigand(_butane_like())
    batch = flex.conformers(np.array([[0.0], [1.0], [2.0]]))
    assert batch.shape == (3, 4, 3)
    np.testing.assert_allclose(batch[0], flex.base_coords, atol=1e-12)


def test_rigid_molecule_has_no_torsions():
    lig = Ligand(
        coords=np.array([[0.0, 0, 0], [1.5, 0, 0], [0.75, 1.3, 0]]),
        elements=["C", "C", "C"],
    )
    flex = FlexibleLigand(lig)
    assert flex.n_torsions == 0
    conf = flex.conformer(np.zeros(0))
    np.testing.assert_allclose(conf, flex.base_coords)


def test_bond_count_unchanged_after_torsion():
    """Torsions must not create or break bonds (no clash-induced fusion)."""
    flex = FlexibleLigand(_butane_like())
    conf = flex.conformer(np.array([2.5]))
    moved = Ligand(coords=conf, elements=["C"] * 4)
    assert len(infer_bonds(moved)) == len(infer_bonds(_butane_like()))
