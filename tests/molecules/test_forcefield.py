"""Unit and property tests for the Lennard-Jones force field."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ForceFieldError
from repro.molecules.forcefield import ForceField, LJParameters, default_forcefield


def test_default_forcefield_is_singleton():
    assert default_forcefield() is default_forcefield()


def test_lookup_known_class():
    p = default_forcefield().lookup("C")
    assert p.sigma > 0
    assert p.epsilon > 0


def test_lookup_unknown_class_raises():
    with pytest.raises(ForceFieldError, match="not parameterised"):
        default_forcefield().lookup("Xx")


def test_lj_parameters_validation():
    with pytest.raises(ForceFieldError):
        LJParameters(sigma=-1.0, epsilon=0.1)
    with pytest.raises(ForceFieldError):
        LJParameters(sigma=1.0, epsilon=-0.1)


def test_empty_forcefield_rejected():
    with pytest.raises(ForceFieldError):
        ForceField({})


def test_mix_is_symmetric():
    ff = default_forcefield()
    ab = ff.mix("C", "O")
    ba = ff.mix("O", "C")
    assert ab.sigma == ba.sigma
    assert ab.epsilon == ba.epsilon


def test_mix_lorentz_berthelot():
    ff = default_forcefield()
    c = ff.lookup("C")
    o = ff.lookup("O")
    mixed = ff.mix("C", "O")
    assert mixed.sigma == pytest.approx(0.5 * (c.sigma + o.sigma))
    assert mixed.epsilon == pytest.approx(np.sqrt(c.epsilon * o.epsilon))


def test_self_mix_is_identity():
    ff = default_forcefield()
    c = ff.lookup("C")
    mixed = ff.mix("C", "C")
    assert mixed.sigma == pytest.approx(c.sigma)
    assert mixed.epsilon == pytest.approx(c.epsilon)


def test_pair_tables_match_scalar_mixing():
    ff = default_forcefield()
    a = ["C", "N", "O"]
    b = ["S", "H"]
    sigma, epsilon = ff.pair_tables(a, b)
    assert sigma.shape == (3, 2)
    for i, ca in enumerate(a):
        for j, cb in enumerate(b):
            mixed = ff.mix(ca, cb)
            assert sigma[i, j] == pytest.approx(mixed.sigma)
            assert epsilon[i, j] == pytest.approx(mixed.epsilon)


def test_with_override_creates_new_forcefield():
    ff = default_forcefield()
    custom = ff.with_override("C", LJParameters(sigma=9.0, epsilon=1.0))
    assert custom.lookup("C").sigma == 9.0
    assert ff.lookup("C").sigma != 9.0  # original untouched


@given(
    s1=st.floats(0.5, 5.0),
    s2=st.floats(0.5, 5.0),
    e1=st.floats(0.001, 2.0),
    e2=st.floats(0.001, 2.0),
)
def test_mixing_bounds_property(s1, s2, e1, e2):
    """Mixed sigma lies between the inputs; mixed epsilon is the geometric
    mean, hence also between the inputs."""
    ff = ForceField(
        {"A": LJParameters(s1, e1), "B": LJParameters(s2, e2)}
    )
    mixed = ff.mix("A", "B")
    assert min(s1, s2) <= mixed.sigma <= max(s1, s2)
    assert min(e1, e2) - 1e-12 <= mixed.epsilon <= max(e1, e2) + 1e-12
