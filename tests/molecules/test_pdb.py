"""PDB reader/writer tests, including round-trips and malformed input."""

import numpy as np
import pytest

from repro.errors import PDBParseError
from repro.molecules.pdb import dumps_pdb, loads_pdb, read_pdb, write_pdb
from repro.molecules.structures import Ligand, Molecule, Receptor
from repro.molecules.synthetic import generate_ligand, generate_receptor

SAMPLE = """\
TITLE     test molecule
ATOM      1  N   ALA A   1      11.104   6.134  -6.504  1.00  0.00           N
ATOM      2  CA  ALA A   1      11.639   6.071  -5.147  1.00  0.00           C
HETATM    3  O1  LIG A   2       8.000   1.250   0.000  1.00  0.00           O
END
"""


def test_parse_sample():
    m = loads_pdb(SAMPLE)
    assert m.n_atoms == 3
    assert list(m.elements) == ["N", "C", "O"]
    assert m.title == "test molecule"
    np.testing.assert_allclose(m.coords[0], [11.104, 6.134, -6.504])
    assert list(m.residues) == ["ALA", "ALA", "LIG"]
    assert list(m.residue_indices) == [1, 1, 2]


def test_parse_kind_selects_class():
    assert isinstance(loads_pdb(SAMPLE, kind="receptor"), Receptor)
    assert isinstance(loads_pdb(SAMPLE, kind="ligand"), Ligand)
    assert type(loads_pdb(SAMPLE)) is Molecule
    with pytest.raises(PDBParseError):
        loads_pdb(SAMPLE, kind="protein")


def test_element_inferred_from_name_when_column_missing():
    line = "ATOM      1  CA  ALA A   1      11.104   6.134  -6.504"
    m = loads_pdb(line + "\n")
    # 'CA' prefers the 2-char symbol if tabulated: Ca (calcium) is known.
    assert m.elements[0] in ("Ca", "C")


def test_empty_document_raises():
    with pytest.raises(PDBParseError, match="no ATOM"):
        loads_pdb("TITLE     nothing\nEND\n")


def test_short_atom_line_raises():
    with pytest.raises(PDBParseError, match="too short"):
        loads_pdb("ATOM      1  N   ALA A   1      11.104\n")


def test_bad_coordinates_raise():
    bad = SAMPLE.replace("11.104", "xx.xxx")
    with pytest.raises(PDBParseError, match="bad coordinates"):
        loads_pdb(bad)


def test_unknown_element_raises():
    bad = SAMPLE.replace(
        "  1.00  0.00           N", "  1.00  0.00           Qq"
    )
    with pytest.raises(PDBParseError, match="unknown element"):
        loads_pdb(bad)


def test_endmdl_stops_parsing():
    doc = SAMPLE.replace("END\n", "ENDMDL\n") + SAMPLE.replace("TITLE     test molecule\n", "")
    m = loads_pdb(doc)
    assert m.n_atoms == 3  # second model ignored


def test_roundtrip_synthetic_receptor(tmp_path):
    receptor = generate_receptor(120, seed=5, title="roundtrip receptor")
    path = tmp_path / "receptor.pdb"
    write_pdb(receptor, path)
    back = read_pdb(path, kind="receptor")
    assert isinstance(back, Receptor)
    assert back.n_atoms == receptor.n_atoms
    assert list(back.elements) == list(receptor.elements)
    # PDB coordinates have 3 decimal places.
    np.testing.assert_allclose(back.coords, receptor.coords, atol=5e-4)
    assert back.title == "roundtrip receptor"
    assert list(back.residue_indices) == list(receptor.residue_indices)


def test_roundtrip_ligand_uses_hetatm():
    ligand = generate_ligand(10, seed=6)
    text = dumps_pdb(ligand)
    assert "HETATM" in text
    assert "ATOM  " not in text
    back = loads_pdb(text, kind="ligand")
    np.testing.assert_allclose(back.coords, ligand.coords, atol=5e-4)


def test_write_rejects_out_of_range_coordinates():
    m = Molecule(coords=np.array([[123456.0, 0, 0]]), elements=["C"])
    with pytest.raises(PDBParseError, match="fixed-width"):
        dumps_pdb(m)


def test_write_path_variant(tmp_path):
    ligand = generate_ligand(6, seed=7)
    path = tmp_path / "lig.pdb"
    write_pdb(ligand, str(path))
    assert path.exists()
    assert read_pdb(str(path)).n_atoms == 6
