"""Spot-extraction tests."""

import numpy as np
import pytest

from repro.errors import MoleculeError
from repro.molecules.spots import DEFAULT_STANDOFF, farthest_point_sample, find_spots
from repro.molecules.surface import surface_mask
from repro.molecules.synthetic import generate_receptor


def test_find_spots_count_and_indices():
    r = generate_receptor(600, seed=1)
    spots = find_spots(r, 8)
    assert len(spots) == 8
    assert [s.index for s in spots] == list(range(8))


def test_spot_normals_are_unit_and_outward():
    r = generate_receptor(600, seed=2)
    centroid = r.centroid()
    for spot in find_spots(r, 6):
        assert np.linalg.norm(spot.normal) == pytest.approx(1.0)
        anchor = r.coords[spot.anchor_atom]
        # normal points from centroid through the anchor
        assert np.dot(spot.normal, anchor - centroid) > 0


def test_spot_centers_offset_outward_from_anchor():
    r = generate_receptor(600, seed=3)
    for spot in find_spots(r, 4):
        anchor = r.coords[spot.anchor_atom]
        np.testing.assert_allclose(
            spot.center, anchor + DEFAULT_STANDOFF * spot.normal, atol=1e-9
        )


def test_spot_anchors_are_surface_atoms():
    r = generate_receptor(800, seed=4)
    mask = surface_mask(r)
    for spot in find_spots(r, 10):
        assert mask[spot.anchor_atom]


def test_spots_are_well_separated():
    """Farthest-point sampling spreads spots across the surface."""
    r = generate_receptor(1200, seed=5)
    spots = find_spots(r, 8)
    centers = np.stack([s.center for s in spots])
    d = np.linalg.norm(centers[:, None] - centers[None, :], axis=-1)
    np.fill_diagonal(d, np.inf)
    # minimum pairwise separation should be several Å on a globule this size
    assert d.min() > 4.0


def test_anchor_element_fallback():
    """When the anchor element is rare, all surface atoms become anchors."""
    r = generate_receptor(400, seed=6)
    spots = find_spots(r, 5, anchor_element="I")  # no iodine in proteins
    assert len(spots) == 5


def test_validation():
    r = generate_receptor(200, seed=7)
    with pytest.raises(MoleculeError):
        find_spots(r, 0)
    with pytest.raises(MoleculeError):
        find_spots(r, 4, search_radius=-1.0)
    with pytest.raises(MoleculeError):
        find_spots(r, 10**6)  # more spots than surface atoms


def test_farthest_point_sample_properties(rng):
    pts = rng.normal(size=(50, 3))
    idx = farthest_point_sample(pts, 10)
    assert len(set(idx.tolist())) == 10
    assert idx[0] == 0  # default start
    with pytest.raises(MoleculeError):
        farthest_point_sample(pts, 51)


def test_farthest_point_sample_is_deterministic(rng):
    pts = rng.normal(size=(30, 3))
    a = farthest_point_sample(pts, 7)
    b = farthest_point_sample(pts, 7)
    np.testing.assert_array_equal(a, b)
