"""Unit tests for the molecule containers."""

import numpy as np
import pytest

from repro.errors import MoleculeError
from repro.molecules.structures import Ligand, Molecule, Receptor


def _simple_molecule():
    return Molecule(
        coords=np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 2.0, 0.0]]),
        elements=["C", "O", "N"],
        charges=np.array([0.1, -0.3, 0.2]),
        names=["C1", "O1", "N1"],
        residues=["ALA", "ALA", "GLY"],
        residue_indices=np.array([1, 1, 2]),
        title="tri",
    )


def test_basic_properties():
    m = _simple_molecule()
    assert m.n_atoms == 3
    assert len(m) == 3
    assert "tri" in repr(m)


def test_validation_rejects_bad_shapes():
    with pytest.raises(MoleculeError):
        Molecule(coords=np.zeros((3, 2)), elements=["C"] * 3)
    with pytest.raises(MoleculeError):
        Molecule(coords=np.zeros((3, 3)), elements=["C"] * 2)
    with pytest.raises(MoleculeError):
        Molecule(coords=np.zeros((3, 3)), elements=["C"] * 3, charges=np.zeros(2))


def test_validation_rejects_empty_and_nonfinite():
    with pytest.raises(MoleculeError):
        Molecule(coords=np.zeros((0, 3)), elements=[])
    bad = np.zeros((2, 3))
    bad[1, 2] = np.nan
    with pytest.raises(MoleculeError):
        Molecule(coords=bad, elements=["C", "C"])


def test_unknown_element_rejected():
    with pytest.raises(MoleculeError):
        Molecule(coords=np.zeros((1, 3)), elements=["Zz"])


def test_atom_accessor_and_iteration():
    m = _simple_molecule()
    atom = m.atom(1)
    assert atom.element == "O"
    assert atom.position == (1.0, 0.0, 0.0)
    assert atom.charge == pytest.approx(-0.3)
    assert atom.residue == "ALA"
    assert [a.element for a in m.atoms()] == ["C", "O", "N"]
    with pytest.raises(MoleculeError):
        m.atom(3)


def test_centroid_and_center_of_mass_differ():
    m = _simple_molecule()
    centroid = m.centroid()
    com = m.center_of_mass()
    np.testing.assert_allclose(centroid, [1 / 3, 2 / 3, 0.0])
    # O is heavier than C, so COM shifts toward O relative to the centroid.
    assert com[0] > centroid[0] - 1e-12
    assert not np.allclose(com, centroid)


def test_translated_and_centered():
    m = _simple_molecule()
    t = m.translated(np.array([1.0, 1.0, 1.0]))
    np.testing.assert_allclose(t.coords, m.coords + 1.0)
    assert t.title == m.title
    c = m.centered()
    np.testing.assert_allclose(c.centroid(), 0.0, atol=1e-12)
    # Original is untouched (transformed copies).
    assert not np.allclose(m.centroid(), 0.0)


def test_translated_rejects_bad_offset():
    with pytest.raises(MoleculeError):
        _simple_molecule().translated(np.zeros(2))


def test_geometry_helpers():
    m = _simple_molecule()
    lo, hi = m.bounding_box()
    np.testing.assert_allclose(lo, [0, 0, 0])
    np.testing.assert_allclose(hi, [1, 2, 0])
    assert m.radius_of_gyration() > 0
    assert m.max_radius() >= m.radius_of_gyration()


def test_element_counts():
    m = _simple_molecule()
    assert m.element_counts() == {"C": 1, "N": 1, "O": 1}


def test_ligand_size_guard():
    with pytest.raises(MoleculeError, match="small molecules"):
        Ligand(coords=np.random.default_rng(0).normal(size=(300, 3)), elements=["C"] * 300)


def test_receptor_is_molecule_subclass():
    r = Receptor(coords=np.zeros((1, 3)), elements=["C"])
    assert isinstance(r, Molecule)
    # translated copies preserve the subclass
    assert isinstance(r.translated(np.ones(3)), Receptor)
