"""Surface-detection tests."""

import numpy as np
import pytest

from repro.errors import MoleculeError
from repro.molecules.structures import Molecule
from repro.molecules.surface import surface_atoms, surface_fraction, surface_mask
from repro.molecules.synthetic import generate_receptor


def test_surface_fraction_in_plausible_band():
    r = generate_receptor(2000, seed=1)
    frac = surface_fraction(r)
    assert 0.15 < frac < 0.75


def test_outermost_atoms_are_surface():
    r = generate_receptor(1500, seed=2)
    mask = surface_mask(r)
    radii = np.linalg.norm(r.coords - r.centroid(), axis=1)
    outer10 = np.argsort(radii)[-10:]
    assert mask[outer10].all()


def test_innermost_atoms_are_buried():
    r = generate_receptor(1500, seed=3)
    mask = surface_mask(r)
    radii = np.linalg.norm(r.coords - r.centroid(), axis=1)
    inner10 = np.argsort(radii)[:10]
    assert not mask[inner10].any()


def test_tiny_molecule_everything_is_surface():
    m = Molecule(coords=np.eye(3) * 2.0, elements=["C", "C", "C"])
    assert surface_mask(m).all()


def test_absolute_threshold_override():
    r = generate_receptor(400, seed=4)
    none_buried = surface_mask(r, neighbor_threshold=10**6)
    assert none_buried.all()
    all_buried = surface_mask(r, neighbor_threshold=1)
    assert not all_buried.any() or all_buried.mean() < 0.2


def test_surface_atoms_returns_sorted_indices():
    r = generate_receptor(300, seed=5)
    idx = surface_atoms(r)
    assert np.all(np.diff(idx) > 0)
    assert surface_mask(r)[idx].all()


def test_parameter_validation():
    r = generate_receptor(100, seed=6)
    with pytest.raises(MoleculeError):
        surface_mask(r, probe_radius=-1.0)
    with pytest.raises(MoleculeError):
        surface_mask(r, neighbor_threshold=0)
    with pytest.raises(MoleculeError):
        surface_mask(r, threshold_fraction=0.0)


def test_surface_fraction_shrinks_with_size():
    """Bigger globules have proportionally less surface (area/volume)."""
    small = surface_fraction(generate_receptor(300, seed=7))
    large = surface_fraction(generate_receptor(5000, seed=7))
    assert large < small + 0.1  # allow noise, but no large inversion
