"""Tests for the synthetic structure generators (the Table 5 stand-ins)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MoleculeError
from repro.molecules.elements import get_element
from repro.molecules.synthetic import (
    LIGAND_HEAVY_COMPOSITION,
    PROTEIN_HEAVY_COMPOSITION,
    generate_ligand,
    generate_receptor,
)


def test_receptor_exact_atom_count():
    for n in (64, 300, 3264):
        assert generate_receptor(n, seed=1).n_atoms == n


def test_ligand_exact_atom_count():
    for n in (1, 18, 45):
        assert generate_ligand(n, seed=1).n_atoms == n


def test_generation_is_deterministic():
    a = generate_receptor(200, seed=42)
    b = generate_receptor(200, seed=42)
    np.testing.assert_array_equal(a.coords, b.coords)
    assert list(a.elements) == list(b.elements)
    c = generate_receptor(200, seed=43)
    assert not np.allclose(a.coords, c.coords)


def test_receptor_rejects_tiny_sizes():
    with pytest.raises(MoleculeError):
        generate_receptor(3)
    with pytest.raises(MoleculeError):
        generate_ligand(0)


def test_receptor_is_centered_and_compact():
    r = generate_receptor(500, seed=2)
    np.testing.assert_allclose(r.centroid(), 0.0, atol=1e-9)
    # Packing density: the bounding sphere should be close to the target
    # globule radius for protein density (~10 Å³/atom), not dispersed.
    target_radius = (3 * 500 * 10.0 / (4 * np.pi)) ** (1 / 3)
    assert r.max_radius() < 2.5 * target_radius


def test_receptor_composition_close_to_protein_statistics():
    r = generate_receptor(3000, seed=3)
    counts = r.element_counts()
    for sym, frac in PROTEIN_HEAVY_COMPOSITION.items():
        observed = counts.get(sym, 0) / r.n_atoms
        assert observed == pytest.approx(frac, abs=0.05)


def test_receptor_charges_are_neutral_overall():
    r = generate_receptor(800, seed=4)
    assert abs(r.charges.sum()) < 1e-9
    assert r.charges.std() > 0.01  # but individually non-trivial


def test_receptor_has_residue_structure():
    r = generate_receptor(160, seed=5)
    assert len(set(r.residue_indices)) == 160 // 8
    assert all(res != "UNK" for res in r.residues)


def test_ligand_is_connected_graph():
    """Every atom must be within covalent bonding distance of some other."""
    lig = generate_ligand(30, seed=6)
    radii = np.array([get_element(str(e)).covalent_radius for e in lig.elements])
    d = np.linalg.norm(lig.coords[:, None] - lig.coords[None, :], axis=-1)
    np.fill_diagonal(d, np.inf)
    bond_limit = radii[:, None] + radii[None, :] + 0.45
    adjacency = d <= bond_limit
    # BFS from atom 0 must reach everything.
    seen = {0}
    frontier = [0]
    while frontier:
        nxt = []
        for i in frontier:
            for j in np.flatnonzero(adjacency[i]):
                if j not in seen:
                    seen.add(int(j))
                    nxt.append(int(j))
        frontier = nxt
    assert len(seen) == lig.n_atoms


def test_ligand_composition_is_drug_like():
    lig = generate_ligand(200, seed=7)  # generate via Molecule? 200 > 256 guard no
    counts = lig.element_counts()
    carbon_fraction = counts.get("C", 0) / lig.n_atoms
    assert carbon_fraction == pytest.approx(
        LIGAND_HEAVY_COMPOSITION["C"], abs=0.12
    )


def test_ligand_centered():
    lig = generate_ligand(25, seed=8)
    np.testing.assert_allclose(lig.coords.mean(axis=0), 0.0, atol=1e-9)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(8, 400), seed=st.integers(0, 2**31 - 1))
def test_receptor_generation_never_produces_invalid_structures(n, seed):
    r = generate_receptor(n, seed=seed)
    assert r.n_atoms == n
    assert np.all(np.isfinite(r.coords))


@settings(max_examples=10, deadline=None)
@given(n=st.integers(1, 64), seed=st.integers(0, 2**31 - 1))
def test_ligand_generation_never_produces_invalid_structures(n, seed):
    lig = generate_ligand(n, seed=seed)
    assert lig.n_atoms == n
    assert np.all(np.isfinite(lig.coords))
