"""Tests for the pocket and molded-site generators."""

import numpy as np
import pytest

from repro.errors import MoleculeError
from repro.molecules.synthetic import (
    generate_bound_complex,
    generate_ligand,
    generate_receptor_with_pocket,
)


# ----------------------------------------------------------------------
# carved pocket
# ----------------------------------------------------------------------
def test_pocket_receptor_exact_count_and_cavity():
    receptor, pocket = generate_receptor_with_pocket(800, pocket_radius=5.0, seed=1)
    assert receptor.n_atoms == 800
    d = np.linalg.norm(receptor.coords - pocket, axis=1)
    assert d.min() > 5.0 - 1e-9  # the cavity is empty
    # But walls exist close to the cavity boundary.
    assert d.min() < 7.0


def test_pocket_is_near_the_surface():
    receptor, pocket = generate_receptor_with_pocket(800, pocket_radius=5.0, seed=2)
    assert np.linalg.norm(pocket) > 0.5 * receptor.max_radius()


def test_pocket_determinism():
    a, pa = generate_receptor_with_pocket(500, seed=3)
    b, pb = generate_receptor_with_pocket(500, seed=3)
    np.testing.assert_array_equal(a.coords, b.coords)
    np.testing.assert_array_equal(pa, pb)


def test_pocket_validation():
    with pytest.raises(MoleculeError):
        generate_receptor_with_pocket(10)
    with pytest.raises(MoleculeError):
        generate_receptor_with_pocket(500, pocket_radius=-1.0)
    with pytest.raises(MoleculeError, match="does not fit"):
        generate_receptor_with_pocket(500, pocket_radius=30.0, seed=1)


# ----------------------------------------------------------------------
# molded co-crystal site
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def complex_fixture():
    ligand = generate_ligand(18, seed=7)
    receptor, position, orientation = generate_bound_complex(900, ligand, seed=8)
    return ligand, receptor, position, orientation


def test_bound_complex_exact_count(complex_fixture):
    _, receptor, _, _ = complex_fixture
    assert receptor.n_atoms == 900


def test_reference_pose_has_no_clash(complex_fixture):
    """Every receptor atom sits beyond the clearance from every ligand atom
    of the reference pose — the molded pose is clash-free by construction."""
    from repro.molecules.transforms import apply_pose

    ligand, receptor, position, orientation = complex_fixture
    centred = ligand.coords - ligand.coords.mean(axis=0)
    placed = apply_pose(centred, position, orientation)
    d = np.linalg.norm(
        receptor.coords[:, None, :] - placed[None, :, :], axis=2
    )
    assert d.min() > 3.9 - 1e-6


def test_reference_pose_is_in_contact(complex_fixture):
    """...but the walls are close: the nearest receptor atom is within the
    LJ attraction zone, and many atoms are in contact range."""
    from repro.molecules.transforms import apply_pose

    ligand, receptor, position, orientation = complex_fixture
    centred = ligand.coords - ligand.coords.mean(axis=0)
    placed = apply_pose(centred, position, orientation)
    d = np.linalg.norm(
        receptor.coords[:, None, :] - placed[None, :, :], axis=2
    ).min(axis=1)
    assert (d < 6.0).sum() >= 10  # a real cavity wall, not open solvent


def test_reference_pose_scores_well(complex_fixture):
    from repro.scoring.lennard_jones import LennardJonesScoring

    ligand, receptor, position, orientation = complex_fixture
    scorer = LennardJonesScoring().bind(receptor, ligand)
    score = scorer.score(position[None, :], orientation[None, :])[0]
    assert score < -3.0  # bound, not merely non-clashing


def test_bound_complex_validation():
    ligand = generate_ligand(10, seed=1)
    with pytest.raises(MoleculeError):
        generate_bound_complex(10, ligand)
    with pytest.raises(MoleculeError):
        generate_bound_complex(900, ligand, clearance=-1.0)
    with pytest.raises(MoleculeError):
        generate_bound_complex(900, ligand, burial=2.0)
