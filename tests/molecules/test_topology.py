"""Topology (bond graph) tests."""

import numpy as np
import pytest

from repro.errors import MoleculeError
from repro.molecules.structures import Ligand, Molecule
from repro.molecules.synthetic import generate_ligand
from repro.molecules.topology import (
    bond_graph,
    connected_components,
    infer_bonds,
    is_connected,
    ring_atoms,
    rotatable_bonds,
    topology_summary,
)


def _chain(n, spacing=1.5):
    """A straight carbon chain with ``spacing`` Å bonds."""
    coords = np.zeros((n, 3))
    coords[:, 0] = np.arange(n) * spacing
    return Ligand(coords=coords, elements=["C"] * n)


def _triangle():
    """A 3-ring of carbons at bonding distance."""
    coords = np.array([[0.0, 0, 0], [1.5, 0, 0], [0.75, 1.3, 0]])
    return Ligand(coords=coords, elements=["C", "C", "C"])


def test_infer_bonds_chain():
    bonds = infer_bonds(_chain(4))
    assert bonds == [(0, 1), (1, 2), (2, 3)]


def test_infer_bonds_respects_distance():
    far = _chain(3, spacing=5.0)
    assert infer_bonds(far) == []


def test_infer_bonds_tolerance_validation():
    with pytest.raises(MoleculeError):
        infer_bonds(_chain(3), tolerance=-0.1)


def test_bond_graph_nodes_carry_elements():
    g = bond_graph(_chain(3))
    assert g.number_of_nodes() == 3
    assert g.nodes[0]["element"] == "C"


def test_connectivity_checks():
    assert is_connected(_chain(5))
    two_parts = Ligand(
        coords=np.array([[0.0, 0, 0], [1.5, 0, 0], [50.0, 0, 0], [51.5, 0, 0]]),
        elements=["C"] * 4,
    )
    assert not is_connected(two_parts)
    comps = connected_components(two_parts)
    assert len(comps) == 2
    assert all(len(c) == 2 for c in comps)


def test_ring_detection():
    assert ring_atoms(_triangle()) == {0, 1, 2}
    assert ring_atoms(_chain(5)) == set()


def test_rotatable_bonds_chain():
    """In a 5-chain, only the middle bonds are rotatable (terminal bonds
    rotate nothing)."""
    assert rotatable_bonds(_chain(5)) == [(1, 2), (2, 3)]
    assert rotatable_bonds(_chain(3)) == []  # all bonds touch terminals


def test_ring_bonds_not_rotatable():
    assert rotatable_bonds(_triangle()) == []


def test_synthetic_ligands_are_connected():
    for seed in range(5):
        lig = generate_ligand(24, seed=seed)
        assert is_connected(lig), f"seed {seed} produced a disconnected ligand"


def test_topology_summary_fields():
    summary = topology_summary(generate_ligand(30, seed=9))
    assert summary["n_atoms"] == 30
    assert summary["connected"] is True
    assert summary["n_components"] == 1
    assert summary["n_bonds"] >= 29  # spanning tree at minimum
    assert summary["n_rotatable_bonds"] >= 0


def test_single_atom_topology():
    atom = Molecule(coords=np.zeros((1, 3)), elements=["C"])
    summary = topology_summary(atom)
    assert summary["n_bonds"] == 0
    assert summary["connected"] is True  # one node is trivially connected
