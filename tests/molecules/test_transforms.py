"""Unit + property tests for quaternions and pose application."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import MoleculeError
from repro.molecules.transforms import (
    apply_pose,
    apply_poses,
    identity_quaternion,
    normalize_quaternion,
    quaternion_conjugate,
    quaternion_from_axis_angle,
    quaternion_multiply,
    quaternion_to_matrix,
    random_quaternion,
    rotate_points,
    small_random_rotation,
)

finite_floats = st.floats(-10.0, 10.0, allow_nan=False)
quat_strategy = arrays(np.float64, (4,), elements=st.floats(-1.0, 1.0)).filter(
    lambda q: np.linalg.norm(q) > 1e-3
)
points_strategy = arrays(np.float64, (5, 3), elements=finite_floats)


def test_identity_quaternion_rotates_nothing(rng):
    pts = rng.normal(size=(7, 3))
    np.testing.assert_allclose(rotate_points(pts, identity_quaternion()), pts)


def test_normalize_rejects_zero():
    with pytest.raises(MoleculeError):
        normalize_quaternion(np.zeros(4))


def test_normalize_batched():
    q = np.array([[2.0, 0, 0, 0], [0, 0, 3.0, 0]])
    n = normalize_quaternion(q)
    np.testing.assert_allclose(np.linalg.norm(n, axis=1), 1.0)


def test_axis_angle_quarter_turn():
    q = quaternion_from_axis_angle(np.array([0.0, 0.0, 1.0]), np.pi / 2)
    rotated = rotate_points(np.array([[1.0, 0.0, 0.0]]), q)
    np.testing.assert_allclose(rotated, [[0.0, 1.0, 0.0]], atol=1e-12)


def test_axis_angle_rejects_zero_axis():
    with pytest.raises(MoleculeError):
        quaternion_from_axis_angle(np.zeros(3), 1.0)


def test_quaternion_multiply_composes_rotations(rng):
    q1 = random_quaternion(rng)
    q2 = random_quaternion(rng)
    pts = rng.normal(size=(6, 3))
    seq = rotate_points(rotate_points(pts, q2), q1)
    composed = rotate_points(pts, quaternion_multiply(q1, q2))
    np.testing.assert_allclose(seq, composed, atol=1e-10)


def test_conjugate_inverts_rotation(rng):
    q = random_quaternion(rng)
    pts = rng.normal(size=(6, 3))
    back = rotate_points(rotate_points(pts, q), quaternion_conjugate(q))
    np.testing.assert_allclose(back, pts, atol=1e-10)


def test_random_quaternion_shapes(rng):
    assert random_quaternion(rng).shape == (4,)
    assert random_quaternion(rng, 5).shape == (5, 4)
    np.testing.assert_allclose(
        np.linalg.norm(random_quaternion(rng, 100), axis=1), 1.0, atol=1e-12
    )


def test_small_random_rotation_angle_bound(rng):
    qs = small_random_rotation(rng, max_angle=0.2, n=200)
    angles = 2 * np.arccos(np.clip(np.abs(qs[:, 0]), -1, 1))
    assert np.all(angles <= 0.2 + 1e-9)


def test_apply_poses_matches_apply_pose(rng):
    pts = rng.normal(size=(8, 3))
    translations = rng.normal(size=(5, 3))
    quats = random_quaternion(rng, 5)
    batch = apply_poses(pts, translations, quats)
    assert batch.shape == (5, 8, 3)
    for i in range(5):
        np.testing.assert_allclose(
            batch[i], apply_pose(pts, translations[i], quats[i]), atol=1e-12
        )


def test_apply_poses_validates_shapes(rng):
    pts = rng.normal(size=(4, 3))
    with pytest.raises(MoleculeError):
        apply_poses(pts, np.zeros((3, 2)), np.zeros((3, 4)))
    with pytest.raises(MoleculeError):
        apply_poses(pts, np.zeros((3, 3)), np.zeros((2, 4)))


# ----------------------------------------------------------------------
# property-based invariants
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(q=quat_strategy, pts=points_strategy)
def test_rotation_is_isometry(q, pts):
    """Rotations preserve all pairwise distances."""
    rotated = rotate_points(pts, q)
    d_before = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
    d_after = np.linalg.norm(rotated[:, None] - rotated[None, :], axis=-1)
    np.testing.assert_allclose(d_before, d_after, atol=1e-8)


@settings(max_examples=50, deadline=None)
@given(q=quat_strategy)
def test_rotation_matrix_is_orthogonal(q):
    m = quaternion_to_matrix(q)
    np.testing.assert_allclose(m @ m.T, np.eye(3), atol=1e-10)
    assert np.linalg.det(m) == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=50, deadline=None)
@given(q=quat_strategy, pts=points_strategy, t=arrays(np.float64, (3,), elements=finite_floats))
def test_pose_roundtrip(q, pts, t):
    """Applying a pose then its inverse recovers the points."""
    q = normalize_quaternion(q)
    moved = apply_pose(pts, t, q)
    back = rotate_points(moved - t, quaternion_conjugate(q))
    np.testing.assert_allclose(back, pts, atol=1e-7)


@settings(max_examples=50, deadline=None)
@given(q1=quat_strategy, q2=quat_strategy)
def test_multiply_preserves_unit_norm(q1, q2):
    q1 = normalize_quaternion(q1)
    q2 = normalize_quaternion(q2)
    prod = quaternion_multiply(q1, q2)
    assert np.linalg.norm(prod) == pytest.approx(1.0, abs=1e-10)
