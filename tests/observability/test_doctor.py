"""Doctor coverage: artifact fusion, dead-node naming, verdict synthesis."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.observability import diagnose_campaign
from repro.observability.flight import FlightRecorder, flight_dir


class FakeClock:
    def __init__(self, start=0.0, step=0.5):
        self.now = start
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def write_journal(store, records):
    lines = [json.dumps(r, sort_keys=True) for r in records]
    (store.parent / (store.name + ".journal")).write_text(
        "\n".join(lines) + "\n", encoding="utf-8"
    )


def write_flight(store, role, events):
    rec = FlightRecorder(role, clock=FakeClock(), wall_clock=FakeClock(1e9))
    for kind, fields in events:
        rec.record(kind, **fields)
    rec.dump(flight_dir(store) / f"{role}.flight")


def write_metrics(store, doc):
    base = {
        "schema_version": 1,
        "counters": [],
        "gauges": [],
        "histograms": [],
        "spans": [],
        "dropped_spans": 0,
    }
    base.update(doc)
    (store.parent / (store.name + ".metrics.json")).write_text(
        json.dumps(base), encoding="utf-8"
    )


def test_nothing_to_diagnose_raises(tmp_path):
    with pytest.raises(ObservabilityError, match="nothing to diagnose"):
        diagnose_campaign(tmp_path / "ghost.sqlite")


def test_dead_node_is_named_with_evidence(tmp_path):
    store = tmp_path / "campaign.sqlite"
    write_journal(
        store,
        [
            {"t": 1.0, "record": "campaign_start", "config_hash": "abc"},
            {"t": 1.1, "record": "shard_start", "shard": 0, "start": 0,
             "stop": 4, "node": 0},
            {"t": 1.2, "record": "shard_start", "shard": 1, "start": 4,
             "stop": 8, "node": 1},
            {"t": 2.0, "record": "shard_finish", "shard": 0, "done": 4,
             "failed": 0, "node": 0},
        ],
    )
    write_flight(
        store,
        "coordinator",
        [
            ("node.connect", {"node": 0, "peer": "127.0.0.1:1"}),
            ("node.connect", {"node": 1, "peer": "127.0.0.1:2"}),
            ("lease.grant", {"shard": 0, "node": 0, "stolen": False}),
            ("lease.grant", {"shard": 1, "node": 1, "stolen": False}),
            ("node.heartbeat", {"node": 1, "done": 2, "failed": 0}),
            ("node.dead", {"node": 1, "reason": "heartbeat timeout",
                           "reclaimed": [1], "requeued": 1}),
        ],
    )
    report = diagnose_campaign(store)
    text = report.to_text()
    assert "node 1 died" in text
    assert "heartbeat timeout" in text
    assert "1 lease(s) reclaimed" in text
    assert "last telemetry heartbeat" in text
    assert report.verdict == "bad"  # campaign never finished
    diagnosis = next(s for s in report.sections if s.title == "diagnosis")
    assert diagnosis.headline == "campaign is INCOMPLETE"
    assert any("reclaimed but the campaign never finished" in line
               for line in diagnosis.lines)


def test_healthy_completed_campaign_reads_ok(tmp_path):
    store = tmp_path / "campaign.sqlite"
    write_journal(
        store,
        [
            {"t": 1.0, "record": "campaign_start", "config_hash": "abc"},
            {"t": 1.1, "record": "shard_start", "shard": 0, "start": 0,
             "stop": 4},
            {"t": 2.0, "record": "shard_finish", "shard": 0, "done": 4,
             "failed": 0},
            {"t": 2.1, "record": "campaign_finish", "n_ligands": 4},
        ],
    )
    write_flight(store, "runner", [("shard.finish", {"shard": 0, "wall": 1.5})])
    report = diagnose_campaign(store)
    assert report.verdict == "ok"
    assert "nothing anomalous" in report.to_text()


def test_steal_storm_flagged(tmp_path):
    store = tmp_path / "campaign.sqlite"
    grants = [("lease.grant", {"shard": i, "node": i % 2, "stolen": i >= 4})
              for i in range(10)]
    steals = [("steal", {"thief": 1, "victim": 0, "shard": i})
              for i in range(4, 10)]
    write_journal(store, [
        {"t": 1.0, "record": "campaign_start", "config_hash": "x"},
        {"t": 9.0, "record": "campaign_finish", "n_ligands": 40},
    ])
    write_flight(store, "coordinator", grants + steals)
    report = diagnose_campaign(store)
    stealing = next(s for s in report.sections if s.title == "work stealing")
    assert stealing.verdict == "warn"
    assert "steal storm" in stealing.headline
    assert any("node 0 was stolen from 6 time(s)" in line
               for line in stealing.lines)


def test_fsync_stalls_and_slow_shards_surface(tmp_path):
    store = tmp_path / "campaign.sqlite"
    write_journal(store, [
        {"t": 1.0, "record": "campaign_start", "config_hash": "x"},
        {"t": 1.1, "record": "shard_start", "shard": 3, "start": 0,
         "stop": 4, "node": 0},
        {"t": 9.0, "record": "campaign_finish", "n_ligands": 40},
    ])
    finishes = [("shard.finish", {"shard": i, "wall": 0.5}) for i in range(6)]
    write_flight(
        store,
        "coordinator",
        finishes
        + [
            ("shard.finish", {"shard": 3, "wall": 5.0}),
            ("journal.stall", {"records": 8, "seconds": 0.42}),
        ],
    )
    report = diagnose_campaign(store)
    fsync = next(s for s in report.sections if s.title == "journal fsync")
    assert fsync.verdict == "warn"
    assert any("0.420s" in line for line in fsync.lines)
    slow = next(s for s in report.sections if s.title == "slow shards")
    assert slow.verdict == "warn"
    assert any("shard 3 on node 0" in line and "10.0x median" in line
               for line in slow.lines)


def test_share_drift_from_metrics_snapshot(tmp_path):
    store = tmp_path / "campaign.sqlite"
    write_journal(store, [
        {"t": 1.0, "record": "campaign_start", "config_hash": "x"},
        {"t": 9.0, "record": "campaign_finish", "n_ligands": 8},
    ])
    write_metrics(store, {
        "gauges": [
            {"name": "host.warmup.weight", "tags": {"worker": 0}, "value": 0.5},
            {"name": "host.warmup.weight", "tags": {"worker": 1}, "value": 0.5},
        ],
        "counters": [
            {"name": "host.worker.poses", "tags": {"worker": 0}, "value": 90.0},
            {"name": "host.worker.poses", "tags": {"worker": 1}, "value": 10.0},
        ],
    })
    report = diagnose_campaign(store)
    drift = next(s for s in report.sections if s.title == "Eq. 1 share drift")
    assert drift.verdict == "warn"
    assert "worker 0 drifted +40.0%" in drift.headline


def test_report_json_shape(tmp_path):
    store = tmp_path / "campaign.sqlite"
    write_journal(store, [
        {"t": 1.0, "record": "campaign_start", "config_hash": "x"},
        {"t": 2.0, "record": "campaign_finish", "n_ligands": 1},
    ])
    report = diagnose_campaign(store)
    doc = json.loads(json.dumps(report.to_json()))
    assert doc["schema_version"] == 1
    assert doc["verdict"] in ("ok", "warn", "bad")
    titles = [s["title"] for s in doc["sections"]]
    assert titles == [
        "summary", "dead nodes", "work stealing", "Eq. 1 share drift",
        "journal fsync", "slow shards", "diagnosis",
    ]
    for section in doc["sections"]:
        assert set(section) == {"title", "verdict", "headline", "evidence"}


def test_torn_journal_tail_is_tolerated(tmp_path):
    store = tmp_path / "campaign.sqlite"
    journal = store.parent / (store.name + ".journal")
    records = [
        {"t": 1.0, "record": "campaign_start", "config_hash": "x"},
        {"t": 2.0, "record": "campaign_finish", "n_ligands": 1},
    ]
    text = "\n".join(json.dumps(r) for r in records) + "\n"
    journal.write_text(text + '{"t": 3.0, "record": "shard_st', encoding="utf-8")
    report = diagnose_campaign(store)
    summary = next(s for s in report.sections if s.title == "summary")
    assert "campaign_finish=yes" in " ".join(summary.lines)
