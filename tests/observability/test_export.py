"""Exporter coverage: JSON round-trip, Prometheus text format, validation."""

import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    METRICS_SCHEMA_VERSION,
    Telemetry,
    load_snapshot,
    loads_snapshot,
    snapshot_to_json,
    snapshot_to_prometheus,
    snapshot_to_text,
    write_snapshot,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.5
        return self.now


@pytest.fixture
def session():
    t = Telemetry(clock=FakeClock())
    t.counter("campaign.ligands.done").inc(4)
    t.counter("host.poses", mode="static").inc(256)
    t.gauge("engine.warmup.weight", device=0).set(0.7)
    t.histogram("campaign.dock.seconds", edges=(0.1, 1.0)).observe(0.05)
    t.histogram("campaign.dock.seconds", edges=(0.1, 1.0)).observe(0.5)
    t.histogram("campaign.dock.seconds", edges=(0.1, 1.0)).observe(5.0)
    with t.span("vs.screen", ligands=4):
        with t.span("campaign.shard", shard=0):
            pass
    return t


def test_combined_snapshot_validates_and_round_trips(session):
    snap = session.snapshot()
    assert snap["schema_version"] == METRICS_SCHEMA_VERSION
    assert "dropped_spans" in snap
    restored = loads_snapshot(snapshot_to_json(snap))
    assert restored == snap


def test_write_and_load_snapshot(tmp_path, session):
    path = tmp_path / "metrics.json"
    write_snapshot(session.snapshot(), path)
    doc = load_snapshot(path)
    assert doc == session.snapshot()


def test_load_missing_file_is_clean_error(tmp_path):
    with pytest.raises(ObservabilityError, match="cannot read"):
        load_snapshot(tmp_path / "nope.json")


def test_loads_rejects_bad_json_and_bad_documents():
    with pytest.raises(ObservabilityError, match="invalid metrics snapshot JSON"):
        loads_snapshot("{nope")
    with pytest.raises(ObservabilityError, match="must be a JSON object"):
        loads_snapshot("[1, 2]")
    with pytest.raises(ObservabilityError, match="version"):
        loads_snapshot('{"schema_version": 99}')
    doc = Telemetry().snapshot()
    del doc["histograms"]
    with pytest.raises(ObservabilityError, match="missing 'histograms'"):
        snapshot_to_json(doc)
    doc = Telemetry().snapshot()
    doc["counters"] = "not-a-list"
    with pytest.raises(ObservabilityError, match="must be a list"):
        snapshot_to_json(doc)


def test_prometheus_format_counters_gauges_and_types(session):
    text = snapshot_to_prometheus(session.snapshot())
    assert "# TYPE repro_campaign_ligands_done counter" in text
    assert "repro_campaign_ligands_done 4.0" in text
    assert 'repro_host_poses{mode="static"} 256.0' in text
    assert "# TYPE repro_engine_warmup_weight gauge" in text
    assert 'repro_engine_warmup_weight{device="0"} 0.7' in text


def test_prometheus_histogram_buckets_are_cumulative(session):
    text = snapshot_to_prometheus(session.snapshot())
    assert 'repro_campaign_dock_seconds_bucket{le="0.1"} 1' in text
    assert 'repro_campaign_dock_seconds_bucket{le="1.0"} 2' in text
    assert 'repro_campaign_dock_seconds_bucket{le="+Inf"} 3' in text
    assert "repro_campaign_dock_seconds_count 3" in text


def test_prometheus_spans_export_as_summaries(session):
    text = snapshot_to_prometheus(session.snapshot())
    assert "# TYPE repro_span_seconds summary" in text
    assert 'repro_span_seconds_count{span="vs.screen"} 1' in text
    assert 'repro_span_seconds_sum{span="campaign.shard"}' in text


def test_text_report_mentions_every_family(session):
    text = snapshot_to_text(session.snapshot())
    assert "counters:" in text and "campaign.ligands.done = 4" in text
    assert "gauges:" in text
    assert "histograms:" in text and "n=3" in text
    assert "spans (2 recorded, 0 dropped):" in text
    assert "vs.screen: n=1" in text


def test_text_report_of_empty_snapshot():
    assert snapshot_to_text(Telemetry().snapshot()) == "(empty snapshot)"


def test_prometheus_escapes_hostile_label_values():
    """A hostile ligand title must not corrupt the scrape (satellite: escaping)."""
    t = Telemetry()
    t.counter("campaign.ligands.done", title='evil" name\nwith\\tricks').inc()
    text = snapshot_to_prometheus(t.snapshot())
    line = next(l for l in text.splitlines() if l.startswith("repro_campaign"))
    # Raw specials never appear unescaped inside the label value.
    assert '\\"' in line  # quote escaped
    assert "\\n" in line and "\n" not in line  # newline escaped, line intact
    assert "\\\\tricks" in line  # backslash doubled before 't'
    # The whole exposition stays one-metric-per-line parseable.
    for exposition_line in text.strip().splitlines():
        assert exposition_line.startswith(("#", "repro_"))


def test_prometheus_escape_order_backslash_first():
    """Escaping backslashes after quotes would double the quote escapes."""
    t = Telemetry()
    t.counter("x", tag='already\\"escaped').inc()
    text = snapshot_to_prometheus(t.snapshot())
    assert 'tag="already\\\\\\"escaped"' in text


def test_prometheus_escapes_tag_values_in_histograms():
    t = Telemetry()
    t.histogram("h.seconds", edges=(1.0,), source='a"b').observe(0.5)
    text = snapshot_to_prometheus(t.snapshot())
    assert 'source="a\\"b"' in text
    assert 'le="+Inf"' in text


def test_prometheus_every_family_gets_help_and_type(session):
    """Each metric family leads with # HELP then # TYPE, exactly once."""
    text = snapshot_to_prometheus(session.snapshot())
    lines = text.splitlines()
    assert "# HELP repro_campaign_ligands_done Ligands completed by the campaign runner" in lines
    assert "# HELP repro_span_seconds Span durations summarised per span name" in lines
    # Unknown families still get a generic HELP line.
    assert "# HELP repro_engine_warmup_weight repro-vs metric engine.warmup.weight" in lines
    helped = [l.split()[2] for l in lines if l.startswith("# HELP")]
    typed = [l.split()[2] for l in lines if l.startswith("# TYPE")]
    assert helped == typed  # same families, same order, no duplicates
    assert len(set(helped)) == len(helped)
    for name in typed:
        help_idx = lines.index(f"# HELP {name} " + next(
            l.split(" ", 3)[3] for l in lines if l.startswith(f"# HELP {name} ")
        ))
        type_idx = next(
            i for i, l in enumerate(lines) if l.startswith(f"# TYPE {name} ")
        )
        assert help_idx == type_idx - 1  # HELP immediately precedes TYPE


def test_prometheus_help_text_escapes_backslash_and_newline():
    """HELP escaping is narrower than label escaping: \\ and newline only."""
    from repro.observability import export

    original = dict(export._HELP)
    export._HELP["evil.metric"] = 'back\\slash and\nnewline and "quote"'
    try:
        t = Telemetry()
        t.counter("evil.metric").inc()
        text = snapshot_to_prometheus(t.snapshot())
    finally:
        export._HELP.clear()
        export._HELP.update(original)
    line = next(
        l for l in text.splitlines()
        if l.startswith("# HELP repro_evil_metric")
    )
    assert "back\\\\slash" in line  # backslash doubled
    assert "and\\nnewline" in line and "\n" not in line  # newline escaped
    assert '"quote"' in line  # quotes stay raw in HELP (unlike labels)
