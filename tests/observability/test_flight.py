"""Flight recorder coverage: ring bounds, CRC framing, torn-tail recovery."""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro import observability as obs
from repro.errors import ObservabilityError
from repro.observability.flight import (
    FLIGHT_SCHEMA_VERSION,
    _FLIGHT_MAGIC,
    _FRAME,
    _K_EVENT,
    FlightRecorder,
    _pack_frame,
    dump_flight,
    flight_dir,
    flight_event,
    flight_recorder,
    read_flight,
    read_flight_dir,
    reset_flight,
)


class FakeClock:
    def __init__(self, start=0.0, step=0.25):
        self.now = start
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


@pytest.fixture(autouse=True)
def clean_global_ring():
    reset_flight("process")
    yield
    reset_flight("process")


# ----------------------------------------------------------------------
# the ring
# ----------------------------------------------------------------------
def test_ring_is_bounded_and_keeps_newest():
    rec = FlightRecorder("test", max_events=4)
    for i in range(10):
        rec.record("tick", i=i)
    events = rec.events()
    assert [e["i"] for e in events] == [6, 7, 8, 9]
    assert [e["seq"] for e in events] == [7, 8, 9, 10]
    assert rec.recorded == 10
    assert rec.dropped == 6


def test_record_preserves_fields_and_clocks():
    rec = FlightRecorder(
        "test", clock=FakeClock(), wall_clock=FakeClock(start=1000.0)
    )
    rec.record("steal", thief=1, victim=0, shard=7)
    (event,) = rec.events()
    assert event["kind"] == "steal"
    assert (event["thief"], event["victim"], event["shard"]) == (1, 0, 7)
    assert event["t"] > 0 and event["wall"] > 1000.0


def test_max_events_must_be_positive():
    with pytest.raises(ObservabilityError, match="max_events"):
        FlightRecorder(max_events=0)


def test_reset_clears_ring_and_retags_role():
    rec = flight_recorder()
    rec.record("x")
    reset_flight("worker-node3")
    assert rec.events() == []
    assert rec.recorded == 0
    assert rec.role == "worker-node3"


def test_flight_event_is_gated_on_telemetry_switch():
    with obs.disabled():
        flight_event("invisible")
    assert flight_recorder().events() == []
    flight_event("visible", n=1)
    events = flight_recorder().events()
    assert [e["kind"] for e in events] == ["visible"]


# ----------------------------------------------------------------------
# dump / read round trip
# ----------------------------------------------------------------------
def test_dump_read_round_trip(tmp_path):
    rec = FlightRecorder("coordinator", max_events=8)
    for i in range(12):
        rec.record("lease.grant", shard=i, node=i % 2)
    path = rec.dump(tmp_path / "coordinator.flight")
    doc = read_flight(path)
    assert doc["torn"] is False
    assert doc["clean_bytes"] == path.stat().st_size
    header = doc["header"]
    assert header["schema_version"] == FLIGHT_SCHEMA_VERSION
    assert header["role"] == "coordinator"
    assert header["recorded"] == 12 and header["dropped"] == 4
    assert doc["events"] == rec.events()


def test_dump_creates_parent_directory(tmp_path):
    rec = FlightRecorder("runner")
    rec.record("shard.finish", shard=0)
    path = rec.dump(tmp_path / "store.flight.d" / "runner.flight")
    assert path.exists()
    assert read_flight(path)["events"][0]["shard"] == 0


def test_dump_flight_never_raises(tmp_path):
    blocker = tmp_path / "file"
    blocker.write_text("not a directory")
    assert dump_flight(blocker / "sub" / "x.flight") is None


def test_flight_dir_convention():
    assert str(flight_dir("/tmp/campaign.sqlite")).endswith(
        "campaign.sqlite.flight.d"
    )


# ----------------------------------------------------------------------
# torn tails and corruption (satellite: byte-truncation fuzz)
# ----------------------------------------------------------------------
def test_every_byte_truncation_recovers_a_prefix(tmp_path):
    """No truncation point may raise; parsed events are always a prefix."""
    rec = FlightRecorder("fuzz", clock=FakeClock(), wall_clock=FakeClock())
    for i in range(6):
        rec.record("tick", i=i)
    path = rec.dump(tmp_path / "full.flight")
    data = path.read_bytes()
    full = read_flight(path)
    assert not full["torn"]
    truncated_path = tmp_path / "torn.flight"
    for cut in range(len(data) + 1):
        truncated_path.write_bytes(data[:cut])
        doc = read_flight(truncated_path)  # must never raise
        got = [e["i"] for e in doc["events"]]
        assert got == [e["i"] for e in full["events"]][: len(got)]
        # Torn exactly when the cut falls inside a frame; a cut on a frame
        # boundary reads as a clean (shorter) dump.
        assert doc["torn"] == (cut != doc["clean_bytes"])
        if cut == len(data):
            assert not doc["torn"]
            assert doc["header"] == full["header"]


def test_midfile_corruption_raises(tmp_path):
    rec = FlightRecorder("corrupt", clock=FakeClock(), wall_clock=FakeClock())
    for i in range(6):
        rec.record("tick", i=i)
    path = rec.dump(tmp_path / "x.flight")
    data = bytearray(path.read_bytes())
    # Flip one payload byte inside the *first* frame: CRC mismatch that is
    # not at EOF must raise, not be silently dropped.
    data[_FRAME.size + 2] ^= 0xFF
    bad = tmp_path / "bad.flight"
    bad.write_bytes(bytes(data))
    with pytest.raises(ObservabilityError, match="CRC|magic|undecodable"):
        read_flight(bad)


def test_bad_magic_raises(tmp_path):
    path = tmp_path / "bad.flight"
    path.write_bytes(b"\x00\x00" + b"\x00" * 20)
    with pytest.raises(ObservabilityError, match="magic"):
        read_flight(path)


def test_unknown_frame_kinds_are_skipped(tmp_path):
    rec = FlightRecorder("fwd", clock=FakeClock(), wall_clock=FakeClock())
    rec.record("tick", i=0)
    path = rec.dump(tmp_path / "x.flight")
    data = path.read_bytes()
    # Splice a validly framed but unknown-kind record between the frames.
    future = _pack_frame(9, b'{"from":"the future"}')
    spliced = tmp_path / "spliced.flight"
    spliced.write_bytes(data + future + _pack_frame(_K_EVENT, b'{"seq":2,"t":1,"wall":1,"kind":"tock"}'))
    doc = read_flight(spliced)
    assert not doc["torn"]
    assert [e["kind"] for e in doc["events"]] == ["tick", "tock"]


def test_read_flight_dir_mixes_good_and_broken(tmp_path):
    directory = tmp_path / "store.flight.d"
    rec = FlightRecorder("good", clock=FakeClock(), wall_clock=FakeClock())
    rec.record("ok")
    rec.dump(directory / "good.flight")
    (directory / "broken.flight").write_bytes(b"\xde\xad" + b"\x00" * 16)
    dumps = read_flight_dir(directory)
    assert len(dumps) == 2
    broken, good = dumps  # sorted by filename
    assert "error" in broken and "magic" in broken["error"]
    assert good["header"]["role"] == "good"
    assert not good["torn"]


def test_read_flight_dir_missing_directory_is_empty(tmp_path):
    assert read_flight_dir(tmp_path / "nope.d") == []


# ----------------------------------------------------------------------
# SIGTERM dump (exercised in a real subprocess)
# ----------------------------------------------------------------------
def test_sigterm_handler_dumps_then_dies(tmp_path):
    dump_path = tmp_path / "victim.flight"
    code = textwrap.dedent(
        f"""
        import os, signal, time
        from repro.observability.flight import (
            flight_event, install_flight_signal_dump, reset_flight,
        )
        reset_flight("victim")
        assert install_flight_signal_dump({str(dump_path)!r})
        flight_event("before.sigterm", answer=42)
        os.kill(os.getpid(), signal.SIGTERM)
        time.sleep(30)  # never reached
        """
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")])
    )
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env, timeout=60,
        capture_output=True, text=True,
    )
    assert proc.returncode == -signal.SIGTERM, proc.stderr
    doc = read_flight(dump_path)
    assert doc["header"]["role"] == "victim"
    assert [e["kind"] for e in doc["events"]] == ["before.sigterm"]
    assert doc["events"][0]["answer"] == 42
