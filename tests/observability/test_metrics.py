"""Unit coverage for the metrics primitives and the registry's merge seam."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.observability.metrics import (
    DEFAULT_SECONDS_EDGES,
    METRICS_SCHEMA_VERSION,
    Histogram,
    MetricsRegistry,
)


def test_counter_accumulates_and_rejects_negative():
    reg = MetricsRegistry()
    c = reg.counter("events")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ObservabilityError, match="cannot decrease"):
        c.inc(-1)


def test_gauge_keeps_last_value():
    reg = MetricsRegistry()
    g = reg.gauge("share", device=0)
    g.set(0.25)
    g.set(0.75)
    assert g.value == 0.75


def test_registration_is_idempotent_and_tag_order_free():
    reg = MetricsRegistry()
    a = reg.counter("poses", worker=1, mode="static")
    b = reg.counter("poses", mode="static", worker=1)
    assert a is b
    assert reg.counter("poses", worker=2) is not a


def test_histogram_buckets_are_upper_inclusive():
    h = Histogram("t", {}, edges=(1.0, 2.0, 4.0))
    for v in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0):
        h.observe(v)
    # <=1: {0.5, 1.0}; <=2: {1.5, 2.0}; <=4: {3.0, 4.0}; +Inf: {9.0}
    assert h.counts == [2, 2, 2, 1]
    assert h.count == 7
    assert h.sum == pytest.approx(sum((0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0)))


def test_histogram_edge_validation():
    with pytest.raises(ObservabilityError, match="at least one edge"):
        Histogram("t", {}, edges=())
    with pytest.raises(ObservabilityError, match="strictly increasing"):
        Histogram("t", {}, edges=(2.0, 1.0))
    with pytest.raises(ObservabilityError, match="strictly increasing"):
        Histogram("t", {}, edges=(1.0, 1.0, 2.0))


def test_histogram_reregistration_with_different_edges_raises():
    reg = MetricsRegistry()
    reg.histogram("t", edges=(1.0, 2.0))
    assert reg.histogram("t") is reg.histogram("t")
    with pytest.raises(ObservabilityError, match="different edges"):
        reg.histogram("t", edges=(1.0, 3.0))


def test_default_edges_are_fixed_and_increasing():
    assert list(DEFAULT_SECONDS_EDGES) == sorted(DEFAULT_SECONDS_EDGES)
    assert len(set(DEFAULT_SECONDS_EDGES)) == len(DEFAULT_SECONDS_EDGES)


def test_snapshot_is_json_safe_and_versioned():
    reg = MetricsRegistry()
    reg.counter("a", k="v").inc(2)
    reg.gauge("b").set(1.5)
    reg.histogram("c", edges=(1.0,)).observe(0.5)
    snap = reg.snapshot()
    assert snap["schema_version"] == METRICS_SCHEMA_VERSION
    restored = json.loads(json.dumps(snap))
    assert restored == snap
    assert restored["counters"][0] == {"name": "a", "tags": {"k": "v"}, "value": 2.0}


def test_merge_adds_counters_and_histograms_sets_gauges():
    worker = MetricsRegistry()
    worker.counter("poses").inc(10)
    worker.gauge("rate").set(3.0)
    worker.histogram("t", edges=(1.0, 2.0)).observe(0.5)

    parent = MetricsRegistry()
    parent.counter("poses").inc(5)
    parent.gauge("rate").set(1.0)
    parent.histogram("t", edges=(1.0, 2.0)).observe(1.5)

    parent.merge(worker.snapshot())
    assert parent.counter("poses").value == 15
    assert parent.gauge("rate").value == 3.0  # merged-in value wins
    h = parent.histogram("t")
    assert h.counts == [1, 1, 0]
    assert h.count == 2


def test_merge_rejects_wrong_version_and_bucket_mismatch():
    parent = MetricsRegistry()
    with pytest.raises(ObservabilityError, match="version"):
        parent.merge({"schema_version": 99})

    worker = MetricsRegistry()
    worker.histogram("t", edges=(1.0, 2.0)).observe(0.5)
    snap = worker.snapshot()
    snap["histograms"][0]["counts"] = [1, 0]  # wrong length for those edges
    with pytest.raises(ObservabilityError, match="bucket mismatch"):
        parent.merge(snap)


def test_merge_into_empty_registry_reconstructs_everything():
    worker = MetricsRegistry()
    worker.counter("n", worker=3).inc(7)
    worker.histogram("t", edges=(0.1,), mode="static").observe(5.0)
    parent = MetricsRegistry()
    parent.merge(worker.snapshot())
    assert parent.snapshot()["counters"] == worker.snapshot()["counters"]
    assert parent.histogram("t", mode="static").counts == [0, 1]


def test_reset_drops_all_instruments():
    reg = MetricsRegistry()
    reg.counter("a").inc()
    reg.reset()
    snap = reg.snapshot()
    assert snap["counters"] == [] and snap["gauges"] == [] and snap["histograms"] == []
