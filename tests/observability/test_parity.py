"""The zero-perturbation contract: instrumented runs are bitwise identical.

Telemetry only *observes* — it must never touch RNG state, work ordering, or
arithmetic. This matrix runs the same screen with telemetry enabled and
disabled across the serial path, a single-worker pool, and a multi-worker
pool in both parallel modes, and requires exact (bitwise, not approximate)
equality of every score.
"""

import math

import pytest

from repro import observability as obs
from repro.molecules.synthetic import generate_ligand, generate_receptor
from repro.vs.screening import screen


@pytest.fixture(scope="module")
def complex_set():
    receptor = generate_receptor(150, seed=5, title="parity receptor")
    ligands = [generate_ligand(8 + i, seed=40 + i) for i in range(3)]
    return receptor, ligands


def _run(receptor, ligands, host_workers, parallel_mode):
    obs.reset()
    report = screen(
        receptor,
        ligands,
        n_spots=2,
        metaheuristic="M1",
        seed=9,
        workload_scale=0.02,
        host_workers=host_workers,
        parallel_mode=parallel_mode,
    )
    return [
        (e.ligand_title, e.best_score, e.best_spot, e.evaluations)
        for e in report.entries
    ]


@pytest.mark.parametrize(
    "host_workers,parallel_mode",
    [(0, "static"), (1, "static"), (4, "static"), (4, "dynamic")],
)
def test_instrumented_run_is_bitwise_identical(
    complex_set, host_workers, parallel_mode
):
    receptor, ligands = complex_set
    enabled_entries = _run(receptor, ligands, host_workers, parallel_mode)
    recorded = obs.snapshot()
    with obs.disabled():
        disabled_entries = _run(receptor, ligands, host_workers, parallel_mode)

    assert len(enabled_entries) == len(disabled_entries) == len(ligands)
    for a, b in zip(enabled_entries, disabled_entries):
        assert a[0] == b[0] and a[2] == b[2] and a[3] == b[3]
        # Bitwise float equality, not approx.
        assert math.isfinite(a[1])
        assert a[1] == b[1], f"score drifted under instrumentation: {a} vs {b}"

    # The enabled side must actually have recorded telemetry, or this
    # parity check is vacuous.
    assert recorded["counters"] and recorded["spans"]


@pytest.mark.parametrize(
    "host_workers,parallel_mode",
    [(0, "static"), (1, "static"), (4, "static"), (4, "dynamic")],
)
def test_live_sampler_preserves_bitwise_parity(
    complex_set, tmp_path, host_workers, parallel_mode
):
    """An active background sampler must not perturb a single bit either."""
    receptor, ligands = complex_set
    series = tmp_path / f"parity_{host_workers}_{parallel_mode}.jsonl"
    with obs.TelemetrySampler(series, interval_s=0.05):
        sampled_entries = _run(receptor, ligands, host_workers, parallel_mode)
    with obs.disabled():
        plain_entries = _run(receptor, ligands, host_workers, parallel_mode)

    assert sampled_entries == plain_entries
    # The sampler must actually have been live (at least the final sample).
    records = obs.read_series(series)
    assert records and records[-1]["reason"] == "final"


def test_disabled_mode_records_nothing(complex_set):
    receptor, ligands = complex_set
    with obs.disabled():
        _run(receptor, ligands, 0, "static")
        snap = obs.snapshot()
    assert snap["counters"] == [] and snap["spans"] == []
