"""Benchmark regression gate: direction inference, alignment, thresholds."""

import json

import pytest

from repro.errors import ExperimentError
from repro.observability.regression import (
    compare_sets,
    flatten_metrics,
    format_delta_table,
    load_artifact_set,
    metric_direction,
)


def _artifact(benchmark, data):
    return {
        "format_version": 1,
        "benchmark": benchmark,
        "host": {"cpu_count": 4},
        "data": data,
    }


def _write_set(path, artifacts):
    path.mkdir(parents=True, exist_ok=True)
    for doc in artifacts:
        (path / f"BENCH_{doc['benchmark']}.json").write_text(
            json.dumps(doc), encoding="utf-8"
        )
    return path


# ----------------------------------------------------------------------
# direction inference
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,expected", [
    ("run_seconds", "lower"),
    ("baseline_seconds", "lower"),
    ("counter_inc_ns", "lower"),
    ("overhead_pct", "lower"),
    ("queue_wait_mean", "lower"),
    ("ligands_per_second", "higher"),
    ("poses_per_s", "higher"),  # throughput, despite the _s suffix
    ("speedup_vs_serial", "higher"),
    ("cases.0.throughput", "higher"),
    ("shard_size", "none"),
    ("counts.done", "none"),
])
def test_metric_direction(name, expected):
    assert metric_direction(name) == expected


# ----------------------------------------------------------------------
# flattening
# ----------------------------------------------------------------------
def test_flatten_nested_dicts_lists_skips_non_numeric():
    flat = flatten_metrics({
        "run_seconds": 1.5,
        "cases": [{"n": 3}, {"n": 4}],
        "label": "ignored",
        "converged": True,
        "nested": {"deep": {"value": 7}},
    })
    assert flat == {
        "run_seconds": 1.5,
        "cases.0.n": 3.0,
        "cases.1.n": 4.0,
        "nested.deep.value": 7.0,
    }


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def test_load_artifact_set_from_directory_and_file(tmp_path):
    path = _write_set(tmp_path / "set", [
        _artifact("alpha", {"x": 1}), _artifact("beta", {"y": 2}),
    ])
    loaded = load_artifact_set(path)
    assert set(loaded) == {"alpha", "beta"}
    single = load_artifact_set(path / "BENCH_alpha.json")
    assert set(single) == {"alpha"}


def test_load_rejects_missing_empty_and_malformed(tmp_path):
    with pytest.raises(ExperimentError, match="does not exist"):
        load_artifact_set(tmp_path / "nope")
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(ExperimentError, match="no BENCH"):
        load_artifact_set(empty)
    bad = tmp_path / "BENCH_bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(ExperimentError, match="invalid BENCH artifact JSON"):
        load_artifact_set(bad)
    wrong = tmp_path / "BENCH_wrong.json"
    wrong.write_text(json.dumps({"format_version": 99}), encoding="utf-8")
    with pytest.raises(ExperimentError, match="format-version"):
        load_artifact_set(wrong)


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def test_identical_sets_have_no_regressions(tmp_path):
    base = _write_set(tmp_path / "a", [_artifact("bench", {"run_seconds": 2.0})])
    rows = compare_sets(base, base)
    assert [r.status for r in rows] == ["ok"]
    assert rows[0].delta_pct == 0.0


def test_regression_past_threshold_in_each_direction(tmp_path):
    base = _write_set(tmp_path / "a", [
        _artifact("bench", {"run_seconds": 1.0, "poses_per_s": 100.0}),
    ])
    cur = _write_set(tmp_path / "b", [
        _artifact("bench", {"run_seconds": 1.5, "poses_per_s": 40.0}),
    ])
    rows = {r.metric: r for r in compare_sets(base, cur, threshold_pct=25.0)}
    assert rows["run_seconds"].status == "regressed"  # +50% on lower-better
    assert rows["run_seconds"].delta_pct == pytest.approx(50.0)
    assert rows["poses_per_s"].status == "regressed"  # -60% on higher-better
    # And the mirror image counts as improvement, not regression.
    back = {r.metric: r for r in compare_sets(cur, base, threshold_pct=25.0)}
    assert back["run_seconds"].status == "improved"
    assert back["poses_per_s"].status == "improved"


def test_within_threshold_is_ok_and_directionless_never_fails(tmp_path):
    base = _write_set(tmp_path / "a", [
        _artifact("bench", {"run_seconds": 1.0, "shard_size": 4}),
    ])
    cur = _write_set(tmp_path / "b", [
        _artifact("bench", {"run_seconds": 1.05, "shard_size": 400}),
    ])
    rows = {r.metric: r for r in compare_sets(base, cur, threshold_pct=10.0)}
    assert rows["run_seconds"].status == "ok"  # +5% < 10%
    assert rows["shard_size"].status == "ok"  # no direction -> report-only
    assert rows["shard_size"].direction == "none"


def test_new_and_missing_metrics_reported_not_failed(tmp_path):
    base = _write_set(tmp_path / "a", [_artifact("bench", {"old_seconds": 1.0})])
    cur = _write_set(tmp_path / "b", [_artifact("bench", {"new_seconds": 2.0})])
    rows = {r.metric: r for r in compare_sets(base, cur)}
    assert rows["old_seconds"].status == "missing"
    assert rows["new_seconds"].status == "new"


def test_zero_baseline_handled(tmp_path):
    base = _write_set(tmp_path / "a", [
        _artifact("bench", {"wait_seconds": 0.0, "idle_seconds": 0.0}),
    ])
    cur = _write_set(tmp_path / "b", [
        _artifact("bench", {"wait_seconds": 0.0, "idle_seconds": 0.5}),
    ])
    rows = {r.metric: r for r in compare_sets(base, cur, threshold_pct=10.0)}
    assert rows["wait_seconds"].delta_pct == 0.0
    assert rows["idle_seconds"].status == "regressed"  # 0 -> 0.5 is infinite %


def test_negative_threshold_rejected(tmp_path):
    base = _write_set(tmp_path / "a", [_artifact("bench", {"x": 1})])
    with pytest.raises(ExperimentError, match="threshold"):
        compare_sets(base, base, threshold_pct=-5.0)


# ----------------------------------------------------------------------
# the acceptance round-trip: real BENCH files from >=2 benchmarks
# ----------------------------------------------------------------------
def test_table_round_trips_from_committed_baselines():
    from pathlib import Path

    baselines = Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"
    loaded = load_artifact_set(baselines)
    assert len(loaded) >= 2, "need baselines from at least two benchmarks"
    rows = compare_sets(baselines, baselines, threshold_pct=10.0)
    assert rows and all(r.status == "ok" for r in rows)
    table = format_delta_table(rows, 10.0)
    lines = table.splitlines()
    # Header + rule + one line per row + blank + summary.
    assert lines[0].split() == [
        "benchmark", "metric", "baseline", "current", "delta", "dir", "status",
    ]
    assert len([l for l in lines if l.strip()]) == len(rows) + 3
    assert "0 regressed" in lines[-1]
    # Every benchmark shows up in its own rows.
    for bench in loaded:
        assert any(line.startswith(bench) for line in lines[2:])


def test_format_delta_table_shouts_regressions(tmp_path):
    base = _write_set(tmp_path / "a", [_artifact("bench", {"run_seconds": 1.0})])
    cur = _write_set(tmp_path / "b", [_artifact("bench", {"run_seconds": 9.0})])
    rows = compare_sets(base, cur, threshold_pct=10.0)
    table = format_delta_table(rows, 10.0)
    assert "REGRESSED" in table
    assert "+800.0%" in table
    assert "1 regressed" in table
