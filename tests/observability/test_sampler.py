"""Sampler edge cases: intervals, empty registries, resets, torn tails."""

import json
import threading

import pytest

from repro import observability as obs
from repro.errors import ObservabilityError
from repro.observability import (
    SERIES_SCHEMA_VERSION,
    Telemetry,
    TelemetrySampler,
    read_series,
)
from repro.observability.sampler import compute_record, metric_key


class ManualClock:
    """Deterministic monotonic clock the tests advance by hand."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture
def telemetry():
    return Telemetry()


@pytest.fixture
def sampler(tmp_path, telemetry):
    return TelemetrySampler(
        tmp_path / "series.jsonl",
        interval_s=1.0,
        telemetry=telemetry,
        clock=ManualClock(),
        wall_clock=lambda: 1.7e9,
    )


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
@pytest.mark.parametrize("interval", [0.0, -1.0, -0.001])
def test_zero_or_negative_interval_rejected(tmp_path, interval):
    with pytest.raises(ObservabilityError, match="interval must be > 0"):
        TelemetrySampler(tmp_path / "s.jsonl", interval_s=interval)


def test_nonnumeric_interval_rejected(tmp_path):
    with pytest.raises((ObservabilityError, ValueError, TypeError)):
        TelemetrySampler(tmp_path / "s.jsonl", interval_s="soon")


# ----------------------------------------------------------------------
# sampling semantics
# ----------------------------------------------------------------------
def test_empty_registry_samples_cleanly(sampler):
    record = sampler.sample()
    assert record["schema_version"] == SERIES_SCHEMA_VERSION
    assert record["counters"] == {} and record["rates"] == {}
    assert record["derived"]["poses_per_s"] == 0.0
    assert record["derived"]["ligands_per_s"] == 0.0
    assert record["derived"]["queue_wait_mean_s"] is None


def test_rates_are_windowed_deltas(tmp_path, telemetry):
    clock = ManualClock()
    sampler = TelemetrySampler(
        tmp_path / "s.jsonl", interval_s=1.0, telemetry=telemetry, clock=clock
    )
    counter = telemetry.counter("campaign.ligands.done")
    counter.inc(10)
    clock.advance(2.0)
    first = sampler.sample()
    assert first["rates"]["campaign.ligands.done"] == pytest.approx(5.0)
    counter.inc(4)
    clock.advance(2.0)
    second = sampler.sample()
    # Window rate, not lifetime rate: 4 new ligands over 2 seconds.
    assert second["rates"]["campaign.ligands.done"] == pytest.approx(2.0)
    assert second["derived"]["ligands_per_s"] == pytest.approx(2.0)


def test_counter_reset_never_yields_negative_rates(tmp_path):
    """A registry reset mid-series must read as a stall, not negative flow."""
    telemetry = Telemetry()
    clock = ManualClock()
    sampler = TelemetrySampler(
        tmp_path / "s.jsonl", interval_s=1.0, telemetry=telemetry, clock=clock
    )
    telemetry.counter("campaign.ligands.done").inc(100)
    telemetry.histogram("host.queue_wait_seconds").observe(0.5)
    clock.advance(1.0)
    sampler.sample()
    telemetry.reset()  # totals plummet to zero
    telemetry.counter("campaign.ligands.done").inc(1)
    clock.advance(1.0)
    record = sampler.sample()
    assert all(rate >= 0.0 for rate in record["rates"].values())
    assert record["derived"]["ligands_per_s"] == 0.0  # clamped, not -99
    window = record["histograms_window"].get("host.queue_wait_seconds")
    if window is not None:
        assert window["count"] >= 0.0 and window["sum"] >= 0.0


def test_zero_dt_sample_does_not_divide_by_zero(sampler, telemetry):
    telemetry.counter("campaign.ligands.done").inc(5)
    first = sampler.sample()
    second = sampler.sample()  # clock never advanced: dt == 0
    assert first["rates"]["campaign.ligands.done"] == 0.0
    assert second["rates"]["campaign.ligands.done"] == 0.0


def test_mark_is_rate_limited_but_force_overrides(tmp_path, telemetry):
    clock = ManualClock()
    sampler = TelemetrySampler(
        tmp_path / "s.jsonl", interval_s=1.0, telemetry=telemetry, clock=clock
    )
    sampler.sample()
    sampler.mark("too-soon")  # inside interval/2: dropped
    sampler.mark("forced", force=True)  # force bypasses the limiter
    clock.advance(0.6)
    sampler.mark("spaced")  # past interval/2: taken
    reasons = [r["reason"] for r in read_series(sampler.path)]
    assert reasons == ["interval", "forced", "spaced"]


def test_worker_share_and_drift_derivation():
    snapshot = Telemetry().snapshot()
    snapshot["counters"] = [
        {"name": "host.worker.poses", "tags": {"worker": 0}, "value": 75.0},
        {"name": "host.worker.poses", "tags": {"worker": 1}, "value": 25.0},
    ]
    snapshot["gauges"] = [
        {"name": "host.warmup.weight", "tags": {"worker": 0}, "value": 0.5},
        {"name": "host.warmup.weight", "tags": {"worker": 1}, "value": 0.5},
    ]
    record = compute_record(
        None, snapshot, dt=1.0, seq=0, reason="t", elapsed_s=1.0, wall_time=0.0
    )
    assert record["derived"]["worker_share"] == {"0": 0.75, "1": 0.25}
    assert record["derived"]["share_drift"]["0"] == pytest.approx(0.25)
    assert record["derived"]["share_drift"]["1"] == pytest.approx(-0.25)


def test_metric_key_is_canonical():
    assert metric_key("a.b", {}) == "a.b"
    assert metric_key("a.b", {"z": 1, "a": 2}) == "a.b{a=2,z=1}"


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def test_stop_writes_final_sample_and_is_idempotent(tmp_path, telemetry):
    sampler = TelemetrySampler(
        tmp_path / "s.jsonl", interval_s=60.0, telemetry=telemetry
    )
    sampler.start()
    sampler.stop()
    sampler.stop()  # second stop is a no-op
    records = read_series(tmp_path / "s.jsonl")
    assert [r["reason"] for r in records] == ["final"]
    assert records[0]["seq"] == 0


def test_background_thread_appends_interval_samples(tmp_path, telemetry):
    done = threading.Event()
    with TelemetrySampler(
        tmp_path / "s.jsonl", interval_s=0.02, telemetry=telemetry
    ):
        telemetry.counter("campaign.ligands.done").inc()
        done.wait(0.15)
    records = read_series(tmp_path / "s.jsonl")
    assert len(records) >= 2  # at least one interval tick plus the final
    assert records[-1]["reason"] == "final"
    assert [r["seq"] for r in records] == list(range(len(records)))


def test_obs_mark_fans_out_only_to_started_samplers(tmp_path, telemetry):
    obs.mark("nobody-listening")  # no active sampler: silently fine
    sampler = TelemetrySampler(
        tmp_path / "s.jsonl", interval_s=60.0, telemetry=telemetry
    )
    with sampler:
        obs.mark("shard-commit", force=True)
    reasons = [r["reason"] for r in read_series(tmp_path / "s.jsonl")]
    assert reasons == ["shard-commit", "final"]


# ----------------------------------------------------------------------
# reading a series back
# ----------------------------------------------------------------------
def test_read_series_tolerates_torn_final_line(tmp_path, telemetry):
    path = tmp_path / "s.jsonl"
    sampler = TelemetrySampler(path, telemetry=telemetry)
    sampler.sample()
    sampler.sample()
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"schema_version": 1, "seq": 99, "trunca')  # killed writer
    records = read_series(path)
    assert len(records) == 2  # torn tail dropped, not raised


def test_read_series_raises_on_mid_file_corruption(tmp_path, telemetry):
    path = tmp_path / "s.jsonl"
    sampler = TelemetrySampler(path, telemetry=telemetry)
    sampler.sample()
    text = path.read_text(encoding="utf-8")
    path.write_text("GARBAGE NOT JSON\n" + text, encoding="utf-8")
    with pytest.raises(ObservabilityError, match="corrupt metrics series"):
        read_series(path)


def test_read_series_rejects_wrong_schema_version(tmp_path):
    path = tmp_path / "s.jsonl"
    path.write_text(
        json.dumps({"schema_version": 999, "seq": 0}) + "\n", encoding="utf-8"
    )
    with pytest.raises(ObservabilityError, match="unsupported series record"):
        read_series(path)


def test_read_series_missing_file_is_clean_error(tmp_path):
    with pytest.raises(ObservabilityError, match="cannot read"):
        read_series(tmp_path / "nope.jsonl")
