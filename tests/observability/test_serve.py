"""HTTP scrape endpoint: /metrics, /healthz, and the live-campaign integration."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import observability as obs
from repro.errors import ObservabilityError
from repro.observability import CampaignHealth, MetricsServer, Telemetry


def _get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers, response.read().decode("utf-8")


@pytest.fixture
def session():
    t = Telemetry()
    t.counter("campaign.ligands.done").inc(7)
    t.gauge("host.warmup.weight", worker=0).set(1.0)
    return t


def test_serves_prometheus_metrics_on_ephemeral_port(session):
    with MetricsServer(port=0, snapshot_fn=session.snapshot) as server:
        assert server.port != 0  # a real ephemeral port was bound
        status, headers, body = _get(server.url + "/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
    assert "# TYPE repro_campaign_ligands_done counter" in body
    assert "repro_campaign_ligands_done 7.0" in body


def test_metrics_reflect_live_mutations(session):
    with MetricsServer(port=0, snapshot_fn=session.snapshot) as server:
        _, _, before = _get(server.url + "/metrics")
        session.counter("campaign.ligands.done").inc(3)
        _, _, after = _get(server.url + "/metrics")
    assert "repro_campaign_ligands_done 7.0" in before
    assert "repro_campaign_ligands_done 10.0" in after


def test_healthz_defaults_to_ok(session):
    with MetricsServer(port=0, snapshot_fn=session.snapshot) as server:
        status, headers, body = _get(server.url + "/healthz")
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    assert json.loads(body) == {"status": "ok"}


def test_unknown_path_is_404(session):
    with MetricsServer(port=0, snapshot_fn=session.snapshot) as server:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404


def test_broken_snapshot_fn_yields_500_not_crash(session):
    def broken():
        raise RuntimeError("registry on fire")

    with MetricsServer(port=0, snapshot_fn=broken) as server:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/metrics")
        assert excinfo.value.code == 500
        # The server survives the failed scrape.
        status, _, _ = _get(server.url + "/healthz")
        assert status == 200


def test_invalid_port_rejected():
    with pytest.raises(ObservabilityError, match="port"):
        MetricsServer(port=70000)


def test_url_before_start_is_clean_error():
    with pytest.raises(ObservabilityError, match="not started"):
        MetricsServer(port=0).url


def test_stop_is_idempotent_and_releases_port(session):
    server = MetricsServer(port=0, snapshot_fn=session.snapshot).start()
    port = server.port
    server.stop()
    server.stop()
    # The port is genuinely free again: a new server can claim it.
    with MetricsServer(port=port, snapshot_fn=session.snapshot) as reuse:
        assert reuse.port == port


# ----------------------------------------------------------------------
# CampaignHealth
# ----------------------------------------------------------------------
class FakeProgress:
    def __init__(self, shard_id=0, done=4, failed=0, total=16,
                 elapsed_seconds=2.0, ligands_per_second=2.0,
                 eta_seconds=6.0):
        self.shard_id = shard_id
        self.done = done
        self.failed = failed
        self.total = total
        self.elapsed_seconds = elapsed_seconds
        self.ligands_per_second = ligands_per_second
        self.eta_seconds = eta_seconds


def test_campaign_health_lifecycle():
    health = CampaignHealth(total_shards=4)
    assert health.health()["status"] == "starting"
    health.update(FakeProgress())
    doc = health.health()
    assert doc["status"] == "running"
    assert doc["campaign"]["done"] == 4 and doc["campaign"]["total"] == 16
    assert doc["campaign"]["eta_seconds"] == pytest.approx(6.0)
    health.finish("complete")
    assert health.health()["status"] == "complete"


def test_campaign_health_nan_eta_is_json_null():
    health = CampaignHealth()
    health.update(FakeProgress(eta_seconds=float("nan"), total=None))
    doc = health.health()
    assert doc["campaign"]["eta_seconds"] is None  # strict JSON, no NaN
    json.dumps(doc)  # round-trips without allow_nan leniency


def test_campaign_health_reports_pool_idle_fraction():
    from repro import observability as obs

    health = CampaignHealth()
    idle = obs.counter("host.pool.idle.seconds")
    baseline = idle.value
    idle.inc(1.0)
    health.update(FakeProgress(elapsed_seconds=(baseline + 1.0) * 2))
    doc = health.health()
    # idle counter over elapsed time: (baseline + 1.0) / (2 * (baseline + 1.0))
    assert doc["campaign"]["pool_idle_fraction"] == pytest.approx(0.5)
    # Never above 1.0 even when the counter outruns a stale elapsed figure.
    health.update(FakeProgress(elapsed_seconds=1e-9))
    assert health.health()["campaign"]["pool_idle_fraction"] == 1.0
    # No elapsed time yet -> unknown, not a division error.
    health.update(FakeProgress(elapsed_seconds=0.0))
    assert health.health()["campaign"]["pool_idle_fraction"] is None


def test_campaign_health_prefers_sampler_window_rate():
    class FakeSampler:
        last_record = {"derived": {"ligands_per_s": 4.0}}

    health = CampaignHealth(sampler=FakeSampler())
    health.update(FakeProgress(done=4, failed=0, total=16,
                               ligands_per_second=1.0, eta_seconds=12.0))
    doc = health.health()
    # ETA recomputed from the 4 lig/s window rate: 12 remaining / 4 = 3s.
    assert doc["campaign"]["ligands_per_second"] == pytest.approx(4.0)
    assert doc["campaign"]["eta_seconds"] == pytest.approx(3.0)


# ----------------------------------------------------------------------
# the acceptance-criteria integration: scrape a campaign WHILE it docks
# ----------------------------------------------------------------------
def test_scrape_live_campaign_while_docking(tmp_path):
    from repro.campaign import CampaignRunner, SyntheticSource
    from repro.molecules.synthetic import generate_receptor

    obs.reset()
    receptor = generate_receptor(80, seed=2)
    first_shard = threading.Event()
    health = CampaignHealth()
    scraped = {}

    server = MetricsServer(port=0, health_fn=health.health).start()

    def progress(p):
        health.update(p)
        first_shard.set()

    runner = CampaignRunner(
        receptor,
        SyntheticSource(6, atoms_range=(8, 10), seed=5),
        store_path=tmp_path / "c.sqlite",
        n_spots=2,
        metaheuristic="M1",
        seed=1,
        workload_scale=0.05,
        shard_size=2,
        progress=progress,
    )

    def scrape():
        assert first_shard.wait(30), "campaign never reported a shard"
        scraped["metrics"] = _get(server.url + "/metrics")
        scraped["health"] = _get(server.url + "/healthz")

    scraper = threading.Thread(target=scrape)
    scraper.start()
    try:
        with runner.run() as store:
            assert store.counts()["done"] == 6
        scraper.join(timeout=30)
        assert not scraper.is_alive()
    finally:
        server.stop()

    status, headers, body = scraped["metrics"]
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
    # Mid-campaign scrape sees real in-flight counters.
    assert "repro_campaign_ligands_done" in body
    assert "repro_campaign_shards_done" in body

    status, _, body = scraped["health"]
    assert status == 200
    doc = json.loads(body)
    assert doc["status"] == "running"
    assert doc["campaign"]["done"] >= 2  # at least the first shard
    assert doc["campaign"]["total"] is None or doc["campaign"]["total"] >= 6
    assert "eta_seconds" in doc["campaign"]
    assert "ligands_per_second" in doc["campaign"]


# ----------------------------------------------------------------------
# distributed-campaign surface: bind retry + /healthz node table
# ----------------------------------------------------------------------
def test_occupied_port_error_names_the_port(monkeypatch, session):
    monkeypatch.setattr(MetricsServer, "_BIND_ATTEMPTS", 2)
    monkeypatch.setattr(MetricsServer, "_BIND_BACKOFF_S", 0.01)
    with MetricsServer(port=0, snapshot_fn=session.snapshot) as occupant:
        with pytest.raises(ObservabilityError) as err:
            MetricsServer(port=occupant.port, snapshot_fn=session.snapshot).start()
    message = str(err.value)
    assert str(occupant.port) in message
    assert "already in use" in message
    assert "--serve-metrics" in message  # tells the operator what to change


def test_bind_retries_until_the_port_frees_up(monkeypatch, session):
    monkeypatch.setattr(MetricsServer, "_BIND_BACKOFF_S", 0.05)
    occupant = MetricsServer(port=0, snapshot_fn=session.snapshot).start()
    port = occupant.port
    threading.Timer(0.15, occupant.stop).start()
    with MetricsServer(port=port, snapshot_fn=session.snapshot) as server:
        assert server.port == port  # bound once the occupant released it


def test_healthz_serves_cluster_node_table():
    from repro.cluster import ClusterProgress

    health = CampaignHealth()
    health.update(
        ClusterProgress(
            shard_id=3,
            done=10,
            failed=0,
            total=16,
            elapsed_seconds=2.0,
            ligands_per_second=5.0,
            eta_seconds=1.2,
            nodes=(
                {"node": 0, "state": "active", "done": 6, "failed": 0,
                 "queued": 1, "outstanding": 1, "weight": 0.6},
                {"node": 1, "state": "active", "done": 4, "failed": 0,
                 "queued": 1, "outstanding": 1, "weight": 0.4},
            ),
        )
    )
    doc = health.health()
    assert doc["campaign"]["done"] == 10
    assert [row["node"] for row in doc["nodes"]] == [0, 1]
    assert doc["nodes"][0]["weight"] == pytest.approx(0.6)
    # Single-node progress keeps the document shape unchanged.
    health2 = CampaignHealth()
    health2.update(
        ClusterProgress(
            shard_id=0, done=1, failed=0, total=2, elapsed_seconds=0.1,
            ligands_per_second=1.0, eta_seconds=1.0,
        )
    )
    assert "nodes" not in health2.health()
