"""Span tracer coverage: nesting, deterministic timing, cap, merge."""

import pytest

from repro.observability.spans import SpanTracer


class FakeClock:
    """Deterministic clock: every read advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


def test_span_durations_come_from_the_injected_clock():
    tracer = SpanTracer(clock=FakeClock(step=1.0))
    with tracer.span("work"):
        pass
    (record,) = tracer.records
    assert record.start_s == 0.0
    assert record.duration_s == 1.0  # exactly one clock step elapsed


def test_nesting_tracks_parent_and_depth():
    tracer = SpanTracer(clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        with tracer.span("sibling"):
            pass
    by_name = {r.name: r for r in tracer.records}
    outer, inner, sibling = by_name["outer"], by_name["inner"], by_name["sibling"]
    assert outer.parent is None and outer.depth == 0
    assert inner.parent == outer.id and inner.depth == 1
    assert sibling.parent == outer.id and sibling.depth == 1
    # Children complete (and are recorded) before the outer span.
    assert tracer.records[-1].name == "outer"


def test_yielded_tags_allow_late_annotation():
    tracer = SpanTracer(clock=FakeClock())
    with tracer.span("dock", ligand="L1") as tags:
        tags["evaluations"] = 128
    (record,) = tracer.records
    assert record.tags == {"ligand": "L1", "evaluations": 128}


def test_span_recorded_even_when_body_raises():
    tracer = SpanTracer(clock=FakeClock())
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    assert [r.name for r in tracer.records] == ["doomed"]
    assert not tracer._stack  # stack unwound


def test_bounded_buffer_counts_drops():
    tracer = SpanTracer(clock=FakeClock(), max_spans=2)
    for i in range(5):
        with tracer.span(f"s{i}"):
            pass
    assert len(tracer.records) == 2
    assert tracer.dropped == 3
    snap = tracer.snapshot()
    assert snap["dropped"] == 3 and len(snap["spans"]) == 2


def test_merge_offsets_ids_and_preserves_parent_links():
    parent = SpanTracer(clock=FakeClock())
    with parent.span("parent.run"):
        pass

    worker = SpanTracer(clock=FakeClock())
    with worker.span("worker.outer"):
        with worker.span("worker.inner"):
            pass

    parent.merge(worker.snapshot())
    by_name = {r.name: r for r in parent.records}
    ids = [r.id for r in parent.records]
    assert len(set(ids)) == len(ids), "merged ids must stay unique"
    assert by_name["worker.inner"].parent == by_name["worker.outer"].id

    # A span opened after the merge must not collide with merged ids.
    with parent.span("after"):
        pass
    ids = [r.id for r in parent.records]
    assert len(set(ids)) == len(ids)


def test_merge_respects_the_cap_and_accumulates_drops():
    parent = SpanTracer(clock=FakeClock(), max_spans=1)
    with parent.span("kept"):
        pass
    worker = SpanTracer(clock=FakeClock())
    with worker.span("overflow"):
        pass
    snap = worker.snapshot()
    snap["dropped"] = 2
    parent.merge(snap)
    assert len(parent.records) == 1
    assert parent.dropped == 3  # 1 over cap + 2 carried in


def test_reset_clears_records_and_drop_count():
    tracer = SpanTracer(clock=FakeClock(), max_spans=1)
    for _ in range(3):
        with tracer.span("s"):
            pass
    tracer.reset()
    assert tracer.records == [] and tracer.dropped == 0
