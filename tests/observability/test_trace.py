"""Chrome/Perfetto trace exporter: lanes, rebasing, steal instants."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    Telemetry,
    snapshot_to_trace_events,
    write_trace,
)
from repro.observability.trace import trace_events_to_json


def _span_doc(spans):
    doc = Telemetry().snapshot()
    doc["spans"] = spans
    return doc


def _span(id, name, start_s, duration_s, tags=None, parent=None, depth=0):
    return {
        "id": id,
        "name": name,
        "start_s": start_s,
        "duration_s": duration_s,
        "tags": tags or {},
        "parent": parent,
        "depth": depth,
    }


def test_real_session_converts_with_complete_events():
    t = Telemetry()
    with t.span("campaign.shard", shard=0):
        with t.span("campaign.journal.fsync", record="shard_start"):
            pass
    trace = snapshot_to_trace_events(t.snapshot())
    xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert {e["name"] for e in xs} == {"campaign.shard", "campaign.journal.fsync"}
    fsync = next(e for e in xs if e["name"] == "campaign.journal.fsync")
    assert fsync["cat"] == "campaign"
    assert fsync["args"]["record"] == "shard_start"
    assert fsync["args"]["depth"] == 1
    assert trace["otherData"]["spans"] == 2


def test_timestamps_rebased_to_earliest_span():
    doc = _span_doc([
        _span(1, "a", start_s=1000.5, duration_s=0.25),
        _span(2, "b", start_s=1000.0, duration_s=1.0),
    ])
    trace = snapshot_to_trace_events(doc)
    xs = {e["name"]: e for e in trace["traceEvents"] if e["ph"] == "X"}
    assert xs["b"]["ts"] == pytest.approx(0.0)  # earliest span is the origin
    assert xs["a"]["ts"] == pytest.approx(0.5e6)  # microseconds
    assert xs["a"]["dur"] == pytest.approx(0.25e6)


def test_worker_tag_assigns_thread_lane_with_metadata():
    doc = _span_doc([
        _span(1, "host.launch", 0.0, 1.0),
        _span(2, "host.worker.batch", 0.1, 0.4, tags={"worker": 0}),
        _span(3, "host.worker.batch", 0.1, 0.5, tags={"worker": 2}),
    ])
    trace = snapshot_to_trace_events(doc)
    xs = {e["args"]["span_id"]: e for e in trace["traceEvents"] if e["ph"] == "X"}
    assert xs[1]["tid"] == 0  # main lane
    assert xs[2]["tid"] == 1  # worker 0's lane
    assert xs[3]["tid"] == 3  # worker 2's lane
    names = {
        e["tid"]: e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert names == {0: "main", 1: "worker 0", 3: "worker 2"}


def test_pipeline_lane_tag_assigns_overlap_lane():
    doc = _span_doc([
        _span(1, "campaign.shard", 0.0, 3.0),
        _span(2, "campaign.pipeline.dock", 0.1, 1.5,
              tags={"ordinal": 0, "pipeline_lane": 0}),
        _span(3, "campaign.pipeline.dock", 0.3, 1.8,
              tags={"ordinal": 1, "pipeline_lane": 1}),
        _span(4, "host.worker.batch", 0.2, 0.4, tags={"worker": 1}),
    ])
    trace = snapshot_to_trace_events(doc)
    xs = {e["args"]["span_id"]: e for e in trace["traceEvents"] if e["ph"] == "X"}
    assert xs[1]["tid"] == 0  # shard stays on main
    assert xs[2]["tid"] == 500  # pipeline lane 0
    assert xs[3]["tid"] == 501  # pipeline lane 1 — overlapping dock visible
    assert xs[4]["tid"] == 2  # worker tag wins its usual lane
    names = {
        e["tid"]: e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert names[500] == "pipeline 0" and names[501] == "pipeline 1"


def test_pipeline_lane_composes_with_node_blocks():
    doc = _span_doc([
        _span(1, "campaign.pipeline.dock", 0.0, 1.0,
              tags={"pipeline_lane": 2, "node": 0}),
    ])
    trace = snapshot_to_trace_events(doc)
    xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert xs[0]["tid"] == 1000 + 500 + 2
    names = {
        e["tid"]: e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert names[1502] == "node 0 pipeline 2"


def test_nonzero_steals_tag_emits_instant_event():
    doc = _span_doc([
        _span(1, "host.launch", 0.0, 2.0, tags={"steals": 3}),
        _span(2, "host.launch", 3.0, 1.0, tags={"steals": 0}),
    ])
    trace = snapshot_to_trace_events(doc)
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert len(instants) == 1  # zero-steal launches stay quiet
    assert instants[0]["name"] == "steal"
    assert instants[0]["args"] == {"steals": 3, "launch_span": 1}
    assert instants[0]["ts"] == pytest.approx(2.0e6)  # at launch end


def test_empty_snapshot_still_yields_valid_trace():
    trace = snapshot_to_trace_events(Telemetry().snapshot())
    assert trace["otherData"]["spans"] == 0
    assert all(e["ph"] == "M" for e in trace["traceEvents"])


def test_invalid_snapshot_rejected():
    with pytest.raises(ObservabilityError, match="version"):
        snapshot_to_trace_events({"schema_version": 99})


def test_json_serialisation_and_write(tmp_path):
    t = Telemetry()
    with t.span("vs.dock"):
        pass
    snap = t.snapshot()
    text = trace_events_to_json(snap)
    doc = json.loads(text)
    assert doc["displayTimeUnit"] == "ms"

    out = tmp_path / "trace.json"
    n = write_trace(snap, out)
    assert n == 1
    assert json.loads(out.read_text(encoding="utf-8")) == doc


def test_node_tag_assigns_per_node_lane_blocks():
    doc = _span_doc([
        _span(1, "campaign.shard", 0.0, 1.0),                      # coordinator
        _span(2, "campaign.dock", 0.1, 0.4, tags={"node": 0}),
        _span(3, "host.worker.batch", 0.1, 0.2, tags={"node": 0, "worker": 1}),
        _span(4, "campaign.dock", 0.1, 0.5, tags={"node": 1}),
    ])
    trace = snapshot_to_trace_events(doc)
    xs = {e["args"]["span_id"]: e for e in trace["traceEvents"] if e["ph"] == "X"}
    assert xs[1]["tid"] == 0          # coordinator stays on main
    assert xs[2]["tid"] == 1000       # node 0's block
    assert xs[3]["tid"] == 1002       # node 0, worker 1
    assert xs[4]["tid"] == 2000       # node 1's block
    names = {
        e["tid"]: e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert names[0] == "main"
    assert names[1000] == "node 0"
    assert names[1002] == "node 0 worker 1"
    assert names[2000] == "node 1"


def test_retagged_worker_snapshot_lands_on_node_lanes():
    from repro.cluster import retag_snapshot

    worker = Telemetry()
    with worker.span("campaign.dock", ordinal=5):
        pass
    doc = retag_snapshot(worker.snapshot(), node_id=2)
    trace = snapshot_to_trace_events(doc)
    dock = next(e for e in trace["traceEvents"] if e["ph"] == "X")
    assert dock["tid"] == 3000  # (node 2 + 1) * stride
    assert dock["args"]["node"] == 2
