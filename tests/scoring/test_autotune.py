"""Tests for the input-aware kernel autotuner.

The two load-bearing properties: selection is a deterministic pure
function of (table, features) — this is what keeps autotuned campaigns
bitwise reproducible — and online refinement only ever rewrites throughput
*expectations*, never the active selection.
"""

import numpy as np
import pytest

from repro import observability as obs
from repro.errors import ScoringError
from repro.scoring.autotune import (
    PRUNABLE_VARIANTS,
    AutotuneController,
    CalibrationCell,
    CalibrationTable,
    KernelSelector,
    run_calibration_sweep,
    scoring_family,
    variant_candidates,
)
from repro.scoring.batched import BatchedLJScoring
from repro.scoring.cutoff import CutoffLennardJonesScoring
from repro.scoring.lennard_jones import LennardJonesScoring
from repro.scoring.softcore import SoftcoreLJScoring
from repro.scoring.tiled import TiledLennardJonesScoring

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - container ships hypothesis
    HAVE_HYPOTHESIS = False


def _cell(rec=300, lig=18, workers=0, family="exact", variant="lennard-jones",
          chunk=256, rate=1000.0):
    return CalibrationCell(
        receptor_atoms=rec,
        ligand_atoms=lig,
        worker_count=workers,
        family=family,
        variant=variant,
        chunk_size=chunk,
        poses_per_s=rate,
    )


@pytest.fixture()
def table():
    return CalibrationTable(
        [
            _cell(variant="lennard-jones", chunk=256, rate=1000.0),
            _cell(variant="lennard-jones-batched", chunk=512, rate=2500.0),
            _cell(variant="lennard-jones-tiled", chunk=256, rate=700.0),
            _cell(rec=3000, lig=45, variant="lennard-jones-batched", chunk=128,
                  rate=900.0),
            _cell(family="cutoff-float32", variant="lennard-jones-cutoff",
                  chunk=256, rate=3000.0),
        ]
    )


# ----------------------------------------------------------------------
# Table persistence
# ----------------------------------------------------------------------
def test_save_load_roundtrip(table, tmp_path):
    path = table.save(tmp_path / "cal.json")
    loaded = CalibrationTable.load(path)
    assert loaded.to_json() == table.to_json()


def test_load_errors_are_scoring_errors(tmp_path):
    with pytest.raises(ScoringError, match="not found"):
        CalibrationTable.load(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ScoringError, match="unreadable"):
        CalibrationTable.load(bad)
    wrong_kind = tmp_path / "kind.json"
    wrong_kind.write_text('{"kind": "something-else"}')
    with pytest.raises(ScoringError, match="repro-vs-calibration"):
        CalibrationTable.load(wrong_kind)
    wrong_version = tmp_path / "ver.json"
    wrong_version.write_text(
        '{"kind": "repro-vs-calibration", "format_version": 99, "cells": []}'
    )
    with pytest.raises(ScoringError, match="format_version"):
        CalibrationTable.load(wrong_version)


def test_malformed_cell_is_named():
    with pytest.raises(ScoringError, match="malformed calibration cell"):
        CalibrationCell.from_json({"receptor_atoms": "zebra"})


# ----------------------------------------------------------------------
# Families and candidates
# ----------------------------------------------------------------------
def test_scoring_families():
    assert scoring_family(LennardJonesScoring()) == "exact"
    assert scoring_family(TiledLennardJonesScoring()) == "exact"
    assert scoring_family(BatchedLJScoring()) == "exact"
    assert scoring_family(CutoffLennardJonesScoring(dtype=np.float32)) == (
        "cutoff-float32"
    )
    assert scoring_family(CutoffLennardJonesScoring(dtype=np.float64)) == (
        "cutoff-float64"
    )
    assert scoring_family(SoftcoreLJScoring()) is None


def test_variant_candidates_cover_all_exact_kernels():
    cands = variant_candidates("exact", 300, 18)
    variants = {v for v, _ in cands}
    assert variants == {
        "lennard-jones",
        "lennard-jones-tiled",
        "lennard-jones-batched",
    }
    assert len(cands) == len(set(cands)), "candidates are deduplicated"
    with pytest.raises(ScoringError, match="unknown calibration family"):
        variant_candidates("fantasy", 300, 18)


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
def test_exact_cell_picks_fastest_variant(table):
    sel = KernelSelector(table).select("exact", 300, 18, 0)
    assert sel.variant == "lennard-jones-batched"
    assert sel.chunk_size == 512
    assert sel.exact_cell


def test_nearest_cell_fallback_in_log_space(table):
    # 2800×40 is far from (300, 18) in log space, near (3000, 45).
    sel = KernelSelector(table).select("exact", 2800, 40, 0)
    assert not sel.exact_cell
    assert sel.cell.features == (3000, 45, 0)
    assert sel.chunk_size == 128


def test_family_is_never_crossed(table):
    sel = KernelSelector(table).select("cutoff-float32", 300, 18, 0)
    assert sel.variant == "lennard-jones-cutoff"
    assert KernelSelector(table).select("cutoff-float64", 300, 18, 0) is None


def test_selection_determinism_property(table):
    """Same table + same features ⇒ same selection, across instances."""
    rng = np.random.default_rng(20260805)
    for _ in range(60):
        rec = int(rng.integers(10, 5000))
        lig = int(rng.integers(2, 100))
        workers = int(rng.integers(0, 9))
        family = str(rng.choice(["exact", "cutoff-float32"]))
        a = KernelSelector(table).select(family, rec, lig, workers)
        b = KernelSelector(table).select(family, rec, lig, workers)
        assert a == b


def check_selector_determinism(cells_spec, rec, lig, workers):
    cells = [
        _cell(
            rec=r, lig=lg, workers=w,
            variant=("lennard-jones", "lennard-jones-batched",
                     "lennard-jones-tiled")[v],
            chunk=chunk, rate=rate,
        )
        for (r, lg, w, v, chunk, rate) in cells_spec
    ]
    # Selection must not depend on table row order.
    forward = KernelSelector(CalibrationTable(cells)).select(
        "exact", rec, lig, workers
    )
    backward = KernelSelector(CalibrationTable(cells[::-1])).select(
        "exact", rec, lig, workers
    )
    assert forward == backward
    if forward is not None:
        again = KernelSelector(CalibrationTable(cells)).select(
            "exact", rec, lig, workers
        )
        assert again == forward


def _seeded_cases(draw, n=40, seed=20260805):
    rng = np.random.default_rng(seed)
    return [draw(rng) for _ in range(n)]


def _draw_selector_case(rng):
    n_cells = int(rng.integers(1, 8))
    cells = tuple(
        (
            int(rng.integers(10, 5000)),
            int(rng.integers(2, 100)),
            int(rng.integers(0, 5)),
            int(rng.integers(0, 3)),
            int(rng.integers(1, 1024)),
            float(rng.uniform(1.0, 1e6)),
        )
        for _ in range(n_cells)
    )
    return (
        cells,
        int(rng.integers(10, 5000)),
        int(rng.integers(2, 100)),
        int(rng.integers(0, 5)),
    )


if HAVE_HYPOTHESIS:
    _cell_strategy = st.tuples(
        st.integers(10, 5000),
        st.integers(2, 100),
        st.integers(0, 4),
        st.integers(0, 2),
        st.integers(1, 1024),
        st.floats(1.0, 1e6, allow_nan=False),
    )

    @settings(max_examples=60, deadline=None)
    @given(
        cells_spec=st.lists(_cell_strategy, min_size=1, max_size=7).map(tuple),
        rec=st.integers(10, 5000),
        lig=st.integers(2, 100),
        workers=st.integers(0, 4),
    )
    def test_selector_order_independence_property(cells_spec, rec, lig, workers):
        check_selector_determinism(cells_spec, rec, lig, workers)

else:

    @pytest.mark.parametrize(
        "cells_spec,rec,lig,workers", _seeded_cases(_draw_selector_case)
    )
    def test_selector_order_independence_property(cells_spec, rec, lig, workers):
        check_selector_determinism(cells_spec, rec, lig, workers)


# ----------------------------------------------------------------------
# Controller: pinning, counters, passthrough, prune restriction
# ----------------------------------------------------------------------
def test_controller_pins_and_counts(table):
    obs.reset()
    controller = AutotuneController(table)
    tuned = controller.resolve(LennardJonesScoring(), 300, 18, 0)
    assert isinstance(tuned, BatchedLJScoring)
    assert tuned.chunk_size == 512
    assert obs.counter("autotune.cell_hits").value == 1
    # Same cell again: the pin replays without re-counting hit/miss.
    again = controller.resolve(LennardJonesScoring(), 300, 18, 0)
    assert isinstance(again, BatchedLJScoring)
    assert obs.counter("autotune.cell_hits").value == 1
    assert (
        obs.counter("autotune.selections", variant="lennard-jones-batched").value
        == 2
    )
    # A non-exact feature cell counts as a miss but still selects.
    far = controller.resolve(LennardJonesScoring(), 2800, 40, 0)
    assert isinstance(far, BatchedLJScoring)
    assert far.chunk_size == 128
    assert obs.counter("autotune.cell_misses").value == 1


def test_controller_preserves_physics_parameters(table):
    controller = AutotuneController(table)
    base = CutoffLennardJonesScoring(dtype=np.float32, cutoff=7.5)
    tuned = controller.resolve(base, 300, 18, 0)
    assert isinstance(tuned, CutoffLennardJonesScoring)
    assert tuned.cutoff == base.cutoff
    assert tuned.dtype == base.dtype
    assert tuned.forcefield is base.forcefield


def test_unknown_family_passes_through(table):
    obs.reset()
    controller = AutotuneController(table)
    base = SoftcoreLJScoring()
    assert controller.resolve(base, 300, 18, 0) is base
    assert obs.counter("autotune.cell_misses").value == 1


def test_prune_spots_restricts_to_prunable_variants(table):
    controller = AutotuneController(table, prune_spots=True)
    tuned = controller.resolve(LennardJonesScoring(), 300, 18, 0)
    # Batched wins on throughput but cannot be spot-pruned; the dense
    # kernel is the fastest prunable candidate.
    assert isinstance(tuned, LennardJonesScoring)
    assert tuned.chunk_size == 256
    name = "lennard-jones" if isinstance(tuned, LennardJonesScoring) else "?"
    assert name in PRUNABLE_VARIANTS


# ----------------------------------------------------------------------
# Refinement: hysteresis, demotion, never switching
# ----------------------------------------------------------------------
def test_refinement_needs_sustained_shortfall(table):
    controller = AutotuneController(table, margin=1.15, patience=3)
    controller.resolve(LennardJonesScoring(), 300, 18, 0)  # predicts 2500/s
    controller.observe(100.0)
    controller.observe(100.0)
    assert controller.refinements == 0, "patience not yet exhausted"
    controller.observe(100.0)
    assert controller.refinements == 1
    refined = controller.refined_table()
    (demoted,) = [
        c
        for c in refined.cells
        if c.variant == "lennard-jones-batched" and c.features == (300, 18, 0)
    ]
    assert demoted.poses_per_s < 2500.0
    # The in-memory table the selector uses is untouched.
    (original,) = [
        c
        for c in table.cells
        if c.variant == "lennard-jones-batched" and c.features == (300, 18, 0)
    ]
    assert original.poses_per_s == 2500.0


def test_recovered_throughput_resets_the_streak(table):
    controller = AutotuneController(table, margin=1.15, patience=3)
    controller.resolve(LennardJonesScoring(), 300, 18, 0)  # predicts 2500/s
    controller.observe(100.0)
    controller.observe(100.0)
    # A strong recovery lifts the EWMA back over the margin bar, resetting
    # the shortfall streak — and the EWMA's inertia then keeps subsequent
    # single slow samples from re-triggering immediately.
    controller.observe(50_000.0)
    controller.observe(100.0)
    controller.observe(100.0)
    assert controller.refinements == 0


def test_refinement_never_switches_active_selection(table):
    controller = AutotuneController(table, patience=1)
    first = controller.resolve(LennardJonesScoring(), 300, 18, 0)
    for _ in range(20):
        controller.observe(1.0)  # catastrophic observed throughput
    after = controller.resolve(LennardJonesScoring(), 300, 18, 0)
    assert type(after) is type(first)
    assert after.chunk_size == first.chunk_size


def test_observe_ignores_garbage(table):
    controller = AutotuneController(table, patience=1)
    controller.observe(100.0)  # nothing resolved yet: no-op
    controller.resolve(LennardJonesScoring(), 300, 18, 0)
    controller.observe(float("nan"))
    controller.observe(-5.0)
    controller.observe(0.0)
    assert controller.refinements == 0


# ----------------------------------------------------------------------
# Sweep smoke (tiny sizes: seconds, not minutes)
# ----------------------------------------------------------------------
def test_tiny_sweep_selects_and_roundtrips(tmp_path):
    table = run_calibration_sweep(
        receptor_atoms=(120,),
        ligand_atoms=(12,),
        worker_counts=(0,),
        families=("exact",),
        poses=32,
        repeats=1,
        seed=3,
    )
    assert len(table.cells) == len(variant_candidates("exact", 120, 12))
    assert all(c.poses_per_s > 0 for c in table.cells)
    loaded = CalibrationTable.load(table.save(tmp_path / "sweep.json"))
    sel = KernelSelector(loaded).select("exact", 120, 12, 0)
    assert sel is not None and sel.exact_cell
