"""Tests for the scoring abstractions and registry."""

import numpy as np
import pytest

from repro.errors import ScoringError
from repro.molecules.transforms import identity_quaternion
from repro.scoring.base import available_scorings, get_scoring
from repro.scoring.lennard_jones import LennardJonesScoring


def test_registry_contains_all_builtin_scorings():
    names = available_scorings()
    for expected in (
        "lennard-jones",
        "lennard-jones-cutoff",
        "lennard-jones-tiled",
        "lennard-jones-softcore",
        "coulomb",
        "gridmap",
    ):
        assert expected in names


def test_get_scoring_instantiates(receptor, ligand):
    sf = get_scoring("lennard-jones")
    assert isinstance(sf, LennardJonesScoring)
    bound = sf.bind(receptor, ligand)
    assert bound.n_pairs == receptor.n_atoms * ligand.n_atoms


def test_get_scoring_unknown_name():
    with pytest.raises(ScoringError, match="unknown scoring function"):
        get_scoring("does-not-exist")


def test_flops_per_pose_scales_with_pairs(receptor, ligand, dense_scorer):
    assert dense_scorer.flops_per_pose == pytest.approx(
        receptor.n_atoms * ligand.n_atoms * 18
    )


def test_score_validates_shapes(dense_scorer):
    with pytest.raises(ScoringError):
        dense_scorer.score(np.zeros((3, 2)), np.zeros((3, 4)))
    with pytest.raises(ScoringError):
        dense_scorer.score(np.zeros((3, 3)), np.zeros((2, 4)))


def test_score_empty_batch(dense_scorer):
    out = dense_scorer.score(np.zeros((0, 3)), np.zeros((0, 4)))
    assert out.shape == (0,)


def test_score_one_matches_batch(dense_scorer, pose_batch):
    translations, quaternions = pose_batch
    batch = dense_scorer.score(translations, quaternions)
    single = dense_scorer.score_one(translations[0], quaternions[0])
    assert single == pytest.approx(batch[0])


def test_score_one_fast_path_is_bitwise(dense_scorer, fast_scorer, pose_batch):
    """The chunk-direct fast path returns exactly score(t[None])[0] bits."""
    translations, quaternions = pose_batch
    for scorer in (dense_scorer, fast_scorer):
        for i in range(3):
            single = scorer.score_one(translations[i], quaternions[i])
            batch = scorer.score(
                translations[i][None, :], quaternions[i][None, :]
            )
            assert single == batch[0], "score_one must not drift from score"


def test_score_one_validates_shapes(dense_scorer):
    with pytest.raises(ScoringError, match="score_one expects one pose"):
        dense_scorer.score_one(np.zeros((2, 3)), np.zeros((2, 4)))
    with pytest.raises(ScoringError, match="score_one expects one pose"):
        dense_scorer.score_one(np.zeros(3), np.zeros(3))


def test_score_spots_rejects_mismatched_spot_ids(dense_scorer, pose_batch):
    """A spot-id array shorter or longer than the batch is a caller bug the
    base scorer must name, not broadcast away (both lengths in the error)."""
    translations, quaternions = pose_batch
    n = translations.shape[0]
    with pytest.raises(ScoringError, match=rf"\b{n - 2}\b.*\b{n}\b"):
        dense_scorer.score_spots(
            np.zeros(n - 2, dtype=np.int64), translations, quaternions
        )
    with pytest.raises(ScoringError, match=rf"\b{n + 3}\b.*\b{n}\b"):
        dense_scorer.score_spots(
            np.zeros(n + 3, dtype=np.int64), translations, quaternions
        )
    ok = dense_scorer.score_spots(
        np.zeros(n, dtype=np.int64), translations, quaternions
    )
    assert ok.shape == (n,)


def test_pruned_score_spots_rejects_mismatched_spot_ids(
    receptor, ligand, spots, pose_batch
):
    """The pruned scorer shares the same validation (and error wording)."""
    from repro.scoring.cutoff import CutoffLennardJonesScoring
    from repro.scoring.pruned import prune_bound

    pruned = prune_bound(
        CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand), spots
    )
    translations, quaternions = pose_batch
    n = translations.shape[0]
    with pytest.raises(ScoringError, match="spot ids"):
        pruned.score_spots(
            np.full(n - 1, spots[0].index, dtype=np.int64),
            translations,
            quaternions,
        )


def test_chunking_is_invisible(receptor, ligand, pose_batch):
    """Different chunk sizes give identical dense results."""
    translations, quaternions = pose_batch
    a = LennardJonesScoring(chunk_size=1).bind(receptor, ligand).score(
        translations, quaternions
    )
    b = LennardJonesScoring(chunk_size=7).bind(receptor, ligand).score(
        translations, quaternions
    )
    c = LennardJonesScoring(chunk_size=100).bind(receptor, ligand).score(
        translations, quaternions
    )
    np.testing.assert_allclose(a, b, rtol=1e-12)
    np.testing.assert_allclose(a, c, rtol=1e-12)


def test_posed_ligand_coords_center_convention(dense_scorer):
    t = np.array([[5.0, 0.0, 0.0]])
    q = identity_quaternion()[None, :]
    posed = dense_scorer.posed_ligand_coords(t, q)
    np.testing.assert_allclose(posed[0].mean(axis=0), [5.0, 0.0, 0.0], atol=1e-9)


def test_auto_chunk_size_budget_formula():
    from repro.scoring.base import (
        CHUNK_BUDGET_BYTES,
        MAX_CHUNK_SIZE,
        MIN_CHUNK_SIZE,
        auto_chunk_size,
    )

    # Mid-range complex: the budget formula applies un-clamped.
    n_rec, n_lig = 3000, 45
    got = auto_chunk_size(n_rec, n_lig, itemsize=8)
    assert got == CHUNK_BUDGET_BYTES // (n_rec * n_lig * 8)
    assert MIN_CHUNK_SIZE <= got <= MAX_CHUNK_SIZE
    # Tiny complex: clamped at the ceiling.
    assert auto_chunk_size(10, 4, itemsize=4) == MAX_CHUNK_SIZE
    # Enormous complex: clamped at the floor, never zero.
    assert auto_chunk_size(10**6, 500, itemsize=8) == MIN_CHUNK_SIZE
    # Halving the itemsize doubles the chunk (power-of-two pair size, so the
    # floor division is exact and both values stay inside the clamp range).
    assert auto_chunk_size(2048, 16, itemsize=4) == 2 * auto_chunk_size(
        2048, 16, itemsize=8
    )


def test_auto_chunk_size_is_default_for_bound_scorers(receptor, ligand):
    from repro.scoring.base import auto_chunk_size
    from repro.scoring.cutoff import CutoffLennardJonesScoring

    bound = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)
    assert bound.chunk_size == auto_chunk_size(
        receptor.n_atoms, ligand.n_atoms, itemsize=4
    )
    explicit = CutoffLennardJonesScoring(dtype=np.float32, chunk_size=7).bind(
        receptor, ligand
    )
    assert explicit.chunk_size == 7


def test_non_finite_error_names_poses_and_shape():
    from repro.scoring.base import non_finite_error

    out = np.zeros(6)
    out[[1, 4]] = np.nan
    err = non_finite_error(out, (6, 3))
    msg = str(err)
    assert "1" in msg and "4" in msg
    assert "(6, 3)" in msg


def test_non_finite_error_truncates_long_index_lists():
    from repro.scoring.base import non_finite_error

    out = np.full(64, np.inf)
    msg = str(non_finite_error(out, (64, 3)))
    assert "more" in msg  # long lists are elided, not dumped


def test_score_raises_detailed_non_finite_error(receptor, ligand):
    from repro.errors import ScoringError
    from repro.scoring.lennard_jones import LennardJonesScoring

    scorer = LennardJonesScoring().bind(receptor, ligand)
    # A NaN translation propagates to a NaN energy for that pose only.
    t = np.zeros((3, 3))
    t[:, 0] = [0.0, 100.0, np.nan]
    q = np.repeat(identity_quaternion()[None, :], 3, axis=0)
    with pytest.raises(ScoringError, match=r"pose.*\b2\b") as excinfo:
        scorer.score(t, q)
    assert "(3, 3)" in str(excinfo.value)  # batch shape reported
