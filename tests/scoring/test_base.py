"""Tests for the scoring abstractions and registry."""

import numpy as np
import pytest

from repro.errors import ScoringError
from repro.molecules.transforms import identity_quaternion
from repro.scoring.base import available_scorings, get_scoring
from repro.scoring.lennard_jones import LennardJonesScoring


def test_registry_contains_all_builtin_scorings():
    names = available_scorings()
    for expected in (
        "lennard-jones",
        "lennard-jones-cutoff",
        "lennard-jones-tiled",
        "lennard-jones-softcore",
        "coulomb",
        "gridmap",
    ):
        assert expected in names


def test_get_scoring_instantiates(receptor, ligand):
    sf = get_scoring("lennard-jones")
    assert isinstance(sf, LennardJonesScoring)
    bound = sf.bind(receptor, ligand)
    assert bound.n_pairs == receptor.n_atoms * ligand.n_atoms


def test_get_scoring_unknown_name():
    with pytest.raises(ScoringError, match="unknown scoring function"):
        get_scoring("does-not-exist")


def test_flops_per_pose_scales_with_pairs(receptor, ligand, dense_scorer):
    assert dense_scorer.flops_per_pose == pytest.approx(
        receptor.n_atoms * ligand.n_atoms * 18
    )


def test_score_validates_shapes(dense_scorer):
    with pytest.raises(ScoringError):
        dense_scorer.score(np.zeros((3, 2)), np.zeros((3, 4)))
    with pytest.raises(ScoringError):
        dense_scorer.score(np.zeros((3, 3)), np.zeros((2, 4)))


def test_score_empty_batch(dense_scorer):
    out = dense_scorer.score(np.zeros((0, 3)), np.zeros((0, 4)))
    assert out.shape == (0,)


def test_score_one_matches_batch(dense_scorer, pose_batch):
    translations, quaternions = pose_batch
    batch = dense_scorer.score(translations, quaternions)
    single = dense_scorer.score_one(translations[0], quaternions[0])
    assert single == pytest.approx(batch[0])


def test_chunking_is_invisible(receptor, ligand, pose_batch):
    """Different chunk sizes give identical dense results."""
    translations, quaternions = pose_batch
    a = LennardJonesScoring(chunk_size=1).bind(receptor, ligand).score(
        translations, quaternions
    )
    b = LennardJonesScoring(chunk_size=7).bind(receptor, ligand).score(
        translations, quaternions
    )
    c = LennardJonesScoring(chunk_size=100).bind(receptor, ligand).score(
        translations, quaternions
    )
    np.testing.assert_allclose(a, b, rtol=1e-12)
    np.testing.assert_allclose(a, c, rtol=1e-12)


def test_posed_ligand_coords_center_convention(dense_scorer):
    t = np.array([[5.0, 0.0, 0.0]])
    q = identity_quaternion()[None, :]
    posed = dense_scorer.posed_ligand_coords(t, q)
    np.testing.assert_allclose(posed[0].mean(axis=0), [5.0, 0.0, 0.0], atol=1e-9)
