"""Tests for the fused batched-pose LJ kernel.

The batched scorer restructures the dense arithmetic into one augmented
GEMM per pose block; these tests pin its two contracts: agreement with the
pure-Python reference to tolerance, and *bitwise* stability under the
grid-aligned splits the host runtime's planner produces.
"""

import pickle

import numpy as np
import pytest

from repro.errors import ScoringError
from repro.molecules.structures import Ligand, Receptor
from repro.molecules.transforms import random_quaternion
from repro.scoring.base import available_scorings, get_scoring
from repro.scoring.batched import (
    BATCHED_MAX_CHUNK_SIZE,
    BatchedLJScoring,
    BoundBatchedLJ,
    batched_chunk_size,
)
from repro.scoring.lennard_jones import LennardJonesScoring
from repro.scoring.reference import ReferenceLJScoring

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - container ships hypothesis
    HAVE_HYPOTHESIS = False


@pytest.fixture(scope="module")
def batched_scorer(receptor, ligand):
    return BatchedLJScoring().bind(receptor, ligand)


def test_registered_in_scoring_registry():
    assert "lennard-jones-batched" in available_scorings()
    assert isinstance(get_scoring("lennard-jones-batched"), BatchedLJScoring)


def test_batched_chunk_size_budget_and_ceiling():
    from repro.scoring.base import CHUNK_BUDGET_BYTES, MIN_CHUNK_SIZE

    n_rec, n_lig = 3000, 45
    assert batched_chunk_size(n_rec, n_lig, itemsize=8) == CHUNK_BUDGET_BYTES // (
        n_rec * n_lig * 8
    )
    # Tiny complexes clamp at the batched ceiling, above the dense one.
    assert batched_chunk_size(10, 4) == BATCHED_MAX_CHUNK_SIZE
    assert batched_chunk_size(10**6, 500) == MIN_CHUNK_SIZE


def test_default_chunk_size_is_batched_auto(receptor, ligand, batched_scorer):
    assert batched_scorer.chunk_size == batched_chunk_size(
        receptor.n_atoms, ligand.n_atoms, itemsize=8
    )
    assert BatchedLJScoring(chunk_size=9).bind(receptor, ligand).chunk_size == 9


def test_matches_dense_scorer(dense_scorer, batched_scorer, pose_batch):
    translations, quaternions = pose_batch
    dense = dense_scorer.score(translations, quaternions)
    batched = batched_scorer.score(translations, quaternions)
    np.testing.assert_allclose(batched, dense, rtol=1e-9)


def test_matches_pure_python_reference(receptor, ligand, batched_scorer, pose_batch):
    translations, quaternions = pose_batch
    reference = ReferenceLJScoring().bind(receptor, ligand).score(
        translations[:3], quaternions[:3]
    )
    batched = batched_scorer.score(translations[:3], quaternions[:3])
    np.testing.assert_allclose(batched, reference, rtol=1e-8)


def test_grid_aligned_splits_are_bitwise(receptor, ligand, rng):
    """Splitting a batch on the chunk grid reproduces the serial bits.

    This is the planner's contract: `ParallelSpotEvaluator._plan` cuts
    worker shares on the absolute pose-index grid of the scorer's
    chunk_size, so every block BLAS sees has the same shape as in the
    serial pass — the whole reason parallel scores equal serial ones.
    """
    chunk = 7
    scorer = BatchedLJScoring(chunk_size=chunk).bind(receptor, ligand)
    n = 4 * chunk + 3  # a ragged tail exercises the short final block
    translations = receptor.coords.mean(axis=0) + rng.normal(0, 3.0, (n, 3))
    quaternions = random_quaternion(rng, n)
    serial = scorer.score(translations, quaternions)
    split = np.concatenate(
        [
            scorer.score(translations[lo : lo + chunk], quaternions[lo : lo + chunk])
            for lo in range(0, n, chunk)
        ]
    )
    assert np.array_equal(serial, split), "grid-aligned split must be bitwise"


def test_empty_batch_and_shape_validation(batched_scorer):
    out = batched_scorer.score(np.zeros((0, 3)), np.zeros((0, 4)))
    assert out.shape == (0,)
    with pytest.raises(ScoringError, match=r"\(n, 3\)"):
        batched_scorer.score(np.zeros((3, 2)), np.zeros((3, 4)))
    with pytest.raises(ScoringError, match="quaternions"):
        batched_scorer.score(np.zeros((3, 3)), np.zeros((2, 4)))


def test_score_coords_matches_score(batched_scorer, pose_batch):
    translations, quaternions = pose_batch
    posed = batched_scorer.posed_ligand_coords(translations, quaternions)
    via_coords = batched_scorer.score_coords(posed)
    direct = batched_scorer.score(translations, quaternions)
    assert np.array_equal(via_coords, direct)
    with pytest.raises(ScoringError, match="posed coords"):
        batched_scorer.score_coords(np.zeros((2, 3)))


def test_non_finite_poses_are_reported(batched_scorer):
    t = np.zeros((2, 3))
    t[1, 0] = np.nan
    q = np.zeros((2, 4))
    q[:, 0] = 1.0
    with pytest.raises(ScoringError, match="non-finite"):
        batched_scorer.score(t, q)


def test_pickle_roundtrip_drops_scratch_and_scores_identically(
    receptor, ligand, pose_batch
):
    translations, quaternions = pose_batch
    scorer = BatchedLJScoring().bind(receptor, ligand)
    before = scorer.score(translations, quaternions)
    assert scorer._scratch is not None  # scratch exists after a pass
    clone = pickle.loads(pickle.dumps(scorer))
    assert clone._scratch is None  # ...but never travels
    after = clone.score(translations, quaternions)
    assert np.array_equal(before, after)


# ----------------------------------------------------------------------
# Property: batched == reference on random tiny complexes (satellite c)
# ----------------------------------------------------------------------
def check_batched_reference_parity(n_rec, n_lig, n_poses, chunk, case_seed):
    rng = np.random.default_rng(case_seed)
    receptor = Receptor(
        coords=rng.normal(0.0, 4.0, (n_rec, 3)),
        elements=[("C", "N", "O")[i % 3] for i in range(n_rec)],
    )
    ligand = Ligand(
        coords=rng.normal(0.0, 1.0, (n_lig, 3)),
        elements=[("C", "N", "O", "S")[i % 4] for i in range(n_lig)],
    )
    translations = rng.normal(0.0, 5.0, (n_poses, 3))
    quaternions = random_quaternion(rng, n_poses)
    batched = BatchedLJScoring(chunk_size=chunk).bind(receptor, ligand)
    reference = ReferenceLJScoring().bind(receptor, ligand)
    got = batched.score(translations, quaternions)
    want = reference.score(translations, quaternions)
    np.testing.assert_allclose(got, want, rtol=1e-8)
    # And the dense kernel sits in the same family at the same tolerance.
    dense = LennardJonesScoring().bind(receptor, ligand)
    np.testing.assert_allclose(got, dense.score(translations, quaternions), rtol=1e-8)


def _seeded_cases(draw, n=25, seed=20260805):
    rng = np.random.default_rng(seed)
    return [draw(rng) for _ in range(n)]


def _draw_parity(rng):
    return (
        int(rng.integers(1, 30)),
        int(rng.integers(1, 10)),
        int(rng.integers(1, 12)),
        int(rng.integers(1, 8)),
        int(rng.integers(0, 2**31)),
    )


if HAVE_HYPOTHESIS:

    @settings(max_examples=25, deadline=None)
    @given(
        n_rec=st.integers(1, 30),
        n_lig=st.integers(1, 10),
        n_poses=st.integers(1, 12),
        chunk=st.integers(1, 8),
        case_seed=st.integers(0, 2**31),
    )
    def test_batched_matches_reference_property(
        n_rec, n_lig, n_poses, chunk, case_seed
    ):
        check_batched_reference_parity(n_rec, n_lig, n_poses, chunk, case_seed)

else:

    @pytest.mark.parametrize(
        "n_rec,n_lig,n_poses,chunk,case_seed", _seeded_cases(_draw_parity)
    )
    def test_batched_matches_reference_property(
        n_rec, n_lig, n_poses, chunk, case_seed
    ):
        check_batched_reference_parity(n_rec, n_lig, n_poses, chunk, case_seed)
