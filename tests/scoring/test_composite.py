"""Composite scoring tests."""

import numpy as np
import pytest

from repro.errors import ScoringError
from repro.scoring.composite import CompositeScoring, make_lj_coulomb
from repro.scoring.coulomb import CoulombScoring
from repro.scoring.lennard_jones import LennardJonesScoring


def test_composite_is_weighted_sum(receptor, ligand, pose_batch):
    translations, quaternions = pose_batch
    lj = LennardJonesScoring().bind(receptor, ligand).score(translations, quaternions)
    cb = CoulombScoring().bind(receptor, ligand).score(translations, quaternions)
    comp = CompositeScoring(
        [(1.0, LennardJonesScoring()), (0.5, CoulombScoring())]
    ).bind(receptor, ligand).score(translations, quaternions)
    np.testing.assert_allclose(comp, lj + 0.5 * cb, rtol=1e-10)


def test_single_term_identity(receptor, ligand, pose_batch):
    translations, quaternions = pose_batch
    lj = LennardJonesScoring().bind(receptor, ligand).score(translations, quaternions)
    comp = CompositeScoring([(1.0, LennardJonesScoring())]).bind(
        receptor, ligand
    ).score(translations, quaternions)
    np.testing.assert_allclose(comp, lj, rtol=1e-12)


def test_zero_weight_erases_term(receptor, ligand, pose_batch):
    translations, quaternions = pose_batch
    lj = LennardJonesScoring().bind(receptor, ligand).score(translations, quaternions)
    comp = CompositeScoring(
        [(1.0, LennardJonesScoring()), (0.0, CoulombScoring())]
    ).bind(receptor, ligand).score(translations, quaternions)
    np.testing.assert_allclose(comp, lj, rtol=1e-12)


def test_empty_terms_rejected():
    with pytest.raises(ScoringError):
        CompositeScoring([])
    with pytest.raises(ScoringError):
        CompositeScoring(None)


def test_flops_accumulate(receptor, ligand):
    comp = make_lj_coulomb().bind(receptor, ligand)
    lj = LennardJonesScoring().bind(receptor, ligand)
    cb = CoulombScoring().bind(receptor, ligand)
    assert comp.flops_per_pose == pytest.approx(lj.flops_per_pose + cb.flops_per_pose)


def test_make_lj_coulomb_factory(receptor, ligand, pose_batch):
    translations, quaternions = pose_batch
    scores = make_lj_coulomb(1.0, 0.25).bind(receptor, ligand).score(
        translations, quaternions
    )
    assert scores.shape == (translations.shape[0],)
    assert np.all(np.isfinite(scores))
