"""Coulomb scoring tests: analytic checks and sign structure."""

import numpy as np
import pytest

from repro.constants import COULOMB_CONSTANT
from repro.errors import ScoringError
from repro.molecules.structures import Ligand, Receptor
from repro.molecules.transforms import identity_quaternion
from repro.scoring.coulomb import CoulombScoring


def _charged_pair(q_rec: float, q_lig: float, distance: float):
    receptor = Receptor(
        coords=np.array([[0.0, 0.0, 0.0]]),
        elements=["O"],
        charges=np.array([q_rec]),
    )
    ligand = Ligand(
        coords=np.array([[0.0, 0.0, 0.0]]),
        elements=["N"],
        charges=np.array([q_lig]),
    )
    t = np.array([[distance, 0.0, 0.0]])
    q = identity_quaternion()[None, :]
    return receptor, ligand, t, q


def test_two_charge_energy_analytic():
    dielectric = 4.0
    for d in (2.0, 5.0, 10.0):
        receptor, ligand, t, q = _charged_pair(0.5, -0.3, d)
        score = CoulombScoring(dielectric=dielectric).bind(receptor, ligand).score(t, q)[0]
        expected = COULOMB_CONSTANT / dielectric * 0.5 * (-0.3) / d**2
        assert score == pytest.approx(expected, rel=1e-10)


def test_opposite_charges_attract_like_repel():
    receptor, ligand, t, q = _charged_pair(0.5, -0.5, 4.0)
    attract = CoulombScoring().bind(receptor, ligand).score(t, q)[0]
    assert attract < 0
    receptor2, ligand2, t2, q2 = _charged_pair(0.5, 0.5, 4.0)
    repel = CoulombScoring().bind(receptor2, ligand2).score(t2, q2)[0]
    assert repel > 0
    assert repel == pytest.approx(-attract, rel=1e-12)


def test_energy_decays_with_distance_squared():
    receptor, ligand, t4, q = _charged_pair(0.4, 0.4, 4.0)
    _, _, t8, _ = _charged_pair(0.4, 0.4, 8.0)
    scorer = CoulombScoring().bind(receptor, ligand)
    e4 = scorer.score(t4, q)[0]
    e8 = scorer.score(t8, q)[0]
    assert e4 == pytest.approx(4.0 * e8, rel=1e-10)  # 1/r² dielectric model


def test_neutral_ligand_scores_zero(receptor):
    ligand = Ligand(
        coords=np.zeros((1, 3)), elements=["C"], charges=np.array([0.0])
    )
    scorer = CoulombScoring().bind(receptor, ligand)
    t = np.array([[5.0, 0.0, 0.0]])
    q = identity_quaternion()[None, :]
    assert scorer.score(t, q)[0] == pytest.approx(0.0)


def test_clash_clamped_finite():
    receptor, ligand, _, q = _charged_pair(1.0, 1.0, 0.0)
    t = np.zeros((1, 3))
    score = CoulombScoring().bind(receptor, ligand).score(t, q)[0]
    assert np.isfinite(score)


def test_dielectric_validation(receptor, ligand):
    with pytest.raises(ScoringError):
        CoulombScoring(dielectric=0.0).bind(receptor, ligand)


def test_flops_per_pose(receptor, ligand):
    bound = CoulombScoring().bind(receptor, ligand)
    assert bound.flops_per_pose == pytest.approx(
        receptor.n_atoms * ligand.n_atoms * 12
    )
