"""Cutoff scorer: exactness at large cutoff, ranking fidelity at 12 Å."""

import numpy as np
import pytest

from repro.errors import ScoringError
from repro.scoring.cutoff import CutoffLennardJonesScoring
from repro.scoring.lennard_jones import LennardJonesScoring


def test_huge_cutoff_matches_dense_exactly(receptor, ligand, pose_batch):
    translations, quaternions = pose_batch
    dense = LennardJonesScoring().bind(receptor, ligand).score(translations, quaternions)
    cutoff = CutoffLennardJonesScoring(cutoff=1e5).bind(receptor, ligand).score(
        translations, quaternions
    )
    np.testing.assert_allclose(cutoff, dense, rtol=1e-9)


def test_default_cutoff_preserves_ranking(receptor, ligand, pose_batch):
    translations, quaternions = pose_batch
    dense = LennardJonesScoring().bind(receptor, ligand).score(translations, quaternions)
    fast = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand).score(
        translations, quaternions
    )
    assert int(np.argmin(fast)) == int(np.argmin(dense))
    # Spearman rank correlation must be near-perfect.
    rank_a = np.argsort(np.argsort(dense))
    rank_b = np.argsort(np.argsort(fast))
    corr = np.corrcoef(rank_a, rank_b)[0, 1]
    assert corr > 0.95


def test_cutoff_truncation_error_is_bounded_tail(receptor, ligand, pose_batch):
    """With a 12 Å cutoff the error equals the (attractive) LJ tail — small
    relative to well depths, and strictly reduces binding energy magnitude
    for non-clashed poses."""
    translations, quaternions = pose_batch
    dense = LennardJonesScoring().bind(receptor, ligand).score(translations, quaternions)
    cut = CutoffLennardJonesScoring().bind(receptor, ligand).score(
        translations, quaternions
    )
    good = dense < 1e3
    # Tail is attractive: removing it makes the score greater (less negative).
    assert np.all(cut[good] >= dense[good] - 1e-6)
    assert np.max(cut[good] - dense[good]) < 10.0


def test_chunking_consistency(receptor, ligand, pose_batch):
    """Cutoff zeroing makes results chunk-independent (to fp reduction)."""
    translations, quaternions = pose_batch
    a = CutoffLennardJonesScoring(chunk_size=2).bind(receptor, ligand).score(
        translations, quaternions
    )
    b = CutoffLennardJonesScoring(chunk_size=12).bind(receptor, ligand).score(
        translations, quaternions
    )
    np.testing.assert_allclose(a, b, rtol=1e-6)


def test_far_away_pose_scores_zero(receptor, ligand):
    scorer = CutoffLennardJonesScoring().bind(receptor, ligand)
    t = np.array([[1000.0, 1000.0, 1000.0]])
    q = np.array([[1.0, 0.0, 0.0, 0.0]])
    assert scorer.score(t, q)[0] == 0.0


def test_float32_path_close_to_float64(receptor, ligand, pose_batch):
    translations, quaternions = pose_batch
    f64 = CutoffLennardJonesScoring(dtype=np.float64).bind(receptor, ligand).score(
        translations, quaternions
    )
    f32 = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand).score(
        translations, quaternions
    )
    good = np.abs(f64) < 1e3
    np.testing.assert_allclose(f32[good], f64[good], rtol=5e-2, atol=1e-2)


def test_parameter_validation(receptor, ligand):
    with pytest.raises(ScoringError):
        CutoffLennardJonesScoring(cutoff=-1.0).bind(receptor, ligand)
    with pytest.raises(ScoringError):
        CutoffLennardJonesScoring(dtype=np.int32).bind(receptor, ligand)


def test_flops_per_pose_models_full_sweep(receptor, ligand):
    """Host-side pruning must NOT change the modelled kernel cost."""
    cut = CutoffLennardJonesScoring().bind(receptor, ligand)
    dense = LennardJonesScoring().bind(receptor, ligand)
    assert cut.flops_per_pose == dense.flops_per_pose
