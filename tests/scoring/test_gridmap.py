"""Grid-map scorer tests: interpolation accuracy and the cheap-kernel model."""

import numpy as np
import pytest

from repro.errors import ScoringError
from repro.molecules.structures import Ligand, Receptor
from repro.molecules.synthetic import generate_ligand, generate_receptor
from repro.molecules.transforms import random_quaternion
from repro.scoring.gridmap import GridMapScoring
from repro.scoring.lennard_jones import LennardJonesScoring


@pytest.fixture(scope="module")
def small_complex():
    receptor = generate_receptor(150, seed=21)
    ligand = generate_ligand(8, seed=22)
    return receptor, ligand


def test_grid_approximates_dense_in_smooth_region(small_complex):
    receptor, ligand = small_complex
    rng = np.random.default_rng(3)
    # Poses safely outside the receptor core where the field is smooth.
    direction = np.array([1.0, 0.0, 0.0])
    base = receptor.coords[:, 0].max() + 4.0
    t = direction * (base + rng.random((16, 1)) * 2.0)
    t += rng.normal(0, 0.5, (16, 3)) * np.array([0, 1, 1])
    q = random_quaternion(rng, 16)
    center = t.mean(axis=0)
    grid = GridMapScoring(box_center=center, box_half=8.0, spacing=0.25).bind(
        receptor, ligand
    )
    dense = LennardJonesScoring().bind(receptor, ligand)
    g = grid.score(t, q)
    d = dense.score(t, q)
    # Interpolation error on a smooth field at 0.25 Å spacing.
    np.testing.assert_allclose(g, d, rtol=0.2, atol=0.5)


def test_out_of_box_penalty_pushes_back():
    """With the receptor far away (field ≈ 0 in the box), an out-of-box
    pose scores the quadratic escape penalty, an in-box pose ≈ 0."""
    receptor = Receptor(coords=np.array([[100.0, 0.0, 0.0]]), elements=["C"])
    ligand = Ligand(coords=np.zeros((1, 3)), elements=["C"])
    grid = GridMapScoring(
        box_center=np.zeros(3), box_half=5.0, spacing=0.5
    ).bind(receptor, ligand)
    q = np.array([[1.0, 0.0, 0.0, 0.0]])
    inside = grid.score(np.array([[2.0, 0.0, 0.0]]), q)[0]
    outside = grid.score(np.array([[-12.0, 0.0, 0.0]]), q)[0]
    assert abs(inside) < 1.0
    assert outside > 10.0  # 7 Å overshoot × 10 kcal/Å² quadratic penalty


def test_flops_per_pose_is_interpolation_bound(small_complex):
    receptor, ligand = small_complex
    grid = GridMapScoring(box_half=6.0).bind(receptor, ligand)
    dense = LennardJonesScoring().bind(receptor, ligand)
    assert grid.flops_per_pose == ligand.n_atoms * 30
    assert grid.flops_per_pose < dense.flops_per_pose / 10


def test_grid_bytes_scale_with_resolution(small_complex):
    receptor, ligand = small_complex
    coarse = GridMapScoring(box_half=5.0, spacing=1.0).bind(receptor, ligand)
    fine = GridMapScoring(box_half=5.0, spacing=0.5).bind(receptor, ligand)
    assert fine.grid_bytes > 6 * coarse.grid_bytes  # ~8× points


def test_parameter_validation(small_complex):
    receptor, ligand = small_complex
    with pytest.raises(ScoringError):
        GridMapScoring(spacing=-0.5).bind(receptor, ligand)
    with pytest.raises(ScoringError):
        GridMapScoring(box_half=-1.0, box_center=np.zeros(3)).bind(receptor, ligand)


def test_one_map_per_ligand_atom_class():
    receptor = Receptor(coords=np.zeros((1, 3)), elements=["C"])
    ligand = Ligand(
        coords=np.array([[0.0, 0, 0], [1.5, 0, 0], [0, 1.5, 0]]),
        elements=["C", "C", "O"],
    )
    grid = GridMapScoring(box_center=np.zeros(3), box_half=4.0, spacing=1.0).bind(
        receptor, ligand
    )
    assert grid.maps.shape[0] == 2  # C and O
    assert sorted(grid.classes) == ["C", "O"]
