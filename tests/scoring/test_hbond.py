"""Hydrogen-bond (12-10) scorer tests."""

import numpy as np
import pytest

from repro.errors import ScoringError
from repro.molecules.structures import Ligand, Receptor
from repro.molecules.transforms import identity_quaternion
from repro.scoring.hbond import POLAR_ELEMENTS, HydrogenBondScoring


def _polar_pair(distance: float, rec_el="O", lig_el="N"):
    receptor = Receptor(coords=np.array([[0.0, 0.0, 0.0]]), elements=[rec_el])
    ligand = Ligand(coords=np.array([[0.0, 0.0, 0.0]]), elements=[lig_el])
    t = np.array([[distance, 0.0, 0.0]])
    q = identity_quaternion()[None, :]
    return receptor, ligand, t, q


def test_minimum_at_r0_with_depth_strength():
    r0, strength = 2.9, 5.0
    receptor, ligand, t, q = _polar_pair(r0)
    scorer = HydrogenBondScoring(r0=r0, strength=strength).bind(receptor, ligand)
    assert scorer.score(t, q)[0] == pytest.approx(-strength, rel=1e-10)
    # Either side of r0 is higher.
    for d in (r0 * 0.95, r0 * 1.05):
        _, _, t2, _ = _polar_pair(d)
        assert scorer.score(t2, q)[0] > -strength


def test_well_is_narrower_than_lj():
    """At 1.5 × r0 the 12-10 well retains far less depth than LJ 12-6 at
    1.5 × r_min — the H-bond term is short-ranged."""
    r0 = 2.9
    receptor, ligand, _, q = _polar_pair(r0)
    scorer = HydrogenBondScoring(r0=r0, strength=1.0).bind(receptor, ligand)
    at_r0 = scorer.score(np.array([[r0, 0, 0]]), q)[0]
    at_far = scorer.score(np.array([[1.5 * r0, 0, 0]]), q)[0]
    assert at_far / at_r0 < 0.25  # LJ 12-6 retains ~0.33 at the same ratio


def test_nonpolar_pairs_score_zero():
    receptor, ligand, t, q = _polar_pair(2.9, rec_el="C", lig_el="C")
    scorer = HydrogenBondScoring().bind(receptor, ligand)
    assert scorer.score(t, q)[0] == 0.0


def test_mixed_complex_counts_only_polar_pairs():
    receptor = Receptor(
        coords=np.array([[0.0, 0, 0], [3.0, 0, 0]]), elements=["C", "O"]
    )
    ligand = Ligand(
        coords=np.array([[0.0, 0, 0], [1.5, 0, 0]]), elements=["N", "C"]
    )
    scorer = HydrogenBondScoring().bind(receptor, ligand)
    assert scorer.n_polar_pairs == 1  # O(rec) × N(lig)
    assert scorer.flops_per_pose == 16.0


def test_polar_elements_set():
    assert POLAR_ELEMENTS == {"N", "O", "S"}


def test_clash_clamped_finite():
    receptor, ligand, _, q = _polar_pair(0.0)
    t = np.zeros((1, 3))
    score = HydrogenBondScoring().bind(receptor, ligand).score(t, q)[0]
    assert np.isfinite(score)
    assert score > 0  # deep repulsion


def test_validation():
    receptor, ligand, _, _ = _polar_pair(2.9)
    with pytest.raises(ScoringError):
        HydrogenBondScoring(r0=0.0).bind(receptor, ligand)
    with pytest.raises(ScoringError):
        HydrogenBondScoring(strength=-1.0).bind(receptor, ligand)


def test_composes_with_lj(receptor, ligand, pose_batch):
    from repro.scoring.composite import CompositeScoring
    from repro.scoring.lennard_jones import LennardJonesScoring

    translations, quaternions = pose_batch
    combined = CompositeScoring(
        [(1.0, LennardJonesScoring()), (1.0, HydrogenBondScoring())]
    ).bind(receptor, ligand)
    scores = combined.score(translations, quaternions)
    lj = LennardJonesScoring().bind(receptor, ligand).score(translations, quaternions)
    hb = HydrogenBondScoring().bind(receptor, ligand).score(translations, quaternions)
    np.testing.assert_allclose(scores, lj + hb, rtol=1e-10)


def test_supports_posed_coords(receptor, ligand, pose_batch):
    translations, quaternions = pose_batch
    scorer = HydrogenBondScoring().bind(receptor, ligand)
    posed = scorer.posed_ligand_coords(translations, quaternions)
    np.testing.assert_allclose(
        scorer.score_coords(posed),
        scorer.score(translations, quaternions),
        rtol=1e-12,
    )
