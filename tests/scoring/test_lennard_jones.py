"""LJ scoring: analytic two-atom checks, reference cross-validation,
property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import MIN_PAIR_DISTANCE
from repro.molecules.forcefield import default_forcefield
from repro.molecules.structures import Ligand, Receptor
from repro.molecules.transforms import identity_quaternion, random_quaternion
from repro.scoring.lennard_jones import (
    LennardJonesScoring,
    lj_energy_from_r2,
    lj_energy_sum_inplace,
)
from repro.scoring.reference import (
    ReferenceLJScoring,
    lj_minimum,
    pairwise_lj,
)


def _two_atom_complex(distance: float):
    receptor = Receptor(coords=np.array([[0.0, 0.0, 0.0]]), elements=["C"])
    ligand = Ligand(coords=np.array([[0.0, 0.0, 0.0]]), elements=["C"])
    t = np.array([[distance, 0.0, 0.0]])
    q = identity_quaternion()[None, :]
    return receptor, ligand, t, q


def test_two_atom_energy_matches_analytic_formula():
    ff = default_forcefield()
    p = ff.mix("C", "C")
    for distance in (2.5, 3.0, 4.0, 6.0, 10.0):
        receptor, ligand, t, q = _two_atom_complex(distance)
        score = LennardJonesScoring().bind(receptor, ligand).score(t, q)[0]
        assert score == pytest.approx(pairwise_lj(distance, p.sigma, p.epsilon), rel=1e-10)


def test_energy_zero_at_sigma():
    ff = default_forcefield()
    p = ff.mix("C", "C")
    receptor, ligand, t, q = _two_atom_complex(p.sigma)
    score = LennardJonesScoring().bind(receptor, ligand).score(t, q)[0]
    assert score == pytest.approx(0.0, abs=1e-9)


def test_minimum_at_r_min_with_depth_epsilon():
    ff = default_forcefield()
    p = ff.mix("C", "C")
    r_min, e_min = lj_minimum(p.sigma, p.epsilon)
    receptor, ligand, t, q = _two_atom_complex(r_min)
    score = LennardJonesScoring().bind(receptor, ligand).score(t, q)[0]
    assert score == pytest.approx(e_min, rel=1e-10)
    # Perturbing in either direction increases the energy.
    for d in (r_min * 0.98, r_min * 1.02):
        _, _, t2, q2 = _two_atom_complex(d)
        assert LennardJonesScoring().bind(receptor, ligand).score(t2, q2)[0] > score


def test_clash_is_clamped_finite():
    receptor, ligand, t, q = _two_atom_complex(0.0)
    score = LennardJonesScoring().bind(receptor, ligand).score(t, q)[0]
    assert np.isfinite(score)
    ff = default_forcefield()
    p = ff.mix("C", "C")
    assert score == pytest.approx(
        pairwise_lj(MIN_PAIR_DISTANCE, p.sigma, p.epsilon), rel=1e-9
    )


def test_dense_matches_pure_python_reference(receptor, ligand, pose_batch):
    translations, quaternions = pose_batch
    dense = LennardJonesScoring().bind(receptor, ligand).score(translations, quaternions)
    reference = ReferenceLJScoring().bind(receptor, ligand).score(
        translations[:3], quaternions[:3]
    )
    np.testing.assert_allclose(dense[:3], reference, rtol=1e-8)


def test_rotation_invariance_of_spherical_ligand():
    """A single-atom ligand's score is orientation independent."""
    receptor = Receptor(
        coords=np.random.default_rng(0).normal(0, 5, (50, 3)), elements=["C"] * 50
    )
    ligand = Ligand(coords=np.zeros((1, 3)), elements=["C"])
    scorer = LennardJonesScoring().bind(receptor, ligand)
    rng = np.random.default_rng(1)
    t = np.tile([8.0, 0.0, 0.0], (20, 1))
    q = random_quaternion(rng, 20)
    scores = scorer.score(t, q)
    np.testing.assert_allclose(scores, scores[0], rtol=1e-10)


def test_energy_additivity_over_receptor_atoms():
    """Score against a 2-atom receptor = sum of scores against each atom."""
    rng = np.random.default_rng(2)
    r1 = Receptor(coords=np.array([[0.0, 0, 0]]), elements=["O"])
    r2 = Receptor(coords=np.array([[3.0, 1, 0]]), elements=["N"])
    both = Receptor(coords=np.vstack([r1.coords, r2.coords]), elements=["O", "N"])
    ligand = Ligand(coords=rng.normal(0, 1, (4, 3)), elements=["C", "C", "O", "H"])
    t = np.array([[6.0, 0.0, 0.0]])
    q = random_quaternion(rng)[None, :]
    s1 = LennardJonesScoring().bind(r1, ligand).score(t, q)[0]
    s2 = LennardJonesScoring().bind(r2, ligand).score(t, q)[0]
    s12 = LennardJonesScoring().bind(both, ligand).score(t, q)[0]
    assert s12 == pytest.approx(s1 + s2, rel=1e-10)


def test_lj_energy_sum_inplace_matches_allocating_version(rng):
    r2 = rng.random((3, 4, 10)) * 20 + 0.5
    sigma = rng.random((4, 10)) + 1.0
    epsilon = rng.random((4, 10)) * 0.3
    expected = lj_energy_from_r2(r2, sigma, epsilon).sum(axis=(1, 2))
    got = lj_energy_sum_inplace(r2.copy(), sigma * sigma, 4.0 * epsilon)
    np.testing.assert_allclose(got, expected, rtol=1e-12)


@settings(max_examples=30, deadline=None)
@given(distance=st.floats(0.1, 30.0))
def test_two_atom_score_is_finite_everywhere(distance):
    receptor, ligand, t, q = _two_atom_complex(distance)
    score = LennardJonesScoring().bind(receptor, ligand).score(t, q)[0]
    assert np.isfinite(score)


@settings(max_examples=20, deadline=None)
@given(distance=st.floats(4.0, 25.0))
def test_energy_monotone_beyond_minimum(distance):
    """Past r_min the LJ curve increases monotonically toward zero."""
    ff = default_forcefield()
    p = ff.mix("C", "C")
    r_min, _ = lj_minimum(p.sigma, p.epsilon)
    if distance <= r_min:
        return
    receptor, ligand, t1, q = _two_atom_complex(distance)
    _, _, t2, _ = _two_atom_complex(distance + 0.5)
    scorer = LennardJonesScoring().bind(receptor, ligand)
    e1 = scorer.score(t1, q)[0]
    e2 = scorer.score(t2, q)[0]
    assert e1 <= e2 <= 0.0
