"""Tests for per-spot receptor pruning (repro.scoring.pruned).

The contract under test: pruning the cutoff scorer is *bitwise* exact, and
pruning the dense scorer stays within the reported tail bound — while the
accounting (`flops_per_pose`, pair stats) keeps the modelled kernel honest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ScoringError
from repro.metaheuristics.evaluation import SerialEvaluator
from repro.scoring.cutoff import CutoffLennardJonesScoring
from repro.scoring.lennard_jones import LennardJonesScoring
from repro.scoring.pruned import (
    BoundSpotPruned,
    SpotPrunedScoring,
    prune_bound,
    spot_prune_indices,
)


def _spot_batch(spots, rng, per_spot=6):
    """In-box poses: each spot contributes ``per_spot`` clipped translations."""
    from repro.molecules.transforms import random_quaternion

    spot_ids, translations = [], []
    for s in spots:
        t = s.center + rng.uniform(-s.radius, s.radius, size=(per_spot, 3))
        translations.append(t)
        spot_ids.extend([s.index] * per_spot)
    translations = np.concatenate(translations)
    quaternions = random_quaternion(rng, translations.shape[0])
    return np.asarray(spot_ids, dtype=np.int64), translations, quaternions


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
def test_pruned_cutoff_is_bitwise_exact(receptor, ligand, spots, rng, dtype):
    plain = CutoffLennardJonesScoring(dtype=dtype).bind(receptor, ligand)
    pruned = prune_bound(CutoffLennardJonesScoring(dtype=dtype).bind(receptor, ligand), spots)
    spot_ids, t, q = _spot_batch(spots, rng)
    expected = plain.score(t, q)
    got = pruned.score_spots(spot_ids, t, q)
    assert got.dtype == expected.dtype
    assert np.array_equal(got, expected)


def test_pruned_cutoff_bitwise_under_permutation(receptor, ligand, spots, rng):
    scorer = prune_bound(
        CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand), spots
    )
    spot_ids, t, q = _spot_batch(spots, rng)
    baseline = scorer.score_spots(spot_ids, t, q)
    perm = rng.permutation(spot_ids.size)
    permuted = scorer.score_spots(spot_ids[perm], t[perm], q[perm])
    assert np.array_equal(permuted, baseline[perm])


def test_pruned_dense_within_reported_bound(receptor, ligand, spots, rng):
    dense = LennardJonesScoring().bind(receptor, ligand)
    pruned = prune_bound(LennardJonesScoring().bind(receptor, ligand), spots)
    spot_ids, t, q = _spot_batch(spots, rng)
    exact = dense.score(t, q)
    approx = pruned.score_spots(spot_ids, t, q)
    for spot in np.unique(spot_ids):
        rows = spot_ids == spot
        err = np.abs(approx[rows] - exact[rows]).max()
        assert err <= pruned.error_bounds[int(spot)] + 1e-12
    # Cutoff mode reports an exact (zero) bound.
    exact_pruned = prune_bound(
        CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand), spots
    )
    assert all(b == 0.0 for b in exact_pruned.error_bounds.values())


def test_pair_stats_and_prune_ratio(receptor, ligand, spots, rng):
    pruned = prune_bound(
        CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand), spots
    )
    assert np.isnan(pruned.prune_ratio)  # nothing evaluated yet
    spot_ids, t, q = _spot_batch(spots, rng)
    pruned.score_spots(spot_ids, t, q)
    n_dense = spot_ids.size * receptor.n_atoms * ligand.n_atoms
    assert pruned.pairs_dense == n_dense
    assert 0 < pruned.pairs_evaluated <= n_dense
    assert pruned.prune_ratio >= 1.0
    pruned.reset_pair_stats()
    assert pruned.pairs_dense == 0 and pruned.pairs_evaluated == 0


def test_flops_per_pose_stays_full_dense(receptor, ligand, spots):
    pruned = prune_bound(
        CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand), spots
    )
    inner = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)
    assert pruned.flops_per_pose == inner.flops_per_pose
    assert pruned.n_pairs == receptor.n_atoms * ligand.n_atoms


def test_out_of_box_poses_fall_back_bitwise(receptor, ligand, spots, rng):
    plain = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)
    pruned = prune_bound(
        CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand), spots
    )
    from repro.molecules.transforms import random_quaternion

    s = spots[0]
    # Far outside the spot's search box: the wrapper must route these through
    # the unpruned inner scorer, bitwise.
    t = s.center + np.array([[s.radius * 50, 0.0, 0.0], [0.0, s.radius * 80, 0.0]])
    q = random_quaternion(rng, 2)
    got = pruned.score_spots(np.full(2, s.index), t, q)
    assert np.array_equal(got, plain.score(t, q))


def test_unknown_spot_id_falls_back(receptor, ligand, spots, rng):
    plain = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)
    pruned = prune_bound(
        CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand), spots
    )
    from repro.molecules.transforms import random_quaternion

    t = spots[0].center + rng.normal(scale=1.0, size=(3, 3))
    q = random_quaternion(rng, 3)
    got = pruned.score_spots(np.full(3, 999_999), t, q)
    assert np.array_equal(got, plain.score(t, q))


def test_plain_score_delegates_to_inner(receptor, ligand, spots, pose_batch):
    plain = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)
    pruned = prune_bound(
        CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand), spots
    )
    t, q = pose_batch
    assert np.array_equal(pruned.score(t, q), plain.score(t, q))


def test_prune_cutoff_below_scoring_cutoff_raises(receptor, ligand, spots):
    inner = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)
    with pytest.raises(ScoringError, match="prune_cutoff"):
        prune_bound(inner, spots, prune_cutoff=inner.cutoff / 2)


def test_unsupported_inner_scorer_raises(receptor, ligand, spots):
    from repro.scoring.coulomb import CoulombScoring

    with pytest.raises(ScoringError, match="spot pruning supports"):
        prune_bound(CoulombScoring().bind(receptor, ligand), spots)


def test_needs_at_least_one_spot(receptor, ligand):
    inner = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)
    with pytest.raises(ScoringError, match="at least one spot"):
        prune_bound(inner, [])


def test_spot_prune_indices_validation(receptor, spots):
    with pytest.raises(ScoringError, match="must be"):
        spot_prune_indices(np.zeros((4, 2)), spots, 5.0)
    with pytest.raises(ScoringError, match="non-negative"):
        spot_prune_indices(receptor.coords, spots, -1.0)


def test_spot_prune_indices_subsets_shrink(receptor, spots):
    tight = spot_prune_indices(receptor.coords, spots, 2.0)
    loose = spot_prune_indices(receptor.coords, spots, 1e6)
    for s in spots:
        assert tight[s.index].size <= loose[s.index].size
        assert loose[s.index].size == receptor.n_atoms
        assert np.all(np.diff(tight[s.index]) > 0)  # sorted, unique


def test_serial_evaluator_dispatches_to_score_spots(receptor, ligand, spots, rng):
    plain = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)
    pruned = prune_bound(
        CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand), spots
    )
    spot_ids, t, q = _spot_batch(spots, rng)
    scores = SerialEvaluator(pruned).evaluate(spot_ids, t, q)
    assert np.array_equal(scores, plain.score(t, q))
    assert pruned.pairs_evaluated < pruned.pairs_dense  # pruning actually ran


def test_spot_pruned_scoring_factory(receptor, ligand, spots, rng):
    bound = SpotPrunedScoring(spots).bind(receptor, ligand)
    assert isinstance(bound, BoundSpotPruned)
    assert bound.mode == "cutoff"
    spot_ids, t, q = _spot_batch(spots, rng, per_spot=2)
    plain = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)
    assert np.array_equal(bound.score_spots(spot_ids, t, q), plain.score(t, q))
