"""Soft-core LJ tests: agreement at range, saturation at clash."""

import numpy as np
import pytest

from repro.errors import ScoringError
from repro.molecules.forcefield import default_forcefield
from repro.molecules.structures import Ligand, Receptor
from repro.molecules.transforms import identity_quaternion
from repro.scoring.lennard_jones import LennardJonesScoring
from repro.scoring.softcore import SoftcoreLJScoring


def _pair(distance: float):
    receptor = Receptor(coords=np.array([[0.0, 0.0, 0.0]]), elements=["C"])
    ligand = Ligand(coords=np.array([[0.0, 0.0, 0.0]]), elements=["C"])
    t = np.array([[distance, 0.0, 0.0]])
    q = identity_quaternion()[None, :]
    return receptor, ligand, t, q


def test_matches_plain_lj_at_long_range():
    """Relative deviation is ασ⁶/r⁶ — about 0.4 % at 8 Å with α = 0.5."""
    receptor, ligand, t, q = _pair(8.0)
    soft = SoftcoreLJScoring(alpha=0.5).bind(receptor, ligand).score(t, q)[0]
    hard = LennardJonesScoring().bind(receptor, ligand).score(t, q)[0]
    assert soft == pytest.approx(hard, rel=1e-2)
    # And the deviation shrinks with distance as predicted.
    _, _, t12, _ = _pair(12.0)
    soft12 = SoftcoreLJScoring(alpha=0.5).bind(receptor, ligand).score(t12, q)[0]
    hard12 = LennardJonesScoring().bind(receptor, ligand).score(t12, q)[0]
    assert abs(soft12 / hard12 - 1) < abs(soft / hard - 1)


def test_saturates_at_zero_distance():
    receptor, ligand, _, q = _pair(0.0)
    t = np.zeros((1, 3))
    alpha = 0.5
    p = default_forcefield().mix("C", "C")
    expected_cap = 4.0 * p.epsilon * (1.0 / alpha**2 - 1.0 / alpha)
    score = SoftcoreLJScoring(alpha=alpha).bind(receptor, ligand).score(t, q)[0]
    assert score == pytest.approx(expected_cap, rel=1e-9)


def test_clash_much_milder_than_hard_lj():
    receptor, ligand, t, q = _pair(0.5)
    soft = SoftcoreLJScoring().bind(receptor, ligand).score(t, q)[0]
    hard = LennardJonesScoring().bind(receptor, ligand).score(t, q)[0]
    assert soft < hard / 1e3  # hard wall is astronomically larger


def test_preserves_minimum_location_approximately():
    receptor, ligand, _, q = _pair(0.0)
    soft = SoftcoreLJScoring(alpha=0.2).bind(receptor, ligand)
    hard = LennardJonesScoring().bind(receptor, ligand)
    rs = np.linspace(3.0, 6.0, 200)
    t = np.zeros((200, 3))
    t[:, 0] = rs
    qs = np.tile(q, (200, 1))
    soft_min = rs[np.argmin(soft.score(t, qs))]
    hard_min = rs[np.argmin(hard.score(t, qs))]
    assert soft_min == pytest.approx(hard_min, abs=0.15)


def test_alpha_validation(receptor, ligand):
    with pytest.raises(ScoringError):
        SoftcoreLJScoring(alpha=0.0).bind(receptor, ligand)


def test_full_complex_is_finite(receptor, ligand, pose_batch):
    translations, quaternions = pose_batch
    scores = SoftcoreLJScoring().bind(receptor, ligand).score(translations, quaternions)
    assert np.all(np.isfinite(scores))
