"""Tiled scorer: exact equivalence with dense, tile statistics."""

import numpy as np
import pytest

from repro.errors import ScoringError
from repro.scoring.lennard_jones import LennardJonesScoring
from repro.scoring.tiled import TiledLennardJonesScoring


@pytest.mark.parametrize("tile", [1, 7, 64, 128, 1000])
def test_tiled_matches_dense_for_any_tile_size(receptor, ligand, pose_batch, tile):
    translations, quaternions = pose_batch
    dense = LennardJonesScoring().bind(receptor, ligand).score(translations, quaternions)
    tiled = TiledLennardJonesScoring(tile=tile).bind(receptor, ligand).score(
        translations, quaternions
    )
    np.testing.assert_allclose(tiled, dense, rtol=1e-9)


def test_tile_statistics(receptor, ligand):
    bound = TiledLennardJonesScoring(tile=128).bind(receptor, ligand)
    assert bound.n_tiles == -(-receptor.n_atoms // 128)
    assert bound.shared_bytes_per_tile == 128 * 5 * 4
    # The default tile fits comfortably in 16 KB shared memory.
    assert bound.shared_bytes_per_tile < 16 * 1024


def test_invalid_tile_rejected(receptor, ligand):
    with pytest.raises(ScoringError):
        TiledLennardJonesScoring(tile=0).bind(receptor, ligand)


def test_flops_match_dense(receptor, ligand):
    tiled = TiledLennardJonesScoring().bind(receptor, ligand)
    dense = LennardJonesScoring().bind(receptor, ligand)
    assert tiled.flops_per_pose == dense.flops_per_pose
