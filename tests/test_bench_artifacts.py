"""Schema tests for the shared BENCH_*.json benchmark artifact writer.

Mirrors the ``TRACE_FORMAT_VERSION`` discipline: every artifact carries a
format version and a uniform envelope, and the loader rejects anything it
cannot faithfully interpret.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from table_utils import (  # noqa: E402
    BENCH_ARTIFACT_DIR_ENV,
    BENCH_FORMAT_VERSION,
    BENCH_REQUIRED_KEYS,
    bench_artifact,
    bench_slug,
    load_bench_artifact,
    validate_bench_artifact,
    write_bench_artifact,
)

from repro.errors import ExperimentError  # noqa: E402


def test_slug_is_filesystem_safe():
    assert bench_slug("Host runtime — smoke (2 workers)") == "host_runtime_smoke_2_workers"
    assert bench_slug("already_fine") == "already_fine"
    with pytest.raises(ExperimentError, match="slug"):
        bench_slug("———")


def test_envelope_has_version_and_required_keys():
    doc = bench_artifact("my-bench", {"cases": [1, 2]})
    assert doc["format_version"] == BENCH_FORMAT_VERSION
    for key in BENCH_REQUIRED_KEYS:
        assert key in doc
    assert doc["benchmark"] == "my_bench"
    assert doc["data"] == {"cases": [1, 2]}
    assert doc["host"]["cpu_count"] >= 1


def test_data_must_be_a_dict():
    with pytest.raises(ExperimentError, match="must be a dict"):
        bench_artifact("b", [1, 2])


def test_round_trip_through_the_shared_writer(tmp_path):
    path = tmp_path / "BENCH_x.json"
    written = write_bench_artifact("x", {"value": 3.5}, path=path)
    assert written == path
    doc = load_bench_artifact(path)
    assert doc["benchmark"] == "x"
    assert doc["data"] == {"value": 3.5}


def test_default_path_honours_artifact_dir_env(tmp_path, monkeypatch):
    monkeypatch.setenv(BENCH_ARTIFACT_DIR_ENV, str(tmp_path / "out"))
    path = write_bench_artifact("Env Bench", {"k": 1})
    assert path == tmp_path / "out" / "BENCH_env_bench.json"
    assert load_bench_artifact(path)["data"] == {"k": 1}


def test_validate_rejects_wrong_version():
    doc = bench_artifact("b", {})
    doc["format_version"] = BENCH_FORMAT_VERSION + 1
    with pytest.raises(ExperimentError, match="format version"):
        validate_bench_artifact(doc)


@pytest.mark.parametrize("missing", BENCH_REQUIRED_KEYS)
def test_validate_rejects_missing_keys(missing):
    doc = bench_artifact("b", {})
    del doc[missing]
    if missing == "format_version":
        with pytest.raises(ExperimentError, match="format version"):
            validate_bench_artifact(doc)
    else:
        with pytest.raises(ExperimentError, match=missing):
            validate_bench_artifact(doc)


def test_validate_rejects_malformed_fields():
    with pytest.raises(ExperimentError, match="JSON object"):
        validate_bench_artifact([1])
    doc = bench_artifact("b", {})
    doc["benchmark"] = ""
    with pytest.raises(ExperimentError, match="non-empty"):
        validate_bench_artifact(doc)
    doc = bench_artifact("b", {})
    doc["data"] = [1]
    with pytest.raises(ExperimentError, match="object"):
        validate_bench_artifact(doc)


def test_load_rejects_missing_and_corrupt_files(tmp_path):
    with pytest.raises(ExperimentError, match="cannot read"):
        load_bench_artifact(tmp_path / "nope.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    with pytest.raises(ExperimentError, match="invalid BENCH artifact JSON"):
        load_bench_artifact(bad)


def test_emit_writes_an_artifact(tmp_path, monkeypatch, capsys):
    """The conftest ``emit`` banner doubles as the artifact writer."""
    import conftest as bench_conftest

    monkeypatch.setenv(BENCH_ARTIFACT_DIR_ENV, str(tmp_path))
    bench_conftest.emit("My Table", "body text", data={"rows": [1]})
    assert "My Table" in capsys.readouterr().out
    doc = load_bench_artifact(tmp_path / "BENCH_my_table.json")
    assert doc["data"]["title"] == "My Table"
    assert doc["data"]["report"] == "body text"
    assert doc["data"]["rows"] == [1]
