"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["dock", "--spots", "3"])
    assert args.command == "dock"
    assert args.spots == 3
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_devices_command(capsys):
    assert main(["devices"]) == 0
    out = capsys.readouterr().out
    assert "Kepler" in out
    assert "Tesla K40c" in out
    assert "Xeon E5-2620" in out


def test_dock_command(capsys, tmp_path):
    out_pdb = tmp_path / "complex.pdb"
    code = main(
        [
            "dock",
            "--receptor-atoms", "200",
            "--ligand-atoms", "12",
            "--spots", "2",
            "--scale", "0.05",
            "--out-pdb", str(out_pdb),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "best score" in out
    assert out_pdb.exists()


def test_screen_command(capsys):
    code = main(
        [
            "screen",
            "--receptor-atoms", "200",
            "--ligands", "2",
            "--spots", "2",
            "--scale", "0.05",
        ]
    )
    assert code == 0
    assert "Screening report" in capsys.readouterr().out


def test_tables_command_single(capsys):
    code = main(["tables", "--table", "8", "--scale", "0.02"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Paper Table 8" in out
    assert "Hertz" in out


def test_dock_flexible_flag(capsys):
    code = main(
        [
            "dock",
            "--receptor-atoms", "200",
            "--ligand-atoms", "12",
            "--spots", "2",
            "--flexible",
            "--max-torsions", "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "flexible best score" in out
    assert "torsions" in out


def test_trace_and_replay_commands(capsys, tmp_path):
    trace_path = tmp_path / "m3.json"
    code = main(
        ["trace", "--preset", "M3", "--dataset", "2BSM",
         "--scale", "0.1", "--out", str(trace_path)]
    )
    assert code == 0
    assert trace_path.exists()
    assert "launches" in capsys.readouterr().out

    code = main(
        ["replay", "--trace", str(trace_path), "--node", "jupiter",
         "--mode", "gpu-dynamic"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "gpu-dynamic on jupiter" in out
    assert "balance" in out


def test_screen_with_live_metrics_writes_series(capsys, tmp_path):
    series = tmp_path / "screen.live.jsonl"
    code = main(
        [
            "screen",
            "--receptor-atoms", "150",
            "--ligands", "2",
            "--spots", "2",
            "--scale", "0.05",
            "--live-metrics", str(series),
            "--sample-interval", "0.05",
        ]
    )
    assert code == 0
    assert "wrote live metrics series" in capsys.readouterr().out
    from repro.observability import read_series

    records = read_series(series)
    assert records and records[-1]["reason"] == "final"


def test_sample_interval_must_be_positive(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["screen", "--live-metrics", "x.jsonl", "--sample-interval", "0"])
    assert excinfo.value.code == 2
    assert "must be > 0" in capsys.readouterr().err


def test_metrics_show_and_legacy_shim(capsys, tmp_path):
    snap = tmp_path / "snap.json"
    assert main([
        "screen", "--receptor-atoms", "150", "--ligands", "2",
        "--spots", "2", "--scale", "0.05", "--metrics-out", str(snap),
    ]) == 0
    capsys.readouterr()

    assert main(["metrics", "show", str(snap)]) == 0
    shown = capsys.readouterr().out
    assert "counters:" in shown

    # Pre-split invocations still work: `metrics SNAPSHOT` means `show`.
    assert main(["metrics", str(snap)]) == 0
    assert capsys.readouterr().out == shown

    trace_out = tmp_path / "trace.json"
    assert main([
        "metrics", "show", str(snap), "--format", "trace",
        "--out", str(trace_out),
    ]) == 0
    import json

    doc = json.loads(trace_out.read_text())
    assert doc["displayTimeUnit"] == "ms"
    assert any(e["ph"] == "X" for e in doc["traceEvents"])


def test_metrics_serve_command_scrapes_snapshot_file(capsys, tmp_path):
    import json
    import threading
    import urllib.request

    snap = tmp_path / "snap.json"
    assert main([
        "screen", "--receptor-atoms", "150", "--ligands", "2",
        "--spots", "2", "--scale", "0.05", "--metrics-out", str(snap),
    ]) == 0
    capsys.readouterr()

    scraped = {}

    def serve():
        scraped["rc"] = main([
            "metrics", "serve", str(snap), "--port", "0",
            "--for-seconds", "1.5",
        ])

    thread = threading.Thread(target=serve)
    thread.start()
    try:
        import re
        import time

        url = None
        for _ in range(50):
            time.sleep(0.05)
            match = re.search(r"http://[\d.:]+", capsys.readouterr().out)
            if match:
                url = match.group(0)
                break
        assert url, "serve never printed its URL"
        with urllib.request.urlopen(url + "/metrics", timeout=5) as response:
            body = response.read().decode("utf-8")
        assert "repro_" in body
        with urllib.request.urlopen(url + "/healthz", timeout=5) as response:
            health = json.loads(response.read().decode("utf-8"))
        assert health["status"] == "ok" and health["snapshot"] == str(snap)
    finally:
        thread.join(timeout=10)
    assert scraped["rc"] == 0


def test_bench_compare_gate(capsys, tmp_path):
    import json

    def write(dirname, run_seconds):
        d = tmp_path / dirname
        d.mkdir()
        (d / "BENCH_gate.json").write_text(json.dumps({
            "format_version": 1,
            "benchmark": "gate",
            "host": {},
            "data": {"run_seconds": run_seconds},
        }))
        return str(d)

    base = write("base", 1.0)
    same = write("same", 1.0)
    slow = write("slow", 2.0)

    assert main(["bench", "compare", base, same]) == 0
    out = capsys.readouterr().out
    assert "0 regressed" in out

    assert main(["bench", "compare", base, slow, "--threshold", "25"]) == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out and "+100.0%" in out

    assert main([
        "bench", "compare", base, slow, "--threshold", "25", "--report-only",
    ]) == 0
    assert "report-only" in capsys.readouterr().out

    assert main(["bench", "compare", base, str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().err
