"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["dock", "--spots", "3"])
    assert args.command == "dock"
    assert args.spots == 3
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_devices_command(capsys):
    assert main(["devices"]) == 0
    out = capsys.readouterr().out
    assert "Kepler" in out
    assert "Tesla K40c" in out
    assert "Xeon E5-2620" in out


def test_dock_command(capsys, tmp_path):
    out_pdb = tmp_path / "complex.pdb"
    code = main(
        [
            "dock",
            "--receptor-atoms", "200",
            "--ligand-atoms", "12",
            "--spots", "2",
            "--scale", "0.05",
            "--out-pdb", str(out_pdb),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "best score" in out
    assert out_pdb.exists()


def test_screen_command(capsys):
    code = main(
        [
            "screen",
            "--receptor-atoms", "200",
            "--ligands", "2",
            "--spots", "2",
            "--scale", "0.05",
        ]
    )
    assert code == 0
    assert "Screening report" in capsys.readouterr().out


def test_tables_command_single(capsys):
    code = main(["tables", "--table", "8", "--scale", "0.02"])
    assert code == 0
    out = capsys.readouterr().out
    assert "Paper Table 8" in out
    assert "Hertz" in out


def test_dock_flexible_flag(capsys):
    code = main(
        [
            "dock",
            "--receptor-atoms", "200",
            "--ligand-atoms", "12",
            "--spots", "2",
            "--flexible",
            "--max-torsions", "3",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "flexible best score" in out
    assert "torsions" in out


def test_trace_and_replay_commands(capsys, tmp_path):
    trace_path = tmp_path / "m3.json"
    code = main(
        ["trace", "--preset", "M3", "--dataset", "2BSM",
         "--scale", "0.1", "--out", str(trace_path)]
    )
    assert code == 0
    assert trace_path.exists()
    assert "launches" in capsys.readouterr().out

    code = main(
        ["replay", "--trace", str(trace_path), "--node", "jupiter",
         "--mode", "gpu-dynamic"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "gpu-dynamic on jupiter" in out
    assert "balance" in out
