"""Documentation tests: every Python snippet in docs/ and README must run.

Extracts fenced ``python`` blocks and executes them in one shared namespace
per document (tutorial snippets build on each other). Keeps the docs honest.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks(path: Path) -> list[str]:
    return _BLOCK.findall(path.read_text(encoding="utf-8"))


def _run_blocks(path: Path) -> int:
    namespace: dict = {}
    blocks = _python_blocks(path)
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"{path.name}[block {i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - the assertion is the point
            pytest.fail(f"{path.name} block {i} failed: {exc!r}\n{block}")
    return len(blocks)


def test_tutorial_snippets_run():
    n = _run_blocks(ROOT / "docs" / "tutorial.md")
    assert n >= 6  # the tutorial is supposed to be substantial


def test_readme_snippets_run():
    n = _run_blocks(ROOT / "README.md")
    assert n >= 1


def test_docs_exist_and_are_nontrivial():
    for name in ("calibration.md", "architecture.md", "tutorial.md"):
        path = ROOT / "docs" / name
        assert path.exists(), name
        assert len(path.read_text()) > 2000, f"{name} looks stubbed"
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        assert (ROOT / name).exists()
