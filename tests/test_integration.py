"""End-to-end integration tests across all subsystems."""

import numpy as np
import pytest

from repro.engine.executor import MultiGpuExecutor
from repro.hardware.node import custom_node, hertz, jupiter
from repro.metaheuristics.presets import make_preset, preset_names
from repro.molecules.pdb import dumps_pdb, loads_pdb
from repro.molecules.spots import find_spots
from repro.molecules.synthetic import generate_ligand, generate_receptor
from repro.scoring.cutoff import CutoffLennardJonesScoring
from repro.vs.docking import dock
from repro.vs.pipeline import PipelineConfig, VirtualScreeningPipeline


def test_full_stack_pdb_roundtrip_then_dock():
    """Generate → serialise → parse → dock: the I/O and compute paths
    compose."""
    receptor = loads_pdb(dumps_pdb(generate_receptor(250, seed=1)), kind="receptor")
    ligand = loads_pdb(dumps_pdb(generate_ligand(14, seed=2)), kind="ligand")
    result = dock(receptor, ligand, n_spots=3, metaheuristic="M1", workload_scale=0.05)
    assert result.best_score < 0


@pytest.mark.parametrize("preset", preset_names())
def test_every_preset_runs_on_every_mode(preset, receptor, ligand, spots):
    scorer = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)
    executor = MultiGpuExecutor(hertz(), seed=4)
    spec = make_preset(preset, workload_scale=0.03)
    report = executor.run(spec, spots, scorer, "gpu-heterogeneous", search_seed=6)
    assert report.simulated_seconds > 0
    assert report.result.best.score < 0


def test_custom_node_end_to_end():
    """The future-work scenario: a user models their own K20 cluster node."""
    node = custom_node("lab", "Xeon E3-1220", 2, ["Tesla K20", "Tesla K20X"])
    pipe = VirtualScreeningPipeline(
        node=node,
        config=PipelineConfig(n_spots=2, metaheuristic="M1", workload_scale=0.05),
    )
    receptor = generate_receptor(220, seed=3)
    ligand = generate_ligand(12, seed=4)
    result = pipe.dock(receptor, ligand)
    assert result.simulated_seconds > 0


def test_better_metaheuristic_budget_finds_better_poses(receptor, ligand, spots):
    """More search effort must not hurt the best score (elitist presets)."""
    cheap = dock(
        receptor, ligand, spots=spots, metaheuristic="M2",
        workload_scale=0.03, seed=11,
    )
    rich = dock(
        receptor, ligand, spots=spots, metaheuristic="M2",
        workload_scale=0.3, seed=11,
    )
    assert rich.best_score <= cheap.best_score + 1e-9


def test_docked_pose_is_physically_sane(receptor, ligand, spots):
    """The best pose should sit near the receptor surface, not inside the
    core and not in deep solvent, with no hard clash."""
    result = dock(
        receptor, ligand, spots=spots, metaheuristic="M2",
        workload_scale=0.2, seed=13,
    )
    placed = result.docked_ligand()
    # No catastrophic clash: a finite, clearly negative LJ score.
    assert -1e4 < result.best_score < -5.0
    # Ligand centroid within the receptor's bounding sphere + search slack.
    dist = np.linalg.norm(placed.coords.mean(axis=0) - receptor.centroid())
    assert dist < receptor.max_radius() + 10.0
    # Minimum heavy-atom contact distance is in the vdW-contact range.
    d = np.linalg.norm(
        receptor.coords[None, :, :] - placed.coords[:, None, :], axis=-1
    )
    assert 1.0 < d.min() < 6.0


def test_jupiter_vs_hertz_cpu_ratio_matches_model(receptor, ligand, spots):
    """12 cores @2 GHz (×76 Mpairs) vs 4 cores @3.1 GHz (×68.5 Mpairs):
    Jupiter's CPU path should be ≈2.2× faster."""
    scorer = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)
    spec = make_preset("M1", workload_scale=0.05)
    t_jup = (
        MultiGpuExecutor(jupiter()).run(spec, spots, scorer, "openmp", search_seed=1)
    ).timing.scoring_s
    t_her = (
        MultiGpuExecutor(hertz()).run(spec, spots, scorer, "openmp", search_seed=1)
    ).timing.scoring_s
    expected = (12 * 2.0 * 76.06) / (4 * 3.1 * 68.5)
    assert t_her / t_jup == pytest.approx(expected, rel=0.05)


def test_spot_independence_under_different_spot_counts(receptor, ligand):
    """Adding more spots never worsens the best overall score for the same
    per-spot seeds (spots are independent searches)."""
    spots8 = find_spots(receptor, 8)
    spots4 = spots8[:4]
    a = dock(receptor, ligand, spots=spots4, metaheuristic="M1", workload_scale=0.05, seed=2)
    b = dock(receptor, ligand, spots=spots8, metaheuristic="M1", workload_scale=0.05, seed=2)
    assert b.best_score <= a.best_score + 1e-9
    # The shared spots give identical per-spot results.
    np.testing.assert_allclose(
        [c.score for c in a.per_spot],
        [c.score for c in b.per_spot[:4]],
        rtol=1e-7,
    )
