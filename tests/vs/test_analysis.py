"""Pose-analysis tests."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.metaheuristics.individual import Conformation
from repro.vs.analysis import (
    cluster_poses,
    convergence_statistics,
    pairwise_rmsd_matrix,
    pose_rmsd,
)


def _conf(t, q=(1.0, 0, 0, 0), score=0.0, spot=0):
    return Conformation(
        spot_index=spot,
        translation=np.asarray(t, dtype=float),
        quaternion=np.asarray(q, dtype=float),
        score=score,
    )


def test_rmsd_of_identical_poses_is_zero(ligand):
    a = _conf([1.0, 2.0, 3.0])
    assert pose_rmsd(ligand, a, a) == pytest.approx(0.0)


def test_rmsd_of_pure_translation(ligand):
    a = _conf([0.0, 0.0, 0.0])
    b = _conf([3.0, 4.0, 0.0])
    assert pose_rmsd(ligand, a, b) == pytest.approx(5.0)


def test_rmsd_symmetry(ligand, rng):
    from repro.molecules.transforms import random_quaternion

    a = _conf(rng.normal(size=3), random_quaternion(rng))
    b = _conf(rng.normal(size=3), random_quaternion(rng))
    assert pose_rmsd(ligand, a, b) == pytest.approx(pose_rmsd(ligand, b, a))


def test_rotation_changes_rmsd_but_not_centroid(ligand):
    from repro.molecules.transforms import quaternion_from_axis_angle

    a = _conf([0.0, 0.0, 0.0])
    b = _conf([0.0, 0.0, 0.0], quaternion_from_axis_angle(np.array([0, 0, 1.0]), 1.5))
    assert pose_rmsd(ligand, a, b) > 0.5


def test_pairwise_matrix_properties(ligand):
    poses = [_conf([0, 0, 0]), _conf([2, 0, 0]), _conf([0, 5, 0])]
    m = pairwise_rmsd_matrix(ligand, poses)
    assert m.shape == (3, 3)
    np.testing.assert_allclose(np.diag(m), 0.0, atol=1e-12)
    np.testing.assert_allclose(m, m.T)
    assert m[0, 1] == pytest.approx(2.0)
    with pytest.raises(ReproError):
        pairwise_rmsd_matrix(ligand, [])


def test_clustering_groups_nearby_poses(ligand):
    poses = [
        _conf([0.0, 0, 0], score=-10.0),
        _conf([0.5, 0, 0], score=-8.0),  # within 2 Å of the first
        _conf([20.0, 0, 0], score=-9.0),  # far away
    ]
    clusters = cluster_poses(ligand, poses, rmsd_cutoff=2.0)
    assert len(clusters) == 2
    # Best-first: first cluster is represented by the -10 pose.
    assert clusters[0].representative.score == -10.0
    assert clusters[0].size == 2
    assert clusters[1].size == 1


def test_clustering_validation(ligand):
    with pytest.raises(ReproError):
        cluster_poses(ligand, [], rmsd_cutoff=2.0)
    with pytest.raises(ReproError):
        cluster_poses(ligand, [_conf([0, 0, 0])], rmsd_cutoff=0.0)


def test_clustering_singletons_when_cutoff_tiny(ligand):
    poses = [_conf([i * 3.0, 0, 0], score=float(-i)) for i in range(4)]
    clusters = cluster_poses(ligand, poses, rmsd_cutoff=0.1)
    assert len(clusters) == 4
    assert all(c.size == 1 for c in clusters)


def test_convergence_statistics():
    stats = convergence_statistics([0.0, -5.0, -9.0, -10.0, -10.0, -10.0])
    assert stats["initial"] == 0.0
    assert stats["final"] == -10.0
    assert stats["improvement"] == 10.0
    assert stats["iterations_to_90pct"] == 2.0  # -9.0 hits the 90% mark
    assert stats["stagnant_tail"] == 2.0


def test_convergence_statistics_flat_history():
    stats = convergence_statistics([-1.0, -1.0])
    assert stats["improvement"] == 0.0
    assert stats["iterations_to_90pct"] == 0.0
    with pytest.raises(ReproError):
        convergence_statistics([])
