"""Docking API tests."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.hardware.node import hertz
from repro.metaheuristics.presets import make_preset
from repro.molecules.pdb import loads_pdb
from repro.vs.docking import dock


@pytest.fixture(scope="module")
def docked(request):
    receptor = request.getfixturevalue("receptor")
    ligand = request.getfixturevalue("ligand")
    return dock(
        receptor,
        ligand,
        n_spots=4,
        metaheuristic="M2",
        seed=3,
        workload_scale=0.1,
        node=hertz(),
    )


def test_dock_finds_binding_pose(docked):
    assert docked.best_score < -5.0
    assert docked.metaheuristic == "M2"
    assert docked.evaluations > 0
    assert len(docked.per_spot) == 4


def test_dock_best_is_min_over_spots(docked):
    assert docked.best_score == pytest.approx(
        min(c.score for c in docked.per_spot)
    )


def test_dock_simulated_seconds_present(docked):
    assert np.isfinite(docked.simulated_seconds)
    assert docked.simulated_seconds > 0


def test_dock_without_node_has_nan_seconds(receptor, ligand):
    result = dock(receptor, ligand, n_spots=2, metaheuristic="M1", workload_scale=0.05)
    assert np.isnan(result.simulated_seconds)


def test_dock_with_custom_spec(receptor, ligand):
    spec = make_preset("M1", workload_scale=0.05)
    result = dock(receptor, ligand, n_spots=2, metaheuristic=spec)
    assert result.metaheuristic == "M1"


def test_dock_with_precomputed_spots(receptor, ligand, spots):
    result = dock(receptor, ligand, spots=spots, metaheuristic="M1", workload_scale=0.05)
    assert len(result.per_spot) == len(spots)


def test_dock_empty_spots_rejected(receptor, ligand):
    with pytest.raises(ReproError):
        dock(receptor, ligand, spots=[])


def test_dock_is_deterministic(receptor, ligand, spots):
    a = dock(receptor, ligand, spots=spots, metaheuristic="M1", seed=7, workload_scale=0.05)
    b = dock(receptor, ligand, spots=spots, metaheuristic="M1", seed=7, workload_scale=0.05)
    assert a.best_score == b.best_score


def test_docked_ligand_geometry(docked):
    placed = docked.docked_ligand()
    assert placed.n_atoms == docked.ligand.n_atoms
    np.testing.assert_allclose(
        placed.coords.mean(axis=0), docked.best.translation, atol=1e-6
    )
    # Rigid-body: internal distances preserved.
    orig = docked.ligand.coords - docked.ligand.coords.mean(axis=0)
    d0 = np.linalg.norm(orig[:, None] - orig[None, :], axis=-1)
    d1 = np.linalg.norm(
        placed.coords[:, None] - placed.coords[None, :], axis=-1
    )
    np.testing.assert_allclose(d0, d1, atol=1e-6)


def test_complex_molecule_merges(docked):
    complex_mol = docked.complex_molecule()
    assert complex_mol.n_atoms == docked.receptor.n_atoms + docked.ligand.n_atoms
    # Writable as PDB (Figure 1 artifact).
    from repro.molecules.pdb import dumps_pdb

    text = dumps_pdb(complex_mol)
    back = loads_pdb(text)
    assert back.n_atoms == complex_mol.n_atoms


def test_hot_spots_ranking(docked):
    hot = docked.hot_spots(2)
    assert len(hot) == 2
    assert hot[0].score <= hot[1].score
    assert hot[0].score == docked.best_score
    with pytest.raises(ReproError):
        docked.hot_spots(0)


def test_spot_scores_array(docked):
    scores = docked.spot_scores()
    assert scores.shape == (4,)
    assert scores.min() == pytest.approx(docked.best_score)
