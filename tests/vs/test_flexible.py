"""Flexible-docking extension tests."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.molecules.flexibility import FlexibleLigand
from repro.vs.flexible import dock_flexible


@pytest.fixture(scope="module")
def flexible_result(request):
    receptor = request.getfixturevalue("receptor")
    ligand = request.getfixturevalue("ligand")
    return dock_flexible(
        receptor,
        ligand,
        n_spots=3,
        walkers_per_spot=4,
        steps=12,
        seed=2,
    )


def test_flexible_docking_finds_binding(flexible_result):
    assert flexible_result.best_score < -5.0
    assert flexible_result.evaluations > 0
    assert len(flexible_result.per_spot) == 3


def test_best_is_min_over_spots(flexible_result):
    assert flexible_result.best_score == min(
        p.score for p in flexible_result.per_spot
    )


def test_poses_carry_torsions(flexible_result, ligand):
    flex = FlexibleLigand(ligand, max_torsions=6)
    assert flexible_result.n_torsions == flex.n_torsions
    for pose in flexible_result.per_spot:
        assert pose.torsions.shape == (flexible_result.n_torsions,)
        assert np.all(np.isfinite(pose.torsions))


def test_zero_torsions_match_rigid_scoring(receptor, ligand):
    """With torsions frozen at zero the conformer equals the rigid ligand,
    so the flexible scorer must agree with the rigid one pose by pose."""
    import numpy as np

    from repro.molecules.transforms import random_quaternion
    from repro.scoring.cutoff import CutoffLennardJonesScoring
    from repro.vs.flexible import _score_flexible

    scorer = CutoffLennardJonesScoring(dtype=np.float32).bind(receptor, ligand)
    flex = FlexibleLigand(ligand, max_torsions=4)
    rng = np.random.default_rng(3)
    t = rng.normal(0, 8, (6, 3))
    q = random_quaternion(rng, 6)
    zero_torsions = np.zeros((6, flex.n_torsions))
    flexible_scores = _score_flexible(scorer, flex, t, q, zero_torsions)
    rigid_scores = scorer.score(t, q)
    np.testing.assert_allclose(flexible_scores, rigid_scores, rtol=1e-4)


def test_frozen_torsion_run_comparable_to_flexible(receptor, ligand):
    """Quality sanity: both searches land in the binding-well regime (the
    extra dimensions neither break the optimiser nor explode the score)."""
    frozen = dock_flexible(
        receptor, ligand, n_spots=2, max_torsions=0,
        walkers_per_spot=6, steps=20, seed=4,
    )
    flexible = dock_flexible(
        receptor, ligand, n_spots=2, max_torsions=6,
        walkers_per_spot=6, steps=20, seed=4,
    )
    assert frozen.best_score < -5.0
    assert flexible.best_score < -5.0


def test_determinism(receptor, ligand):
    a = dock_flexible(receptor, ligand, n_spots=2, walkers_per_spot=3, steps=6, seed=9)
    b = dock_flexible(receptor, ligand, n_spots=2, walkers_per_spot=3, steps=6, seed=9)
    assert a.best_score == b.best_score


def test_validation(receptor, ligand):
    with pytest.raises(ReproError):
        dock_flexible(receptor, ligand, walkers_per_spot=0)
    with pytest.raises(ReproError):
        dock_flexible(receptor, ligand, spots=[])
