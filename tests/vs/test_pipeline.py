"""Pipeline facade tests."""

import pytest

from repro.engine.executor import EXECUTION_MODES
from repro.errors import ReproError
from repro.hardware.node import jupiter
from repro.vs.pipeline import PipelineConfig, VirtualScreeningPipeline
from repro.vs.screening import synthetic_library


@pytest.fixture(scope="module")
def pipe():
    return VirtualScreeningPipeline(
        config=PipelineConfig(n_spots=3, metaheuristic="M1", workload_scale=0.05, seed=2)
    )


def test_default_node_is_hertz(pipe):
    assert pipe.node.name == "hertz"


def test_config_validation():
    with pytest.raises(ReproError):
        PipelineConfig(n_spots=0)
    with pytest.raises(ReproError):
        PipelineConfig(mode="warp-drive")


def test_pipeline_dock(pipe, receptor, ligand):
    result = pipe.dock(receptor, ligand)
    assert result.best_score < 0
    assert result.simulated_seconds > 0


def test_pipeline_screen(pipe, receptor):
    report = pipe.screen(receptor, synthetic_library(2, atoms_range=(8, 12), seed=9))
    assert len(report.entries) == 2


def test_pipeline_spec_resolution(pipe):
    spec = pipe.spec()
    assert spec.name == "M1"


def test_compare_modes_covers_all(pipe, receptor, ligand):
    reports = pipe.compare_modes(receptor, ligand)
    assert set(reports) == set(EXECUTION_MODES)
    # Identical search outcome in every mode.
    assert len({r.result.best.score for r in reports.values()}) == 1
    # openmp slowest at this (tiny) workload is not guaranteed, but all
    # timings must be positive.
    assert all(r.simulated_seconds > 0 for r in reports.values())


def test_pipeline_with_jupiter(receptor, ligand):
    pipe = VirtualScreeningPipeline(
        node=jupiter(),
        config=PipelineConfig(n_spots=2, metaheuristic="M1", workload_scale=0.05),
    )
    result = pipe.dock(receptor, ligand)
    assert result.simulated_seconds > 0
