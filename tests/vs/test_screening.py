"""Library-screening tests."""

import math

import pytest

from repro.errors import ReproError
from repro.hardware.node import hertz
from repro.molecules.synthetic import generate_ligand
from repro.vs.results import ScreeningReport
from repro.vs.screening import screen, synthetic_library


def test_synthetic_library_properties():
    lib = synthetic_library(6, atoms_range=(10, 20), seed=1)
    assert len(lib) == 6
    assert all(10 <= lig.n_atoms <= 20 for lig in lib)
    assert len({lig.title for lig in lib}) == 6  # unique names
    # Deterministic.
    again = synthetic_library(6, atoms_range=(10, 20), seed=1)
    assert [l.n_atoms for l in lib] == [l.n_atoms for l in again]


def test_synthetic_library_validation():
    with pytest.raises(ReproError):
        synthetic_library(0)
    with pytest.raises(ReproError):
        synthetic_library(3, atoms_range=(20, 10))


def test_screen_ranks_all_ligands(receptor):
    lib = synthetic_library(4, atoms_range=(8, 16), seed=2)
    report = screen(
        receptor, lib, n_spots=3, metaheuristic="M1", workload_scale=0.05, seed=5
    )
    assert len(report.entries) == 4
    ranked = report.ranked()
    scores = [e.best_score for e in ranked]
    assert scores == sorted(scores)
    assert report.top(2)[0].best_score == scores[0]


def test_screen_with_node_accumulates_time(receptor):
    lib = synthetic_library(2, atoms_range=(8, 12), seed=3)
    report = screen(
        receptor,
        lib,
        n_spots=2,
        metaheuristic="M1",
        workload_scale=0.05,
        node=hertz(),
    )
    assert report.simulated_seconds > 0


def test_screen_empty_library_rejected(receptor):
    with pytest.raises(ReproError):
        screen(receptor, [])


def test_report_to_text(receptor):
    lib = synthetic_library(2, atoms_range=(8, 12), seed=4)
    report = screen(receptor, lib, n_spots=2, metaheuristic="M1", workload_scale=0.05)
    text = report.to_text()
    assert "rank" in text
    assert "LIG0000" in text


def test_top_k_validation(receptor):
    lib = synthetic_library(2, atoms_range=(8, 12), seed=4)
    report = screen(receptor, lib, n_spots=2, metaheuristic="M1", workload_scale=0.05)
    with pytest.raises(ReproError):
        report.top(0)
    assert len(report.top(100)) == 2  # clamped


def test_screen_accepts_lazy_iterable(receptor):
    # A generator must stream through without materialising, and match the
    # list path bitwise (same ligands, same seed schedule).
    lib = synthetic_library(3, atoms_range=(8, 12), seed=2)
    lazy = screen(
        receptor, (lig for lig in lib), n_spots=2, metaheuristic="M1",
        workload_scale=0.05, seed=5,
    )
    eager = screen(
        receptor, lib, n_spots=2, metaheuristic="M1",
        workload_scale=0.05, seed=5,
    )
    assert [e.best_score for e in lazy.entries] == [
        e.best_score for e in eager.entries
    ]
    # An exhausted generator is an empty library.
    empty = iter(())
    with pytest.raises(ReproError, match="at least one ligand"):
        screen(receptor, empty)


def test_screen_disambiguates_duplicate_and_empty_titles(receptor):
    ligands = [
        generate_ligand(8, seed=1, title="twin"),
        generate_ligand(9, seed=2, title="twin"),
        generate_ligand(10, seed=3, title=""),
    ]
    report = screen(
        receptor, ligands, n_spots=2, metaheuristic="M1", workload_scale=0.05
    )
    assert [e.ligand_title for e in report.entries] == ["twin", "twin#1", "ligand-2"]


def test_entries_carry_simulated_seconds(receptor):
    lib = synthetic_library(2, atoms_range=(8, 12), seed=3)
    timed = screen(
        receptor, lib, n_spots=2, metaheuristic="M1", workload_scale=0.05,
        node=hertz(),
    )
    assert all(e.simulated_seconds > 0 for e in timed.entries)
    assert timed.simulated_seconds == pytest.approx(
        sum(e.simulated_seconds for e in timed.entries)
    )
    untimed = screen(
        receptor, lib, n_spots=2, metaheuristic="M1", workload_scale=0.05
    )
    assert all(math.isnan(e.simulated_seconds) for e in untimed.entries)


def test_report_json_roundtrip(receptor):
    lib = synthetic_library(3, atoms_range=(8, 12), seed=4)
    report = screen(receptor, lib, n_spots=2, metaheuristic="M1", workload_scale=0.05)
    clone = ScreeningReport.from_json(report.to_json())
    assert clone.receptor_title == report.receptor_title
    assert clone.simulated_seconds == report.simulated_seconds
    # Per-entry NaN (no node → no simulated time) survives strict-JSON encoding.
    for a, b in zip(clone.entries, report.entries):
        assert a.ligand_title == b.ligand_title
        assert a.best_score == b.best_score
        assert a.best_spot == b.best_spot
        assert a.evaluations == b.evaluations
        assert math.isnan(a.simulated_seconds) == math.isnan(b.simulated_seconds)
    with pytest.raises(ReproError, match="not a screening-report"):
        ScreeningReport.from_json("{\"surprise\": true}")
    with pytest.raises(ReproError, match="not a screening-report"):
        ScreeningReport.from_json("[1, 2, 3]")


def test_report_to_text_limit(receptor):
    lib = synthetic_library(5, atoms_range=(8, 12), seed=4)
    report = screen(receptor, lib, n_spots=2, metaheuristic="M1", workload_scale=0.05)
    text = report.to_text(limit=2)
    # Only the two best rows are rendered, plus a hidden-count footer.
    assert len([l for l in text.splitlines() if "LIG" in l]) == 2
    assert "3 more ligands not shown" in text
    assert text.splitlines()[-1].endswith("not shown)")
    full = report.to_text()
    assert len([l for l in full.splitlines() if "LIG" in l]) == 5
    assert "not shown" not in full
    # A limit covering everything adds no footer.
    assert "not shown" not in report.to_text(limit=5)
    with pytest.raises(ReproError):
        report.to_text(limit=0)
