"""Library-screening tests."""

import pytest

from repro.errors import ReproError
from repro.hardware.node import hertz
from repro.vs.screening import screen, synthetic_library


def test_synthetic_library_properties():
    lib = synthetic_library(6, atoms_range=(10, 20), seed=1)
    assert len(lib) == 6
    assert all(10 <= lig.n_atoms <= 20 for lig in lib)
    assert len({lig.title for lig in lib}) == 6  # unique names
    # Deterministic.
    again = synthetic_library(6, atoms_range=(10, 20), seed=1)
    assert [l.n_atoms for l in lib] == [l.n_atoms for l in again]


def test_synthetic_library_validation():
    with pytest.raises(ReproError):
        synthetic_library(0)
    with pytest.raises(ReproError):
        synthetic_library(3, atoms_range=(20, 10))


def test_screen_ranks_all_ligands(receptor):
    lib = synthetic_library(4, atoms_range=(8, 16), seed=2)
    report = screen(
        receptor, lib, n_spots=3, metaheuristic="M1", workload_scale=0.05, seed=5
    )
    assert len(report.entries) == 4
    ranked = report.ranked()
    scores = [e.best_score for e in ranked]
    assert scores == sorted(scores)
    assert report.top(2)[0].best_score == scores[0]


def test_screen_with_node_accumulates_time(receptor):
    lib = synthetic_library(2, atoms_range=(8, 12), seed=3)
    report = screen(
        receptor,
        lib,
        n_spots=2,
        metaheuristic="M1",
        workload_scale=0.05,
        node=hertz(),
    )
    assert report.simulated_seconds > 0


def test_screen_empty_library_rejected(receptor):
    with pytest.raises(ReproError):
        screen(receptor, [])


def test_report_to_text(receptor):
    lib = synthetic_library(2, atoms_range=(8, 12), seed=4)
    report = screen(receptor, lib, n_spots=2, metaheuristic="M1", workload_scale=0.05)
    text = report.to_text()
    assert "rank" in text
    assert "LIG0000" in text


def test_top_k_validation(receptor):
    lib = synthetic_library(2, atoms_range=(8, 12), seed=4)
    report = screen(receptor, lib, n_spots=2, metaheuristic="M1", workload_scale=0.05)
    with pytest.raises(ReproError):
        report.top(0)
    assert len(report.top(100)) == 2  # clamped
