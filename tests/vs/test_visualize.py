"""Terminal-visualisation tests."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.vs.visualize import ascii_projection, score_map, sparkline


def test_projection_dimensions(receptor, ligand):
    art = ascii_projection([(receptor, "#"), (ligand, "@")], width=40, height=10)
    lines = art.split("\n")
    assert len(lines) == 10
    assert all(len(line) == 40 for line in lines)
    assert "#" in art


def test_projection_later_layers_overdraw():
    pts = np.zeros((1, 3))
    art = ascii_projection([(pts, "#"), (pts, "@")], width=4, height=4)
    assert "@" in art
    assert "#" not in art


def test_projection_axes_selection(receptor):
    xy = ascii_projection([(receptor, "#")], axes=(0, 1))
    xz = ascii_projection([(receptor, "#")], axes=(0, 2))
    assert xy != xz


def test_projection_validation(receptor):
    with pytest.raises(ReproError):
        ascii_projection([])
    with pytest.raises(ReproError):
        ascii_projection([(receptor, "##")])
    with pytest.raises(ReproError):
        ascii_projection([(receptor, "#")], width=1)
    with pytest.raises(ReproError):
        ascii_projection([(np.zeros((3,)), "#")])


def test_score_map_ordering():
    art = score_map(np.array([-1.0, -10.0, -5.0]))
    lines = art.split("\n")
    assert "spot   1" in lines[0]  # best first
    assert lines[0].count("█") > lines[1].count("█") > lines[2].count("█")


def test_score_map_labels_and_validation():
    art = score_map(np.array([-2.0, -4.0]), labels=["ligA", "ligB"])
    assert "ligB" in art.split("\n")[0]
    with pytest.raises(ReproError):
        score_map(np.array([]))
    with pytest.raises(ReproError):
        score_map(np.array([-1.0]), labels=["a", "b"])


def test_score_map_positive_scores_have_empty_bars():
    art = score_map(np.array([5.0, -5.0]))
    lines = art.split("\n")
    assert lines[1].endswith("|")  # the positive (unbound) score: no bar


def test_sparkline_shape_and_monotone():
    line = sparkline([0.0, -2.0, -4.0, -6.0, -8.0])
    assert len(line) == 5
    assert line[0] == "█"  # worst (highest) score
    assert line[-1] == "▁"  # best


def test_sparkline_flat_and_single():
    assert sparkline([1.0]) == "▁"
    assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"
    with pytest.raises(ReproError):
        sparkline([])


# ----------------------------------------------------------------------
# gantt
# ----------------------------------------------------------------------
def _timeline():
    return [
        (0, 0.0, 1.0, "population"),
        (1, 0.0, 2.0, "population"),
        (0, 2.0, 2.5, "improve"),
        (1, 2.0, 4.0, "improve"),
    ]


def test_gantt_structure():
    from repro.vs.visualize import gantt

    art = gantt(_timeline(), ["K40c", "GTX580"], width=40)
    lines = art.split("\n")
    assert len(lines) == 3  # two devices + axis
    assert "K40c" in lines[0]
    assert "█" in lines[0] and "▒" in lines[1]
    assert lines[2].strip().startswith("0")


def test_gantt_idle_gap_is_visible():
    from repro.vs.visualize import gantt

    art = gantt(_timeline(), width=40)
    # Device 0 idles between 1.0 and 2.0 while device 1 works.
    row0 = art.split("\n")[0].split("|")[1]
    assert " " in row0.strip("█▒░ ") or row0.count(" ") > 2


def test_gantt_validation():
    from repro.vs.visualize import gantt

    with pytest.raises(ReproError):
        gantt([])
    with pytest.raises(ReproError):
        gantt(_timeline(), device_names=["only-one"])
    with pytest.raises(ReproError):
        gantt([(0, 0.0, 0.0, "population")])


def test_gantt_integrates_with_executor():
    from repro.engine.executor import simulate_gpu_trace
    from repro.engine.scheduler import StaticEqualScheduler
    from repro.experiments.trace import analytic_trace
    from repro.hardware.node import hertz
    from repro.vs.visualize import gantt

    node = hertz()
    trace = analytic_trace("M1", 16, 3264, 45, workload_scale=0.2)
    timeline = []
    timing = simulate_gpu_trace(trace, node, StaticEqualScheduler(), timeline=timeline)
    assert len(timeline) == timing.n_launches * node.n_gpus
    art = gantt(timeline, [g.name for g in node.gpus])
    assert "K40c" in art
